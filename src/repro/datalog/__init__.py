"""Lifted-Datalog evaluation backend (the ``--engine=datalog`` solver).

Shahin/Chechik ("Lifting Datalog-Based Analyses to SPLs", PAPERS.md)
lift Datalog engines to variability by pairing every tuple with a
feature constraint — exactly SPLLIFT's IDE value domain.  This package
compiles a :class:`~repro.core.lifting.LiftedProblem` into
constraint-annotated relations (``path_edge``/``summary_edge``) plus
normal/call/return/call-to-return flow rules, and evaluates them with a
semi-naive, set-at-a-time fixpoint (:mod:`repro.datalog.engine`).

The resulting fixpoint is the same mathematical object the tabulation
solver computes, and BDD constraints are canonical, so both engines
render bit-identical ``result_digest()``s — an independent cross-check
on the heavily optimized tabulation path
(``scripts/check_digest_identity.py --engine datalog``).
"""

from __future__ import annotations

import os
from typing import Optional

from repro.datalog.engine import Relation, Rule, SemiNaiveEvaluator
from repro.datalog.ifds import DatalogSolver

__all__ = [
    "ENGINES",
    "resolve_engine",
    "DatalogSolver",
    "Relation",
    "Rule",
    "SemiNaiveEvaluator",
]

#: The available evaluation engines; ``None`` resolves to
#: ``$SPLLIFT_ENGINE`` (default ``tabulate``), mirroring how worklist
#: orders resolve through ``$SPLLIFT_WORKLIST_ORDER``.
ENGINES = ("tabulate", "datalog")


def resolve_engine(engine: Optional[str]) -> str:
    """Resolve an engine name (``None`` → environment → default)."""
    if engine is None:
        engine = os.environ.get("SPLLIFT_ENGINE", "tabulate")
    if engine not in ENGINES:
        raise ValueError(
            f"engine must be one of {'/'.join(ENGINES)}, got {engine!r}"
        )
    return engine
