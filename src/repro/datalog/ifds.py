"""Compile a lifted IFDS problem to Datalog rules and solve it.

The tabulation solver's jump function at ``(n, d1, d2)`` is, in the
lifted domain, fully described by one feature constraint — the
disjunction over same-level paths from ``(sp, d1)`` to ``(n, d2)`` of
the conjunction of edge labels along each path.  That is exactly a
lifted-Datalog relation::

    path_edge(d1, n, d2) @ c        # c = the jump function's constant
    call_fact(call, d2) @ true      # some context reaches the call site
    summary_edge(call, d2, rs, d5) @ s

with the IDE flow cases as rules (labels written ``L⋅``):

- **seed**      ``path_edge(d, sp, d) @ true`` for every initial seed;
- **normal**    ``path_edge(d1, n, d2) @ c ⟹
                path_edge(d1, succ, d3) @ c ∧ L_normal(n, d2, succ, d3)``;
- **call-to-return** — the same shape across the call site;
- **call**      ``path_edge(d1, call, d2) @ c ⟹
                path_edge(d3, sp_p, d3) @ true`` for every callee entry
                fact ``d3`` (callee contexts are seeded unconditionally,
                like the tabulation solver; the caller's constraint is
                re-applied by the summary rule), plus
                ``call_fact(call, d2) @ true``;
- **summary**   ``call_fact(call, d2) ∧ path_edge(d3, e, d4) @ cₑ ⟹
                summary_edge(call, d2, rs, d5)
                @ L_call(call, d2, p, d3) ∧ cₑ ∧ L_ret(call, p, e, d4, rs, d5)``
                for exits ``e`` of the callee ``p``;
- **apply**     ``path_edge(d1, call, d2) @ c ∧
                summary_edge(call, d2, rs, d5) @ s ⟹
                path_edge(d1, rs, d5) @ c ∧ s``.

The five rules are mutually recursive, so they form one stratum;
evaluation is semi-naive over the engine's delta stores.  The fixpoint
is the same mathematical object phase I of :class:`IDESolver` computes,
and BDD constraints are canonical, so the phase-II values — and
therefore ``result_digest()`` — come out bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple, TypeVar

from repro.constraints.base import Constraint
from repro.datalog.engine import Relation, Rule, SemiNaiveEvaluator
from repro.ide.solver import IDEResults
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod
from repro.obs import runtime as obs

__all__ = ["DatalogSolver"]

D = TypeVar("D", bound=Hashable)

#: Statement kinds, resolved once per statement (the tabulation solver's
#: classification): 0 normal, 1 call, 2 exit, 3 exit-with-successors
#: (a disabled annotated ``return`` falls through, so the node is both
#: an exit and a normal statement).
_NORMAL, _CALL, _EXIT, _EXIT_FLOW = 0, 1, 2, 3


class DatalogSolver:
    """Solve a :class:`~repro.core.lifting.LiftedProblem` by rule
    evaluation instead of tabulation.

    The problem's edge functions must be ``λc. c ∧ A`` constants (which
    every lifted problem's are); their ``constraint`` attribute is the
    tuple annotation the rules conjoin.
    """

    def __init__(self, problem) -> None:
        self.problem = problem
        self.icfg = problem.icfg
        self.system = problem.system
        self.path_edges = Relation("path_edge")
        self.call_facts = Relation("call_fact")
        self.summary_edges = Relation("summary_edge")
        self.stats: Dict[str, int] = {}
        # Join indexes, maintained by first-insertion hooks:
        # (callee, entry fact) -> [(exit stmt, exit fact)]
        self._exit_index: Dict[Tuple[IRMethod, D], List[Tuple[Instruction, D]]] = {}
        # (callee, entry fact) -> [(call, call fact)]
        self._context_index: Dict[Tuple[IRMethod, D], List[Tuple[Instruction, D]]] = {}
        # (call, call fact) -> [caller source fact d1]
        self._caller_index: Dict[Tuple[Instruction, D], List[D]] = {}
        # (call, call fact) -> [(return site, d5)]
        self._summary_index: Dict[Tuple[Instruction, D], List[Tuple[Instruction, D]]] = {}
        self.path_edges.on_insert = self._index_path_edge
        self.call_facts.on_insert = self._index_call_fact
        self.summary_edges.on_insert = self._index_summary_edge
        # Exploded-edge caches, mirroring the tabulation solver's: flow
        # functions and labels depend on (statement, fact), never on d1.
        self._kind_cache: Dict[Instruction, int] = {}
        self._normal_cache: Dict[Tuple[Instruction, D], tuple] = {}
        self._c2r_cache: Dict[Tuple[Instruction, D], tuple] = {}
        self._call_cache: Dict[Tuple[Instruction, D], tuple] = {}
        self._return_cache: Dict[Tuple[Instruction, Instruction, D], tuple] = {}

    # ==================================================================
    # Statement classification and exploded-edge caches
    # ==================================================================

    def _kind(self, n: Instruction) -> int:
        kind = self._kind_cache.get(n)
        if kind is None:
            if self.icfg.is_call(n):
                kind = _CALL
            elif self.icfg.is_exit(n):
                kind = _EXIT_FLOW if self.icfg.successors_of(n) else _EXIT
            else:
                kind = _NORMAL
            self._kind_cache[n] = kind
        return kind

    def _normal_exploded(self, n: Instruction, d2: D) -> tuple:
        key = (n, d2)
        exploded = self._normal_cache.get(key)
        if exploded is None:
            problem = self.problem
            entries = []
            for succ in self.icfg.successors_of(n):
                flow = problem.normal_flow(n, succ)
                for d3 in flow.compute_targets(d2):
                    label = problem.edge_normal(n, d2, succ, d3).constraint
                    entries.append((succ, d3, label))
            exploded = self._normal_cache[key] = tuple(entries)
        return exploded

    def _c2r_exploded(self, call: Instruction, d2: D) -> tuple:
        key = (call, d2)
        exploded = self._c2r_cache.get(key)
        if exploded is None:
            problem = self.problem
            entries = []
            for return_site in self.icfg.return_sites_of(call):
                flow = problem.call_to_return_flow(call, return_site)
                for d3 in flow.compute_targets(d2):
                    label = problem.edge_call_to_return(
                        call, d2, return_site, d3
                    ).constraint
                    entries.append((return_site, d3, label))
            exploded = self._c2r_cache[key] = tuple(entries)
        return exploded

    def _call_targets(self, call: Instruction, d2: D) -> tuple:
        """``(callee, callee start, entry facts)`` triples for ``(call, d2)``."""
        key = (call, d2)
        targets = self._call_cache.get(key)
        if targets is None:
            entries = []
            for callee in self.icfg.callees_of(call):
                flow = self.problem.call_flow(call, callee)
                entry_facts = tuple(flow.compute_targets(d2))
                if entry_facts:
                    entries.append(
                        (callee, self.icfg.start_point_of(callee), entry_facts)
                    )
            targets = self._call_cache[key] = tuple(entries)
        return targets

    def _return_exploded(
        self, call: Instruction, callee: IRMethod, exit_stmt: Instruction, d4: D
    ) -> tuple:
        key = (call, exit_stmt, d4)
        exploded = self._return_cache.get(key)
        if exploded is None:
            problem = self.problem
            entries = []
            for return_site in self.icfg.return_sites_of(call):
                flow = problem.return_flow(call, callee, exit_stmt, return_site)
                for d5 in flow.compute_targets(d4):
                    label = problem.edge_return(
                        call, callee, exit_stmt, d4, return_site, d5
                    ).constraint
                    entries.append((return_site, d5, label))
            exploded = self._return_cache[key] = tuple(entries)
        return exploded

    # ==================================================================
    # Join indexes (first-insertion hooks)
    # ==================================================================

    def _index_path_edge(self, key) -> None:
        d1, n, d2 = key
        kind = self._kind(n)
        if kind == _CALL:
            callers = self._caller_index.get((n, d2))
            if callers is None:
                callers = self._caller_index[(n, d2)] = []
            callers.append(d1)
        elif kind != _NORMAL:  # an exit (with or without successors)
            context = (self.icfg.method_of(n), d1)
            exits = self._exit_index.get(context)
            if exits is None:
                exits = self._exit_index[context] = []
            exits.append((n, d2))

    def _index_call_fact(self, key) -> None:
        call, d2 = key
        for callee, _start, entry_facts in self._call_targets(call, d2):
            for d3 in entry_facts:
                contexts = self._context_index.get((callee, d3))
                if contexts is None:
                    contexts = self._context_index[(callee, d3)] = []
                contexts.append((call, d2))

    def _index_summary_edge(self, key) -> None:
        call, d2, return_site, d5 = key
        summaries = self._summary_index.get((call, d2))
        if summaries is None:
            summaries = self._summary_index[(call, d2)] = []
        summaries.append((return_site, d5))

    # ==================================================================
    # Rules
    # ==================================================================

    def _fire_normal(self, _relation, delta) -> None:
        contribute = self.path_edges.contribute
        for (d1, n, d2), c in delta.items():
            kind = self._kind(n)
            if kind != _NORMAL and kind != _EXIT_FLOW:
                continue
            for succ, d3, label in self._normal_exploded(n, d2):
                contribute((d1, succ, d3), c & label)

    def _fire_call_to_return(self, _relation, delta) -> None:
        contribute = self.path_edges.contribute
        for (d1, n, d2), c in delta.items():
            if self._kind(n) != _CALL:
                continue
            for return_site, d3, label in self._c2r_exploded(n, d2):
                contribute((d1, return_site, d3), c & label)

    def _fire_call(self, _relation, delta) -> None:
        """Seed callee contexts and derive ``call_fact`` tuples."""
        true = self.system.true
        seed = self.path_edges.contribute
        fact = self.call_facts.contribute
        for (d1, n, d2), _c in delta.items():
            if self._kind(n) != _CALL:
                continue
            for _callee, start, entry_facts in self._call_targets(n, d2):
                for d3 in entry_facts:
                    seed((d3, start, d3), true)
            fact((n, d2), true)

    def _call_label(
        self, call: Instruction, d2: D, callee: IRMethod, d3: D
    ) -> Constraint:
        return self.problem.edge_call(call, d2, callee, d3).constraint

    def _fire_summary(self, relation, delta) -> None:
        """Derive summary edges; fired from either side of the join."""
        contribute = self.summary_edges.contribute
        if relation is self.call_facts:
            # New call contexts against all stored exit path edges.
            pe = self.path_edges.tuples
            for (call, d2) in delta:
                for callee, _start, entry_facts in self._call_targets(call, d2):
                    for d3 in entry_facts:
                        label_call = None
                        for exit_stmt, d4 in self._exit_index.get(
                            (callee, d3), ()
                        ):
                            c_exit = pe[(d3, exit_stmt, d4)]
                            if label_call is None:
                                label_call = self._call_label(call, d2, callee, d3)
                            for rs, d5, label_ret in self._return_exploded(
                                call, callee, exit_stmt, d4
                            ):
                                contribute(
                                    (call, d2, rs, d5),
                                    label_call & c_exit & label_ret,
                                )
            return
        # New exit path edges against all registered call contexts.
        for (d1, n, d2), c_exit in delta.items():
            kind = self._kind(n)
            if kind != _EXIT and kind != _EXIT_FLOW:
                continue
            callee = self.icfg.method_of(n)
            for call, call_fact in self._context_index.get((callee, d1), ()):
                label_call = self._call_label(call, call_fact, callee, d1)
                for rs, d5, label_ret in self._return_exploded(
                    call, callee, n, d2
                ):
                    contribute(
                        (call, call_fact, rs, d5),
                        label_call & c_exit & label_ret,
                    )

    def _fire_apply(self, relation, delta) -> None:
        """Apply summary edges across call sites, from either side."""
        contribute = self.path_edges.contribute
        if relation is self.summary_edges:
            pe = self.path_edges.tuples
            for (call, d2, rs, d5), s in delta.items():
                for d1 in self._caller_index.get((call, d2), ()):
                    contribute((d1, rs, d5), pe[(d1, call, d2)] & s)
            return
        se = self.summary_edges.tuples
        for (d1, call, d2), c in delta.items():
            if self._kind(call) != _CALL:
                continue
            for rs, d5 in self._summary_index.get((call, d2), ()):
                contribute((d1, rs, d5), c & se[(call, d2, rs, d5)])

    # ==================================================================
    # Solve: rule evaluation, then the IDE value phase
    # ==================================================================

    def solve(self) -> IDEResults[D, Constraint]:
        tracer = obs.tracer()
        with tracer.span("datalog/solve"):
            with tracer.span("datalog/fixpoint"):
                evaluator = self._evaluate()
            with tracer.span("datalog/values"):
                values = self._compute_values()
        self.stats.update(evaluator.counters)
        self.stats.update(
            {
                "path_edges": len(self.path_edges),
                "call_facts": len(self.call_facts),
                "summary_edges": len(self.summary_edges),
            }
        )
        self.stats.update(self.problem.edge_cache_stats())
        obs.publish_stats("datalog", self.stats)
        return IDEResults(values, self.problem.top_value(), self.problem.zero)

    def _evaluate(self) -> SemiNaiveEvaluator:
        pe, cf, se = self.path_edges, self.call_facts, self.summary_edges
        evaluator = SemiNaiveEvaluator(self.system, (pe, cf, se))
        true = self.system.true
        for stmt, facts in self.problem.initial_seeds().items():
            for fact in facts:
                pe.contribute((fact, stmt, fact), true)
        rules = (
            Rule("normal", (pe,), self._fire_normal),
            Rule("call_to_return", (pe,), self._fire_call_to_return),
            Rule("call", (pe,), self._fire_call),
            Rule("summary", (cf, pe), self._fire_summary),
            Rule("apply", (pe, se), self._fire_apply),
        )
        evaluator.evaluate((rules,))
        return evaluator

    def _compute_values(self) -> Dict[Tuple[Instruction, D], Constraint]:
        """The IDE value phase over the solved ``path_edge`` relation.

        Identical math to ``IDESolver._compute_values`` — seeds flow to
        call sites and into callees (phase II(i)), then every node gets
        the batched join over its jump constraints (phase II(ii)) — with
        ``path_edge`` standing in for the jump-function tables.
        """
        problem = self.problem
        icfg = self.icfg
        top = problem.top_value()
        values: Dict[Tuple[Instruction, D], Constraint] = {}
        value_updates = 0

        def set_value(stmt: Instruction, fact: D, value: Constraint) -> bool:
            nonlocal value_updates
            key = (stmt, fact)
            old = values.get(key, top)
            joined = old | value
            if joined is old or joined == old:
                return False
            values[key] = joined
            value_updates += 1
            return True

        # path_edge re-indexed as stmt -> d1 -> {d2: constraint} (the
        # two-level jump index phase II iterates).
        jump: Dict[Instruction, Dict[D, Dict[D, Constraint]]] = {}
        for (d1, n, d2), c in self.path_edges.tuples.items():
            rows = jump.get(n)
            if rows is None:
                rows = jump[n] = {}
            row = rows.get(d1)
            if row is None:
                row = rows[d1] = {}
            row[d2] = c

        # Phase II(i): start points and call sites.
        worklist: Deque[Tuple[Instruction, D]] = deque()
        for stmt, fact_values in problem.initial_seed_values().items():
            for fact, value in fact_values.items():
                if set_value(stmt, fact, value):
                    worklist.append((stmt, fact))
        while worklist:
            n, d = worklist.popleft()
            value = values.get((n, d), top)
            method = icfg.method_of(n)
            if n is icfg.start_point_of(method):
                for call in icfg.call_sites_in(method):
                    rows = jump.get(call)
                    row = rows.get(d) if rows is not None else None
                    if not row:
                        continue
                    for d2, c in row.items():
                        if set_value(call, d2, value & c):
                            worklist.append((call, d2))
            if icfg.is_call(n):
                for callee, start, entry_facts in self._call_targets(n, d):
                    for d3 in entry_facts:
                        label = self._call_label(n, d, callee, d3)
                        if set_value(start, d3, value & label):
                            worklist.append((start, d3))

        # Phase II(ii): every remaining node via its jump constraints,
        # merging contributions per (stmt, d2) with one batched or_all.
        batch_joins = 0
        for method in icfg.reachable_methods:
            start = icfg.start_point_of(method)
            start_values: Dict[D, Constraint] = {}
            for stmt in method.instructions:
                if stmt is start:
                    continue
                rows = jump.get(stmt)
                if rows is None:
                    continue
                incoming: Dict[D, List[Constraint]] = {}
                for d1, row in rows.items():
                    start_value = start_values.get(d1)
                    if start_value is None:
                        start_value = start_values[d1] = values.get(
                            (start, d1), top
                        )
                    if start_value == top:
                        continue
                    for d2, c in row.items():
                        contributions = incoming.get(d2)
                        if contributions is None:
                            contributions = incoming[d2] = []
                        contributions.append(start_value & c)
                for d2, contributions in incoming.items():
                    if len(contributions) == 1:
                        set_value(stmt, d2, contributions[0])
                    else:
                        batch_joins += 1
                        set_value(
                            stmt, d2, problem.join_all_values(contributions)
                        )
        self.stats["value_updates"] = value_updates
        self.stats["value_batch_joins"] = batch_joins
        return values
