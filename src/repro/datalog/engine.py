"""Semi-naive, set-at-a-time evaluation over constraint-annotated tuples.

The data model follows Shahin/Chechik's lifted Datalog: a *relation*
maps tuple keys to feature constraints — ``R(t) @ c`` means "``t`` is
derivable exactly in the products satisfying ``c``".  Deriving the same
tuple along several rule firings *disjoins* the constraints (a tuple
holds if any derivation applies); a rule body's joined tuples *conjoin*
theirs (all premises must hold in the same product).

Evaluation is stratified semi-naive:

- rules are grouped into **strata** evaluated in order; each stratum
  runs to its own fixpoint before the next starts (the rule graph here
  is negation-free, so strata are a scheduling device, not a semantic
  one — mutually recursive rules simply share a stratum);
- within a stratum, every iteration fires each rule once per body
  relation whose **delta** (the tuples that changed last iteration) is
  non-empty; rule firings contribute ``(key, constraint)`` pairs into
  the head relation's *pending* buffer;
- at the end of an iteration every relation **advances**: pending
  contributions per key are folded with one batched
  ``ConstraintSystem.or_all`` (set-at-a-time, not tuple-at-a-time),
  disjoined into the stored constraint, and become the next delta —
  unless the stored constraint already implies the batch, in which case
  the contribution is *retracted as subsumed* and nothing re-fires.

Because ``∧`` distributes over ``∨``, firing rules on deltas joined
against full relations covers every derivation; re-deriving a covered
tuple only costs a subsumption check (canonical constraints make that
check constant time).  Termination follows from monotonicity over the
finite constraint lattice spanned by the program's annotations.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["Relation", "Rule", "SemiNaiveEvaluator"]

Key = Hashable


class Relation:
    """One constraint-annotated tuple store with a delta and a pending
    buffer.

    ``tuples`` is the fixpoint-so-far (key → constraint, never false);
    ``delta`` the tuples whose constraint changed in the last advance;
    ``pending`` the raw contributions of the current iteration, folded
    set-at-a-time on :meth:`advance`.  ``on_insert`` (if set) is called
    once per key on its *first* insertion — the hook the IFDS compiler
    uses to maintain join indexes without scanning.
    """

    __slots__ = ("name", "tuples", "delta", "pending", "on_insert")

    def __init__(self, name: str) -> None:
        self.name = name
        self.tuples: Dict[Key, object] = {}
        self.delta: Dict[Key, object] = {}
        self.pending: Dict[Key, List[object]] = {}
        self.on_insert: Optional[Callable[[Key], None]] = None

    def contribute(self, key: Key, constraint) -> None:
        """Buffer one derivation ``key @ constraint`` for the next advance."""
        if constraint.is_false:
            return  # holds in no product — not a tuple at all
        bucket = self.pending.get(key)
        if bucket is None:
            bucket = self.pending[key] = []
        bucket.append(constraint)

    def advance(self, system, counters: Dict[str, int]) -> bool:
        """Fold pending into the store; the fold becomes the new delta.

        Returns whether anything changed (i.e. the new delta is
        non-empty).  Contributions whose disjunction is already implied
        by the stored constraint are counted as ``subsumption_hits`` and
        dropped — the semi-naive loop never re-fires on them.
        """
        self.delta = delta = {}
        pending, self.pending = self.pending, {}
        tuples = self.tuples
        on_insert = self.on_insert
        or_all = system.or_all
        derived = subsumed = batches = 0
        for key, contributions in pending.items():
            if len(contributions) == 1:
                batch = contributions[0]
            else:
                batches += 1
                batch = or_all(contributions)
            stored = tuples.get(key)
            if stored is None:
                tuples[key] = batch
                delta[key] = batch
                derived += 1
                if on_insert is not None:
                    on_insert(key)
                continue
            joined = stored | batch
            if joined is stored or joined == stored:
                # Canonical constraints: equality means the batch is
                # implied by what we already knew — retract it.
                subsumed += 1
                continue
            tuples[key] = joined
            delta[key] = batch
        counters["tuples_derived"] += derived
        counters["subsumption_hits"] += subsumed
        counters["or_all_batches"] += batches
        counters["delta_tuples"] += len(delta)
        return bool(delta)

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, {len(self.tuples)} tuples)"


class Rule:
    """One rule: fires on a body relation's delta, contributes to heads.

    ``fire(relation, delta)`` receives the body relation whose delta is
    being replayed plus that delta (a key → constraint dict); it may
    join against any relation's full ``tuples`` and must emit via
    ``contribute``.  A rule with several body relations is fired once
    per body relation with a non-empty delta — the classic semi-naive
    rewrite ``ΔR₁ ⋈ R₂ ∪ R₁ ⋈ ΔR₂`` (the Δ⋈Δ overlap is harmless: the
    disjunction is idempotent).
    """

    __slots__ = ("name", "body", "fire")

    def __init__(
        self,
        name: str,
        body: Sequence[Relation],
        fire: Callable[[Relation, Dict[Key, object]], None],
    ) -> None:
        self.name = name
        self.body = tuple(body)
        self.fire = fire

    def __repr__(self) -> str:
        return f"Rule({self.name!r})"


class SemiNaiveEvaluator:
    """Stratified semi-naive fixpoint over :class:`Relation` stores."""

    def __init__(self, system, relations: Sequence[Relation]) -> None:
        self.system = system
        self.relations = tuple(relations)
        self.counters: Dict[str, int] = {
            "rules_fired": 0,
            "tuples_derived": 0,
            "subsumption_hits": 0,
            "or_all_batches": 0,
            "delta_tuples": 0,
            "iterations": 0,
            "strata": 0,
        }

    def evaluate(self, strata: Sequence[Sequence[Rule]]) -> None:
        """Run each stratum's rules to a fixpoint, in order.

        Facts must be loaded via ``contribute`` before the call (they
        form iteration 0's delta).  On return every relation's delta is
        empty — the exhaustion test the unit suite pins down.
        """
        counters = self.counters
        system = self.system
        for index, rules in enumerate(strata):
            counters["strata"] += 1
            # Iteration 0: pending facts (and any prior stratum's
            # conclusions contributed since the last advance) become the
            # initial delta.
            changed = False
            for relation in self.relations:
                changed |= relation.advance(system, counters)
            if index > 0:
                # A later stratum must see every conclusion of the
                # earlier ones, whose deltas are exhausted — replay the
                # full stores as this stratum's initial delta.
                for relation in self.relations:
                    if relation.tuples:
                        relation.delta = dict(relation.tuples)
                        changed = True
            while changed:
                counters["iterations"] += 1
                # Snapshot the deltas: firings contribute to pending,
                # never mutate a delta mid-iteration.
                snapshot = [
                    (relation, relation.delta)
                    for relation in self.relations
                    if relation.delta
                ]
                for rule in rules:
                    for relation, delta in snapshot:
                        if relation in rule.body:
                            counters["rules_fired"] += 1
                            rule.fire(relation, delta)
                changed = False
                for relation in self.relations:
                    changed |= relation.advance(system, counters)
        for relation in self.relations:
            relation.delta = {}
