"""Duration formatting in the paper's Table 2/3 style, plus measurement
helpers shared by the benchmark harness.

The paper prints "4s", "2m06s", "9h03m39s" for measured values and coarse
"days" / "years" prognoses for estimates beyond the cutoff.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, TypeVar

__all__ = [
    "format_duration",
    "format_estimate",
    "format_count",
    "Stopwatch",
    "best_of",
]

T = TypeVar("T")

_MINUTE = 60.0
_HOUR = 3600.0
_DAY = 86400.0
_YEAR = 365.0 * _DAY


def format_duration(seconds: float) -> str:
    """Render a measured duration the way the paper's tables do."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < _MINUTE:
        if seconds < 10:
            return f"{seconds:.2f}s"
        return f"{seconds:.0f}s"
    if seconds < _HOUR:
        minutes, rest = divmod(seconds, _MINUTE)
        return f"{int(minutes)}m{rest:02.0f}s"
    if seconds < _DAY:
        hours, rest = divmod(seconds, _HOUR)
        minutes = rest / _MINUTE
        return f"{int(hours)}h{minutes:02.0f}m"
    return format_estimate(seconds)


def format_estimate(seconds: float) -> str:
    """Coarse prognosis for values beyond the cutoff ("days", "years")."""
    if seconds < _DAY:
        return f"≈{format_duration(seconds)}"
    if seconds < 2 * _YEAR:
        days = seconds / _DAY
        return f"≈{days:.0f} days"
    years = seconds / _YEAR
    return f"≈{years:.0f} years"


class Stopwatch:
    """A restartable wall-clock stopwatch (``perf_counter``-based).

    Usable as a context manager; ``elapsed`` is valid both while running
    and after exit.  Used by ``benchmarks/bench_solver.py`` so every
    harness mode times the same way.
    """

    def __init__(self) -> None:
        self._started: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> float:
        if self._started is not None:
            self.elapsed = time.perf_counter() - self._started
            self._started = None
        return self.elapsed


def best_of(
    fn: Callable[[], T], rounds: int = 3
) -> Dict[str, object]:
    """Run ``fn`` ``rounds`` times; report min/mean wall time and the last
    return value.

    Minimum-of-N is the standard noise-rejection protocol for
    micro-benchmarks (the fastest round is the one least disturbed by the
    OS); the mean is reported alongside for context.
    """
    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    times: List[float] = []
    result: T = None  # type: ignore[assignment]
    for _ in range(rounds):
        with Stopwatch() as watch:
            result = fn()
        times.append(watch.elapsed)
    return {
        "min_seconds": min(times),
        "mean_seconds": sum(times) / len(times),
        "rounds": rounds,
        "result": result,
    }


def format_count(value: int) -> str:
    """Large counts with thousands separators; huge ones in scientific
    notation like the paper's "55 · 10^10"."""
    if value < 10_000_000:
        return f"{value:,}"
    exponent = len(str(value)) - 2
    mantissa = value / (10 ** exponent)
    return f"{mantissa:.0f}·10^{exponent}"
