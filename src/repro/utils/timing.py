"""Duration formatting in the paper's Table 2/3 style.

The paper prints "4s", "2m06s", "9h03m39s" for measured values and coarse
"days" / "years" prognoses for estimates beyond the cutoff.
"""

from __future__ import annotations

__all__ = ["format_duration", "format_estimate", "format_count"]

_MINUTE = 60.0
_HOUR = 3600.0
_DAY = 86400.0
_YEAR = 365.0 * _DAY


def format_duration(seconds: float) -> str:
    """Render a measured duration the way the paper's tables do."""
    if seconds < 0:
        raise ValueError(f"negative duration: {seconds}")
    if seconds < _MINUTE:
        if seconds < 10:
            return f"{seconds:.2f}s"
        return f"{seconds:.0f}s"
    if seconds < _HOUR:
        minutes, rest = divmod(seconds, _MINUTE)
        return f"{int(minutes)}m{rest:02.0f}s"
    if seconds < _DAY:
        hours, rest = divmod(seconds, _HOUR)
        minutes = rest / _MINUTE
        return f"{int(hours)}h{minutes:02.0f}m"
    return format_estimate(seconds)


def format_estimate(seconds: float) -> str:
    """Coarse prognosis for values beyond the cutoff ("days", "years")."""
    if seconds < _DAY:
        return f"≈{format_duration(seconds)}"
    if seconds < 2 * _YEAR:
        days = seconds / _DAY
        return f"≈{days:.0f} days"
    years = seconds / _YEAR
    return f"≈{years:.0f} years"


def format_count(value: int) -> str:
    """Large counts with thousands separators; huge ones in scientific
    notation like the paper's "55 · 10^10"."""
    if value < 10_000_000:
        return f"{value:,}"
    exponent = len(str(value)) - 2
    mantissa = value / (10 ** exponent)
    return f"{mantissa:.0f}·10^{exponent}"
