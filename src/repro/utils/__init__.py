"""Shared utilities: duration formatting, table rendering."""

from repro.utils.tables import render_table
from repro.utils.timing import format_count, format_duration, format_estimate

__all__ = ["format_duration", "format_estimate", "format_count", "render_table"]
