"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["render_table"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render a left-padded ASCII table with a rule under the header."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but the table has {columns} columns"
            )
    widths: List[int] = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        if rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
