"""Deterministic generator of synthetic MiniJava product lines.

The paper evaluates on four real Java SPLs (BerkeleyDB, GPL, Lampiro,
MM08).  Those codebases cannot be consumed by a from-scratch MiniJava
frontend, so the benchmark subjects are *generated* to match each
subject's shape — code size, class/method structure, total vs. reachable
feature counts, annotation density, and feature-model constrainedness
(see DESIGN.md, "Substitutions").  What drives the paper's measurements is
the number of valid configurations (A2's exponential factor) and the code
size (per-run cost); both are controlled here.

Generation is fully deterministic per seed.  Generated programs are
guaranteed to lower cleanly:

- locals are declared once per method and initialized before use
  (except deliberate *uninitialized-variable seeds* behind annotations —
  the bug pattern the paper's introduction motivates);
- declarations themselves are never annotated, so every derived product
  compiles too (needed for the A1 baseline);
- all calls resolve in the class hierarchy by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.constraints.formula import And, Formula, Not, Or, Var
from repro.featuremodel.model import Feature, FeatureModel
from repro.minijava import ast
from repro.minijava.pretty import pretty_print
from repro.spl.product_line import ProductLine

__all__ = ["SubjectSpec", "generate_subject", "default_feature_model"]


@dataclass
class SubjectSpec:
    """Parameters controlling one synthetic subject."""

    name: str
    seed: int = 0
    #: classes besides Main; some become subclasses of earlier ones
    classes: int = 6
    subclass_ratio: float = 0.34
    methods_per_class: Tuple[int, int] = (2, 4)
    statements_per_method: Tuple[int, int] = (6, 14)
    #: probability that an (annotatable) statement gets an #ifdef
    annotation_density: float = 0.3
    #: how many of the generated methods main() calls directly
    entry_fanout: int = 6
    #: features used in reachable annotations
    reachable_features: Sequence[str] = ()
    #: features that only occur in dead code / the model
    dead_features: Sequence[str] = ()
    #: the feature model (defaults to all-optional over both pools)
    feature_model: Optional[FeatureModel] = None
    #: probability of a secret() source / print() sink per method
    source_density: float = 0.25
    sink_density: float = 0.5
    #: probability of an uninitialized-variable bug pattern per method
    uninit_density: float = 0.15


def default_feature_model(
    name: str, reachable: Sequence[str], dead: Sequence[str]
) -> FeatureModel:
    """An unconstrained model: every feature optional under the root."""
    root_name = "".join(ch if ch.isalnum() else "_" for ch in name) + "_root"
    root = Feature(root_name)
    for feature_name in (*reachable, *dead):
        root.add_optional(Feature(feature_name))
    return FeatureModel(root=root, name=name)


def generate_subject(spec: SubjectSpec) -> ProductLine:
    """Generate the product line described by ``spec``."""
    return _Generator(spec).generate()


@dataclass
class _MethodPlan:
    class_name: str
    name: str
    params: Tuple[str, ...]
    overrides: bool = False


class _Generator:
    def __init__(self, spec: SubjectSpec) -> None:
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.reachable = list(spec.reachable_features) or ["F0", "F1", "F2"]
        self.dead = list(spec.dead_features)
        self.model = spec.feature_model or default_feature_model(
            spec.name, self.reachable, self.dead
        )
        # planned structure
        self.class_names: List[str] = []
        self.superclass: Dict[str, Optional[str]] = {}
        self.fields: Dict[str, List[Tuple[str, ast.Type]]] = {}
        self.plans: Dict[str, List[_MethodPlan]] = {}
        self._unused_reachable: List[str] = list(self.reachable)

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def generate(self) -> ProductLine:
        self._plan_hierarchy()
        self._plan_methods()
        classes = [self._emit_class(name) for name in self.class_names]
        classes.append(self._emit_main())
        program = ast.Program(classes)
        source = pretty_print(program)
        return ProductLine(
            name=self.spec.name,
            source=source,
            feature_model=self.model,
        )

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _plan_hierarchy(self) -> None:
        for index in range(self.spec.classes):
            name = f"C{index}"
            self.class_names.append(name)
            parent = None
            if index > 0 and self.rng.random() < self.spec.subclass_ratio:
                parent = self.rng.choice(self.class_names[:index])
            self.superclass[name] = parent
            fields: List[Tuple[str, ast.Type]] = [
                (f"state{index}", ast.INT),
            ]
            if index > 0 and self.rng.random() < 0.6:
                # An object-typed field enabling inter-class call chains.
                dep = self.rng.choice(self.class_names[:index])
                fields.append((f"dep{index}", ast.Type(dep)))
            self.fields[name] = fields

    def _plan_methods(self) -> None:
        lo, hi = self.spec.methods_per_class
        for class_name in self.class_names:
            plans: List[_MethodPlan] = []
            count = self.rng.randint(lo, hi)
            parent = self.superclass[class_name]
            # Occasionally override an inherited method (CHA dispatch).
            if parent is not None and self.plans.get(parent):
                for inherited in self.plans[parent]:
                    if self.rng.random() < 0.4:
                        plans.append(
                            _MethodPlan(
                                class_name,
                                inherited.name,
                                inherited.params,
                                overrides=True,
                            )
                        )
            for index in range(count):
                arity = self.rng.randint(1, 2)
                plans.append(
                    _MethodPlan(
                        class_name,
                        f"{class_name.lower()}_m{index}",
                        tuple(f"p{i}" for i in range(arity)),
                    )
                )
            self.plans[class_name] = plans

    def _visible_fields(self, class_name: str) -> List[Tuple[str, ast.Type]]:
        result: List[Tuple[str, ast.Type]] = []
        current: Optional[str] = class_name
        while current is not None:
            result.extend(self.fields[current])
            current = self.superclass[current]
        return result

    def _visible_methods(self, class_name: str) -> List[_MethodPlan]:
        result: List[_MethodPlan] = []
        seen = set()
        current: Optional[str] = class_name
        while current is not None:
            for plan in self.plans[current]:
                if plan.name not in seen:
                    seen.add(plan.name)
                    result.append(plan)
            current = self.superclass[current]
        return result

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------

    def _annotation(self, pool: Sequence[str]) -> Formula:
        # Prefer features that have not been used yet so every reachable
        # feature really shows up in the reachable code.
        if self._unused_reachable and pool is self.reachable:
            name = self._unused_reachable.pop(
                self.rng.randrange(len(self._unused_reachable))
            )
        else:
            name = self.rng.choice(list(pool))
        roll = self.rng.random()
        if roll < 0.6:
            return Var(name)
        if roll < 0.8:
            return Not(Var(name))
        other = self.rng.choice(list(pool))
        if self.rng.random() < 0.5:
            return And((Var(name), Var(other)))
        return Or((Var(name), Var(other)))

    def _maybe_annotate(self, stmt: ast.Stmt, pool: Sequence[str]) -> ast.Stmt:
        if self.rng.random() < self.spec.annotation_density:
            stmt.annotation = self._annotation(pool)
        return stmt

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def _emit_class(self, class_name: str) -> ast.ClassDecl:
        fields = [
            ast.FieldDecl(fld_type, fld_name)
            for fld_name, fld_type in self.fields[class_name]
        ]
        methods = [
            self._emit_method(plan) for plan in self.plans[class_name]
        ]
        # A couple of dead (never-called) methods carrying dead-feature
        # annotations, like Lampiro's many dead features.
        if self.dead and self.rng.random() < 0.8:
            methods.append(self._emit_dead_method(class_name))
        return ast.ClassDecl(
            class_name, self.superclass[class_name], fields, methods
        )

    def _emit_dead_method(self, class_name: str) -> ast.MethodDecl:
        body: List[ast.Stmt] = [
            ast.VarDecl(ast.INT, "d0", ast.IntLit(self.rng.randrange(100)))
        ]
        for index, feature_name in enumerate(self.dead):
            if self.rng.random() < 0.5:
                continue
            assign = ast.AssignStmt(
                ast.VarRef("d0"),
                ast.Binary("+", ast.VarRef("d0"), ast.IntLit(index)),
            )
            assign.annotation = Var(feature_name)
            body.append(assign)
        body.append(ast.ReturnStmt(ast.VarRef("d0")))
        return ast.MethodDecl(
            ast.INT, f"{class_name.lower()}_dead", [], ast.Block(body)
        )

    def _emit_method(self, plan: _MethodPlan) -> ast.MethodDecl:
        emitter = _BodyEmitter(self, plan)
        return emitter.emit()

    def _emit_main(self) -> ast.ClassDecl:
        statements: List[ast.Stmt] = []
        # Instantiate a few classes (virtual dispatch roots).
        object_locals: List[Tuple[str, str]] = []
        roots = [name for name in self.class_names]
        self.rng.shuffle(roots)
        for index, class_name in enumerate(roots[: max(2, self.spec.classes // 2)]):
            local = f"o{index}"
            statements.append(
                ast.VarDecl(ast.Type(class_name), local, ast.New(class_name))
            )
            object_locals.append((local, class_name))
        statements.append(ast.VarDecl(ast.INT, "acc", ast.IntLit(0)))
        # Call a fan-out of methods, sometimes behind annotations.
        calls = 0
        attempts = 0
        while calls < self.spec.entry_fanout and attempts < 100:
            attempts += 1
            local, class_name = self.rng.choice(object_locals)
            visible = self._visible_methods(class_name)
            if not visible:
                continue
            plan = self.rng.choice(visible)
            args: List[ast.Expr] = [
                ast.IntLit(self.rng.randrange(50)) for _ in plan.params
            ]
            call = ast.Call(ast.VarRef(local), plan.name, args)
            stmt: ast.Stmt = ast.AssignStmt(ast.VarRef("acc"), call)
            self._maybe_annotate(stmt, self.reachable)
            statements.append(stmt)
            calls += 1
        statements.append(ast.PrintStmt(ast.VarRef("acc")))
        main = ast.MethodDecl(ast.VOID, "main", [], ast.Block(statements))
        return ast.ClassDecl("Main", None, [], [main])


class _BodyEmitter:
    """Emits one method body with a guaranteed-well-formed local pool."""

    def __init__(self, generator: _Generator, plan: _MethodPlan) -> None:
        self.g = generator
        self.rng = generator.rng
        self.plan = plan
        self.spec = generator.spec
        self.int_locals: List[str] = list(plan.params)
        self.object_locals: List[Tuple[str, str]] = []
        self.local_counter = 0
        self.statements: List[ast.Stmt] = []

    def emit(self) -> ast.MethodDecl:
        lo, hi = self.spec.statements_per_method
        budget = self.rng.randint(lo, hi)
        self._emit_prologue()
        for _ in range(budget):
            self._emit_statement()
        if self.rng.random() < self.spec.uninit_density:
            self._emit_uninit_pattern()
        if self.rng.random() < self.spec.sink_density:
            self.statements.append(
                self.g._maybe_annotate(
                    ast.PrintStmt(ast.VarRef(self._int_local())),
                    self.g.reachable,
                )
            )
        # An occasional annotated early return (exercises the lifted
        # return rules), then the mandatory final return.
        if self.rng.random() < 0.3:
            early = ast.ReturnStmt(ast.VarRef(self._int_local()))
            early.annotation = self.g._annotation(self.g.reachable)
            self.statements.append(early)
        self.statements.append(ast.ReturnStmt(ast.VarRef(self._int_local())))
        params = [ast.Param(ast.INT, name) for name in self.plan.params]
        return ast.MethodDecl(
            ast.INT, self.plan.name, params, ast.Block(self.statements)
        )

    # ------------------------------------------------------------------
    # Locals
    # ------------------------------------------------------------------

    def _fresh_name(self) -> str:
        name = f"v{self.local_counter}"
        self.local_counter += 1
        return name

    def _int_local(self) -> str:
        return self.rng.choice(self.int_locals)

    def _int_expr(self) -> ast.Expr:
        roll = self.rng.random()
        if roll < 0.3:
            return ast.IntLit(self.rng.randrange(100))
        if roll < 0.6:
            return ast.VarRef(self._int_local())
        op = self.rng.choice(["+", "-", "*"])
        return ast.Binary(op, ast.VarRef(self._int_local()), self._int_expr())

    def _emit_prologue(self) -> None:
        # A couple of initialized int locals (declarations unannotated).
        for _ in range(self.rng.randint(1, 3)):
            name = self._fresh_name()
            self.statements.append(ast.VarDecl(ast.INT, name, self._int_expr()))
            self.int_locals.append(name)
        # Sometimes a source.
        if self.rng.random() < self.spec.source_density:
            name = self._fresh_name()
            self.statements.append(
                ast.VarDecl(ast.INT, name, ast.Call(None, "secret", []))
            )
            self.int_locals.append(name)
        # An object local if a dep field is visible (enables call chains).
        for fld_name, fld_type in self.g._visible_fields(self.plan.class_name):
            if fld_type.is_class:
                name = self._fresh_name()
                self.statements.append(
                    ast.VarDecl(
                        fld_type,
                        name,
                        ast.FieldAccess(ast.ThisRef(), fld_name),
                    )
                )
                self.object_locals.append((name, fld_type.name))
                break

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _emit_statement(self) -> None:
        emitters: List[Callable[[], Optional[ast.Stmt]]] = [
            self._assign,
            self._assign,
            self._field_store,
            self._field_load,
            self._call,
            self._call,
            self._if,
            self._while,
        ]
        stmt = self.rng.choice(emitters)()
        if stmt is not None:
            self.statements.append(
                self.g._maybe_annotate(stmt, self.g.reachable)
            )

    def _assign(self) -> ast.Stmt:
        return ast.AssignStmt(ast.VarRef(self._int_local()), self._int_expr())

    def _field_store(self) -> Optional[ast.Stmt]:
        int_fields = [
            name
            for name, ftype in self.g._visible_fields(self.plan.class_name)
            if not ftype.is_class
        ]
        if not int_fields:
            return None
        return ast.AssignStmt(
            ast.FieldAccess(ast.ThisRef(), self.rng.choice(int_fields)),
            ast.VarRef(self._int_local()),
        )

    def _field_load(self) -> Optional[ast.Stmt]:
        int_fields = [
            name
            for name, ftype in self.g._visible_fields(self.plan.class_name)
            if not ftype.is_class
        ]
        if not int_fields:
            return None
        return ast.AssignStmt(
            ast.VarRef(self._int_local()),
            ast.FieldAccess(ast.ThisRef(), self.rng.choice(int_fields)),
        )

    def _call_target(self) -> Optional[Tuple[ast.Expr, _MethodPlan]]:
        candidates: List[Tuple[ast.Expr, _MethodPlan]] = []
        # this-calls (avoid trivial self-recursion most of the time)
        for plan in self.g._visible_methods(self.plan.class_name):
            if plan.name != self.plan.name or self.rng.random() < 0.1:
                candidates.append((ast.ThisRef(), plan))
        for local, class_name in self.object_locals:
            for plan in self.g._visible_methods(class_name):
                candidates.append((ast.VarRef(local), plan))
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _call(self) -> Optional[ast.Stmt]:
        target = self._call_target()
        if target is None:
            return None
        receiver, plan = target
        args: List[ast.Expr] = [
            ast.VarRef(self._int_local()) for _ in plan.params
        ]
        return ast.AssignStmt(
            ast.VarRef(self._int_local()),
            ast.Call(receiver, plan.name, args),
        )

    def _if(self) -> ast.Stmt:
        cond = ast.Binary(
            self.rng.choice(["<", ">", "==", "!="]),
            ast.VarRef(self._int_local()),
            ast.IntLit(self.rng.randrange(50)),
        )
        then_block = ast.Block([self._assign()])
        else_block = ast.Block([self._assign()]) if self.rng.random() < 0.5 else None
        return ast.IfStmt(cond, then_block, else_block)

    def _while(self) -> ast.Stmt:
        counter = self._int_local()
        cond = ast.Binary("<", ast.VarRef(counter), ast.IntLit(10))
        body = ast.Block(
            [
                ast.AssignStmt(
                    ast.VarRef(counter),
                    ast.Binary("+", ast.VarRef(counter), ast.IntLit(1)),
                )
            ]
        )
        return ast.WhileStmt(cond, body)

    def _emit_uninit_pattern(self) -> None:
        """The bug pattern of the paper's introduction: initialization
        behind a feature, use outside it."""
        name = self._fresh_name()
        self.statements.append(ast.VarDecl(ast.INT, name))
        init = ast.AssignStmt(ast.VarRef(name), self._int_expr())
        init.annotation = self.g._annotation(self.g.reachable)
        self.statements.append(init)
        self.statements.append(
            ast.AssignStmt(
                ast.VarRef(self._int_local()),
                ast.Binary("+", ast.VarRef(name), ast.IntLit(1)),
            )
        )
        self.int_locals.append(name)
