"""The four benchmark subjects, shaped after the paper's Table 1.

The paper's subjects (real Java SPLs, analyzed through Soot/CIDE):

    ============  =====  ========  ===========  ============  ========
    Benchmark     KLOC   features  reachable    reachable     valid
                         total     features     configs       configs
    ============  =====  ========  ===========  ============  ========
    BerkeleyDB    84.0   56        39           55 * 10^10    unknown
    GPL            1.4   29        19           524,288       1,872
    Lampiro       45.0   20        2            4             4
    MM08           5.7   34        9            512           26
    ============  =====  ========  ===========  ============  ========

This module generates laptop-scale synthetic subjects with the same
*shape*: the ordering and rough ratios of code size, total-vs-reachable
feature counts and feature-model constrainedness are preserved, because
those are what drive the paper's measurements (see DESIGN.md).  Absolute
sizes are scaled down so that the experiments complete on one machine
within minutes — like-for-like with the paper's protocol, including the
cutoff-and-estimate rule for subjects where the per-configuration
baseline would run for "days" or "years".

All subjects are deterministic (fixed seeds).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.constraints.formula import parse_formula
from repro.featuremodel.model import Feature, FeatureModel
from repro.spl.generator import SubjectSpec, generate_subject
from repro.spl.product_line import ProductLine

__all__ = [
    "berkeleydb_like",
    "gpl_like",
    "lampiro_like",
    "mm08_like",
    "paper_subjects",
]


def _features(prefix: str, count: int) -> List[str]:
    return [f"{prefix}{i}" for i in range(count)]


# ----------------------------------------------------------------------
# BerkeleyDB-like: large code base, many features, barely constrained
# model — the number of valid configurations is astronomically large
# ("unknown" in the paper because enumerating them takes years).
# ----------------------------------------------------------------------


def berkeleydb_like() -> ProductLine:
    reachable = _features("DB", 30)
    dead = _features("DBX", 12)
    root = Feature("BerkeleyDB")
    root.add_mandatory(Feature("Core"))
    for name in reachable:
        root.add_optional(Feature(name))
    for name in dead:
        root.add_optional(Feature(name))
    model = FeatureModel(
        root=root,
        cross_tree=[
            parse_formula("DB1 -> DB0"),
            parse_formula("DB3 -> DB2"),
        ],
        name="berkeleydb-like",
    )
    spec = SubjectSpec(
        name="BerkeleyDB-like",
        seed=84,
        classes=18,
        subclass_ratio=0.3,
        methods_per_class=(3, 5),
        statements_per_method=(8, 16),
        annotation_density=0.3,
        entry_fanout=12,
        reachable_features=reachable,
        dead_features=dead,
        feature_model=model,
    )
    return generate_subject(spec)


# ----------------------------------------------------------------------
# GPL-like: small code base, many reachable features, heavily
# constrained model (hundreds-to-thousands of valid configurations out
# of half a million).
# ----------------------------------------------------------------------


def gpl_like() -> ProductLine:
    reachable = _features("G", 12)
    dead = _features("GX", 6)
    root = Feature("GPL")
    root.add_mandatory(Feature("Base"))
    # xor and or groups multiply small factors, like GPL's algorithms
    # and graph-type alternatives.
    root.add_group("xor", [Feature("G0"), Feature("G1"), Feature("G2")])
    root.add_group("xor", [Feature("G3"), Feature("G4")])
    root.add_group("or", [Feature("G5"), Feature("G6"), Feature("G7")])
    for name in ("G8", "G9", "G10", "G11"):
        root.add_optional(Feature(name))
    for name in dead:
        root.add_optional(Feature(name))
    model = FeatureModel(
        root=root,
        cross_tree=[
            parse_formula("G8 -> G5"),
            parse_formula("G9 -> G0 || G3"),
        ],
        name="gpl-like",
    )
    spec = SubjectSpec(
        name="GPL-like",
        seed=14,
        classes=5,
        subclass_ratio=0.4,
        methods_per_class=(2, 4),
        statements_per_method=(6, 12),
        annotation_density=0.4,
        entry_fanout=7,
        reachable_features=reachable,
        dead_features=dead,
        feature_model=model,
    )
    return generate_subject(spec)


# ----------------------------------------------------------------------
# Lampiro-like: mid-size code base but almost all features dead — only 2
# reachable, model unconstraining, so just 4 valid configurations.
# ----------------------------------------------------------------------


def lampiro_like() -> ProductLine:
    reachable = _features("L", 2)
    dead = _features("LX", 18)
    model = None  # default: all optional, unconstrained (4 valid configs)
    spec = SubjectSpec(
        name="Lampiro-like",
        seed=45,
        classes=12,
        subclass_ratio=0.25,
        methods_per_class=(3, 5),
        statements_per_method=(8, 14),
        annotation_density=0.1,
        entry_fanout=9,
        reachable_features=reachable,
        dead_features=dead,
        feature_model=model,
    )
    return generate_subject(spec)


# ----------------------------------------------------------------------
# MM08-like: small code base, 9 reachable features, constrained model
# (tens of valid configurations out of 512).
# ----------------------------------------------------------------------


def mm08_like() -> ProductLine:
    reachable = _features("M", 9)
    dead = _features("MX", 12)
    root = Feature("MM08")
    root.add_mandatory(Feature("Media"))
    root.add_group("xor", [Feature("M0"), Feature("M1"), Feature("M2")])
    root.add_group("xor", [Feature("M3"), Feature("M4")])
    for name in ("M5", "M6", "M7", "M8"):
        root.add_optional(Feature(name))
    for name in dead:
        root.add_optional(Feature(name))
    model = FeatureModel(
        root=root,
        cross_tree=[
            parse_formula("M6 -> M5"),
            parse_formula("M7 -> M5"),
            parse_formula("M8 -> M6"),
            parse_formula("M7 -> M3"),
        ],
        name="mm08-like",
    )
    spec = SubjectSpec(
        name="MM08-like",
        seed=8,
        classes=7,
        subclass_ratio=0.35,
        methods_per_class=(2, 4),
        statements_per_method=(6, 12),
        annotation_density=0.35,
        entry_fanout=8,
        reachable_features=reachable,
        dead_features=dead,
        feature_model=model,
    )
    return generate_subject(spec)


def paper_subjects() -> Tuple[Tuple[str, Callable[[], ProductLine]], ...]:
    """The Table 1/2/3 subject lineup, in the paper's order."""
    return (
        ("BerkeleyDB-like", berkeleydb_like),
        ("GPL-like", gpl_like),
        ("Lampiro-like", lampiro_like),
        ("MM08-like", mm08_like),
    )
