"""Scripted single-method edits for incremental-analysis experiments.

The edit benchmark and the ``--incremental`` digest check need a
reproducible "developer touched one method" event.  The edit applied
here is deliberately semantics-preserving at the analysis level — a
fresh, never-read local declaration at the top of the method body — but
that is *not* what the correctness argument rests on: cold and warm
re-solves are always compared on the *same edited source*, so any edit
would do.  A content-changing edit is exactly what flips the method's
digest (and its transitive callers') and forces the dirty closure to
recompute.

Target selection picks the reachable non-entry method with the smallest
dirty closure (the method itself plus its transitive callers), ties
broken by qualified name — the best case for incrementality and a
deterministic one, so benchmark rows and CI baselines are stable.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Set, Tuple

from repro.ir.callgraph import CallGraph
from repro.ir.program import IRMethod
from repro.minijava.ast import IntLit, Type, VarDecl
from repro.minijava.parser import parse_program
from repro.minijava.pretty import pretty_print
from repro.spl.product_line import ProductLine

__all__ = [
    "EDIT_LOCAL",
    "dirty_closure",
    "choose_edit_target",
    "apply_scripted_edit",
    "edited_product_line",
]

#: Name of the local the scripted edit introduces; fresh by construction
#: (generated subjects and the hand-written examples never use it).
EDIT_LOCAL = "editProbe0"


def dirty_closure(call_graph: CallGraph, method: IRMethod) -> Set[IRMethod]:
    """The methods whose summaries an edit to ``method`` invalidates:
    the method itself plus its transitive callers."""
    seen = {method}
    stack = [method]
    while stack:
        current = stack.pop()
        for call in call_graph.callers(current):
            caller = call.method
            if caller not in seen:
                seen.add(caller)
                stack.append(caller)
    return seen


def choose_edit_target(product_line: ProductLine) -> Tuple[str, int]:
    """Pick the edit target: ``(qualified name, dirty closure size)``.

    Deterministic: smallest dirty closure first, then lexicographic on
    the qualified name.  Entry methods are excluded — editing the entry
    dirties everything, which is the (separately measured) worst case,
    not the 1-of-N scenario.
    """
    icfg = product_line.icfg
    graph = icfg.call_graph
    entries = set(icfg.entry_points)
    best = None
    for method in graph.reachable_methods:
        if method in entries:
            continue
        size = len(dirty_closure(graph, method))
        key = (size, method.qualified_name)
        if best is None or key < best:
            best = key
    if best is None:
        raise ValueError(f"{product_line.name}: no editable method")
    return best[1], best[0]


def apply_scripted_edit(source: str, qualified_name: str) -> str:
    """Insert ``int editProbe0 = 0;`` at the top of the named method and
    re-render the program (annotations preserved)."""
    program = parse_program(source)
    class_name, _, method_name = qualified_name.partition(".")
    for cls in program.classes:
        if cls.name != class_name:
            continue
        for method in cls.methods:
            if method.name != method_name:
                continue
            method.body.statements.insert(
                0, VarDecl(Type("int"), EDIT_LOCAL, IntLit(0))
            )
            return pretty_print(program, with_annotations=True)
    raise ValueError(f"no method {qualified_name!r} in program")


def edited_product_line(
    product_line: ProductLine, qualified_name: str = None
) -> Tuple[ProductLine, str, int]:
    """A copy of ``product_line`` with one method edited.

    Returns ``(edited product line, edited method, dirty closure size)``.
    The copy shares the feature model and entry point but re-parses from
    the edited source, so its IR/ICFG are fresh.
    """
    if qualified_name is None:
        qualified_name, dirty = choose_edit_target(product_line)
    else:
        icfg = product_line.icfg
        target = next(
            m
            for m in icfg.call_graph.reachable_methods
            if m.qualified_name == qualified_name
        )
        dirty = len(dirty_closure(icfg.call_graph, target))
    edited_source = apply_scripted_edit(product_line.source, qualified_name)
    edited = replace(
        product_line,
        name=f"{product_line.name}+edit",
        source=edited_source,
        _ast=None,
        _ir=None,
        _icfg=None,
    )
    return edited, qualified_name, dirty
