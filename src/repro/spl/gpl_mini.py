"""A hand-written miniature of GPL, the Graph Product Line.

GPL (Lopez-Herrejon & Batory) is one of the paper's four evaluation
subjects: a product line of graph algorithms where the graph
representation and the algorithms are features.  This miniature keeps its
character in MiniJava: an adjacency-list graph over fixed-size node
buffers, a search skeleton whose strategy (BFS vs. DFS order) is an
exclusive-or feature choice, optional edge weights, optional connectivity
counting, and an optional cycle check that requires the search.

Written by hand (not generated) so integration tests can pin down exact
constraints; also serves as the richest parsing/lowering fixture.
"""

from __future__ import annotations

from repro.featuremodel.parser import parse_feature_model
from repro.spl.product_line import ProductLine

__all__ = ["gpl_mini"]

GPL_MINI_SOURCE = """\
class Node {
    int id;
    int visited;
    Node next;
    int mark() {
        int was = this.visited;
        this.visited = 1;
        return was;
    }
}

class Edge {
    Node source;
    Node target;
    int weight;
    int cost() {
        int w = 1;
        #ifdef (Weighted)
        w = this.weight;
        #endif
        return w;
    }
}

class Graph {
    Node nodes;
    Edge edges;
    int nodeCount;
    int edgeCount;

    Node addNode(int id) {
        Node created = new Node();
        created.id = id;
        created.next = this.nodes;
        this.nodes = created;
        this.nodeCount = this.nodeCount + 1;
        return created;
    }

    Edge connect(Node a, Node b) {
        Edge created = new Edge();
        created.source = a;
        created.target = b;
        #ifdef (Weighted)
        created.weight = a.id + b.id;
        #endif
        this.edges = created;
        this.edgeCount = this.edgeCount + 1;
        return created;
    }

    int search(Node start) {
        int order = 0;
        #ifdef (BFS)
        order = this.bfs(start);
        #endif
        #ifdef (DFS)
        order = this.dfs(start, 0);
        #endif
        return order;
    }

    int bfs(Node start) {
        int seen = 0;
        Node current = start;
        while (seen < this.nodeCount) {
            int was = current.mark();
            if (was == 0) {
                seen = seen + 1;
            }
            current = current.next;
            if (current == null) {
                return seen;
            }
        }
        return seen;
    }

    int dfs(Node node, int depth) {
        int was = node.mark();
        if (was == 1) {
            return depth;
        }
        Node following = node.next;
        if (following == null) {
            return depth + 1;
        }
        return this.dfs(following, depth + 1);
    }

    int components() {
        int count = 0;
        #ifdef (Connected)
        Node current = this.nodes;
        while (current != null) {
            if (current.visited == 0) {
                count = count + 1;
                int size = this.search(current);
            }
            current = current.next;
        }
        #endif
        return count;
    }

    int hasCycle() {
        int found = 0;
        #ifdef (Cycle)
        int reached = this.search(this.nodes);
        if (reached < this.edgeCount) {
            found = 1;
        }
        #endif
        return found;
    }

    int totalWeight() {
        int total = 0;
        Edge current = this.edges;
        #ifdef (Weighted)
        total = current.cost();
        #endif
        return total;
    }
}

class Main {
    void main() {
        Graph g = new Graph();
        Node a = g.addNode(1);
        Node b = g.addNode(2);
        Node c = g.addNode(3);
        Edge ab = g.connect(a, b);
        Edge bc = g.connect(b, c);
        int reached = g.search(a);
        print(reached);
        int comps = g.components();
        print(comps);
        int cyclic = g.hasCycle();
        print(cyclic);
        int weight = g.totalWeight();
        print(weight);
    }
}
"""

GPL_MINI_MODEL = """
featuremodel gpl_mini
root GPLMini {
    mandatory GraphType
    optional Weighted
    xor { BFS DFS }
    optional Connected
    optional Cycle
}
constraint Cycle -> DFS;
constraint Connected -> BFS;
"""


def gpl_mini() -> ProductLine:
    """The miniature Graph Product Line with its feature model."""
    return ProductLine(
        name="gpl-mini",
        source=GPL_MINI_SOURCE,
        feature_model=parse_feature_model(GPL_MINI_MODEL),
    )
