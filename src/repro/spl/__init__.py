"""Software product lines: container, examples, generator, benchmark subjects."""

from repro.spl.benchmarks import (
    berkeleydb_like,
    gpl_like,
    lampiro_like,
    mm08_like,
    paper_subjects,
)
from repro.spl.examples import device_spl, figure1, figure1_with_model
from repro.spl.gpl_mini import gpl_mini
from repro.spl.generator import SubjectSpec, default_feature_model, generate_subject
from repro.spl.product_line import ProductLine

__all__ = [
    "ProductLine",
    "figure1",
    "figure1_with_model",
    "device_spl",
    "gpl_mini",
    "SubjectSpec",
    "generate_subject",
    "default_feature_model",
    "berkeleydb_like",
    "gpl_like",
    "lampiro_like",
    "mm08_like",
    "paper_subjects",
]
