"""Hand-written example product lines, starting with the paper's Figure 1."""

from __future__ import annotations

from repro.constraints.formula import parse_formula
from repro.featuremodel.model import FeatureModel
from repro.featuremodel.parser import parse_feature_model
from repro.spl.product_line import ProductLine

__all__ = ["figure1", "figure1_with_model", "device_spl"]

FIGURE1_SOURCE = """\
class Main {
    void main() {
        int x = secret();
        int y = 0;
        #ifdef (F)
        x = 0;
        #endif
        #ifdef (G)
        y = foo(x);
        #endif
        print(y);
    }
    int foo(int p) {
        #ifdef (H)
        p = 0;
        #endif
        return p;
    }
}
"""


def figure1() -> ProductLine:
    """The paper's running example (Figure 1a), no feature model.

    The taint analysis must report that ``secret`` may leak into ``print``
    exactly under the constraint ¬F ∧ G ∧ ¬H.
    """
    return ProductLine(
        name="figure1",
        source=FIGURE1_SOURCE,
        feature_model=FeatureModel(root=None, name="figure1"),
    )


def figure1_with_model() -> ProductLine:
    """Figure 1a under the feature model F ↔ G of Section 1 ("both F and
    G are either enabled or disabled"), under which the secret cannot
    leak: (¬F ∧ G ∧ ¬H) ∧ (F ↔ G) = false."""
    model = FeatureModel(
        root=None,
        cross_tree=[parse_formula("F <-> G")],
        name="figure1-fg",
    )
    return ProductLine(
        name="figure1-with-model", source=FIGURE1_SOURCE, feature_model=model
    )


DEVICE_SOURCE = """\
class Device {
    int buffered;
    int send(int payload) {
        int checksum = 0;
        #ifdef (Checksum)
        checksum = payload % 251;
        #endif
        #ifdef (Buffering)
        this.buffered = payload;
        #endif
        return payload + checksum;
    }
    int flush() {
        int pending;
        #ifdef (Buffering)
        pending = this.buffered;
        #endif
        return pending;
    }
}

class SecureDevice extends Device {
    int send(int payload) {
        int masked = payload;
        #ifdef (!Encryption)
        masked = secret();
        #endif
        return masked;
    }
}

class Main {
    void main() {
        Device d = new Device();
        #ifdef (Secure)
        d = new SecureDevice();
        #endif
        int code = d.send(42);
        print(code);
        int rest = d.flush();
        print(rest);
    }
}
"""


def device_spl() -> ProductLine:
    """A small device-driver product line exercising virtual dispatch,
    fields, and an uninitialized-variable bug that only exists when
    ``Buffering`` is disabled."""
    model = parse_feature_model(
        """
        featuremodel device
        root DeviceSPL {
            mandatory Transport
            optional Buffering
            optional Checksum
            optional Secure
            optional Encryption
        }
        constraint Encryption -> Secure;
        """
    )
    return ProductLine(name="device", source=DEVICE_SOURCE, feature_model=model)
