"""A software product line: source, feature model, entry point.

Bundles everything the analyses and the experiment harness need, with
cached parsing/lowering so repeated analyses share one IR (and therefore
one set of statement identities).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, Optional, Tuple

from repro.constraints.bddsystem import BddConstraintSystem
from repro.featuremodel.configurations import (
    model_constraint,
    project_onto,
)
from repro.featuremodel.model import FeatureModel
from repro.ir.icfg import ICFG
from repro.ir.lowering import lower_program
from repro.ir.program import IRProgram
from repro.minijava.ast import Program
from repro.minijava.parser import parse_program
from repro.minijava.preprocessor import annotated_features

__all__ = ["ProductLine"]


@dataclass
class ProductLine:
    """A MiniJava product line plus its feature model."""

    name: str
    source: str
    feature_model: FeatureModel = field(default_factory=FeatureModel)
    entry: str = "Main.main"
    _ast: Optional[Program] = field(default=None, repr=False)
    _ir: Optional[IRProgram] = field(default=None, repr=False)
    _icfg: Optional[ICFG] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Cached pipeline stages
    # ------------------------------------------------------------------

    @property
    def ast(self) -> Program:
        """The parsed (unpreprocessed) product line."""
        if self._ast is None:
            self._ast = parse_program(self.source)
        return self._ast

    @property
    def ir(self) -> IRProgram:
        """The lowered IR with feature annotations preserved."""
        if self._ir is None:
            self._ir = lower_program(self.ast)
        return self._ir

    @property
    def icfg(self) -> ICFG:
        """The inter-procedural CFG from the entry point (cached; repeated
        analyses share statement identities)."""
        if self._icfg is None:
            self._icfg = ICFG.for_entry(self.ir, self.entry)
        return self._icfg

    def fresh_icfg(self) -> ICFG:
        """A fresh ICFG (for timing call-graph construction itself)."""
        return ICFG.for_entry(self.ir, self.entry)

    def verify(self) -> "ProductLine":
        """Run the IR well-formedness verifier; returns self for chaining."""
        from repro.ir.verify import verify_program

        verify_program(self.ir)
        return self

    # ------------------------------------------------------------------
    # Metrics (Table 1 columns)
    # ------------------------------------------------------------------

    @property
    def kloc(self) -> float:
        """Source size in thousands of (non-blank) lines."""
        lines = [line for line in self.source.splitlines() if line.strip()]
        return len(lines) / 1000.0

    @property
    def features_total(self) -> int:
        """Features in the feature model (Table 1, "Features total")."""
        return len(self.feature_model.feature_names)

    @property
    def features_annotated(self) -> FrozenSet[str]:
        """Features mentioned anywhere in annotations of the source."""
        return annotated_features(self.ast)

    @property
    def features_reachable(self) -> Tuple[str, ...]:
        """Features on statements reachable from the entry point
        (Table 1, "Features reachable"), in deterministic order."""
        return tuple(sorted(self.icfg.annotated_feature_names()))

    @property
    def configurations_reachable(self) -> int:
        """2^reachable (Table 1, "Configurations reachable")."""
        return 1 << len(self.features_reachable)

    def count_valid_configurations(self) -> int:
        """Valid configurations over the reachable features (Table 1,
        "Configurations valid"): projections of full valid configurations
        onto the reachable feature set."""
        system = BddConstraintSystem()
        constraint = model_constraint(self.feature_model, system)
        reachable = self.features_reachable
        for extra in reachable:
            # Reachable features outside the model are unconstrained.
            system.manager.var(extra)
        projected = project_onto(constraint, reachable)
        return projected.model_count(reachable)

    def valid_configurations(self) -> Iterator[FrozenSet[str]]:
        """All valid configurations over the reachable features, as
        frozensets of enabled features (deterministic order)."""
        system = BddConstraintSystem()
        constraint = model_constraint(self.feature_model, system)
        reachable = self.features_reachable
        for extra in reachable:
            system.manager.var(extra)
        projected = project_onto(constraint, reachable)
        seen = set()
        for assignment in projected.models(reachable):
            config = frozenset(n for n, v in assignment.items() if v)
            if config not in seen:
                seen.add(config)
                yield config
