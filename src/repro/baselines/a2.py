"""The feature-aware, configuration-specific baseline ``A2``.

Section 6.1 of the paper: "A2 operates on the feature-annotated
control-flow graph just as SPLLIFT, however unlike SPLLIFT A2 is
configuration-specific, i.e., evaluates the product line only with respect
to one concrete configuration c at a time.  If a statement s is labeled
with a feature constraint F then A2 first checks whether c satisfies F to
determine whether s is enabled.  If it is, then A2 propagates flow to s's
standard successors using the standard IFDS flow function defined for s.
If c does not satisfy F then A2 uses the identity function to propagate
intra-procedural flows to fall-through successor nodes only."

"The implementation of A2 is so simple that we consider it foolproof" —
the paper uses it as the correctness oracle for SPLLIFT (RQ1), and so does
this reproduction (``tests/test_rq1_crosscheck.py``).

``A2`` wraps an unmodified IFDS problem (like SPLLIFT does) and is solved
with the plain IFDS tabulation solver, once per configuration.
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Set, Tuple, TypeVar

from repro.constraints.base import ConfigurationLike, as_assignment
from repro.core.icfg import LiftedICFG
from repro.ifds.flowfunctions import FlowFunction, Identity, KillAll
from repro.ifds.problem import IFDSProblem
from repro.ifds.solver import IFDSResults, IFDSSolver
from repro.ir.instructions import Goto, Instruction, Return
from repro.ir.program import IRMethod

__all__ = ["A2Problem", "solve_a2", "measure_a2"]

D = TypeVar("D", bound=Hashable)


class A2Problem(IFDSProblem[D]):
    """Configuration-specific feature-aware wrapper of an IFDS problem."""

    def __init__(
        self,
        inner: IFDSProblem[D],
        configuration: ConfigurationLike,
    ) -> None:
        icfg = inner.icfg
        if not isinstance(icfg, LiftedICFG):
            icfg = LiftedICFG(icfg)
            inner.icfg = icfg
        super().__init__(icfg)
        self.inner = inner
        feature_names: Set[str] = set()
        for stmt in icfg.reachable_instructions():
            if stmt.annotation is not None:
                feature_names |= stmt.annotation.variables()
        self._assignment = as_assignment(configuration, feature_names)
        self._enabled_cache: Dict[Instruction, bool] = {}

    def enabled(self, stmt: Instruction) -> bool:
        """Does the configuration satisfy the statement's annotation?"""
        if stmt.annotation is None:
            return True
        cached = self._enabled_cache.get(stmt)
        if cached is None:
            cached = stmt.annotation.evaluate(self._assignment)
            self._enabled_cache[stmt] = cached
        return cached

    # ------------------------------------------------------------------
    # Flow functions
    # ------------------------------------------------------------------

    def initial_seeds(self):
        return self.inner.initial_seeds()

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction[D]:
        fall_through = LiftedICFG.fall_through_of(stmt)
        target = LiftedICFG.branch_target_of(stmt)
        if self.enabled(stmt):
            if isinstance(stmt, Goto) and succ is not target:
                return KillAll()  # an enabled goto never falls through
            if isinstance(stmt, Return):
                return KillAll()  # an enabled return exits, never flows on
            return self.inner.normal_flow(stmt, succ)
        # Disabled: identity along the fall-through branch only.
        if succ is fall_through:
            return Identity()
        return KillAll()

    def call_flow(self, call: Instruction, callee: IRMethod) -> FlowFunction[D]:
        if self.enabled(call):
            return self.inner.call_flow(call, callee)
        return KillAll()  # the call never happens

    def return_flow(
        self,
        call: Instruction,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction[D]:
        if self.enabled(call) and self.enabled(exit_stmt):
            return self.inner.return_flow(call, callee, exit_stmt, return_site)
        return KillAll()

    def call_to_return_flow(
        self, call: Instruction, return_site: Instruction
    ) -> FlowFunction[D]:
        if self.enabled(call):
            return self.inner.call_to_return_flow(call, return_site)
        return Identity()  # locals survive a call that never happens


def solve_a2(
    inner: IFDSProblem[D], configuration: ConfigurationLike
) -> IFDSResults[D]:
    """Solve one configuration with the A2 baseline; returns IFDS results."""
    return IFDSSolver(A2Problem(inner, configuration)).solve()


def measure_a2(
    inner: IFDSProblem[D], configuration: ConfigurationLike
) -> Tuple[float, Dict[str, int]]:
    """Time one A2 run; returns ``(seconds, solver_stats)``.

    Module-level (not a closure) so the experiment harness can fan
    configurations over :class:`repro.core.parallel.ProcessTaskPool`
    worker processes — the campaign's unit of parallelism is one
    configuration.
    """
    solver = IFDSSolver(A2Problem(inner, configuration))
    started = time.perf_counter()
    solver.solve()
    return time.perf_counter() - started, dict(solver.stats)
