"""Baselines: A1 (generate-and-analyze) and A2 (configuration-specific)."""

from repro.baselines.a1 import A1Result, A1Run, run_a1
from repro.baselines.a2 import A2Problem, solve_a2

__all__ = ["A1Result", "A1Run", "run_a1", "A2Problem", "solve_a2"]
