"""The traditional generate-and-analyze baseline ``A1``.

For every valid configuration: run the preprocessor, re-parse and re-lower
the resulting product, rebuild its call graph, and run the plain IFDS
analysis — i.e. the full cost the paper's Section 6.2 describes as
intractable ("the traditional approach would need to generate, parse and
analyze every single product").

Because each product is a *different* program, results live on product
statements, not product-line statements; mapping them back is exactly the
laborious step the paper's introduction complains about.  This module maps
results back via source lines, which suffices for the correctness
cross-checks and the benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Tuple, TypeVar

from repro.ifds.problem import IFDSProblem
from repro.ifds.solver import IFDSResults, IFDSSolver
from repro.ir.icfg import ICFG
from repro.ir.lowering import lower_program
from repro.minijava.ast import Program
from repro.minijava.preprocessor import derive_product

__all__ = ["A1Run", "A1Result", "run_a1"]

D = TypeVar("D", bound=Hashable)

# Builds the analysis for a product's ICFG (e.g. ``TaintAnalysis``).
AnalysisFactory = Callable[[ICFG], IFDSProblem]


@dataclass
class A1Run:
    """One product's analysis outcome."""

    configuration: FrozenSet[str]
    results: IFDSResults
    icfg: ICFG
    seconds: float
    build_seconds: float


@dataclass
class A1Result:
    """All products' outcomes plus aggregate timing."""

    runs: List[A1Run] = field(default_factory=list)
    total_seconds: float = 0.0

    @property
    def product_count(self) -> int:
        return len(self.runs)


def run_a1(
    program: Program,
    configurations: Iterable[FrozenSet[str]],
    analysis_factory: AnalysisFactory,
    entry: str = "Main.main",
    cutoff_seconds: float = float("inf"),
) -> A1Result:
    """Generate and analyze every configuration's product.

    Stops early once ``cutoff_seconds`` of total wall time is exceeded
    (mirroring the paper's ten-hour cutoff); the partial result carries the
    products analyzed so far.
    """
    outcome = A1Result()
    started = time.perf_counter()
    for configuration in configurations:
        build_start = time.perf_counter()
        product = derive_product(program, configuration)
        icfg = ICFG.for_entry(lower_program(product), entry)
        problem = analysis_factory(icfg)
        solve_start = time.perf_counter()
        results = IFDSSolver(problem).solve()
        now = time.perf_counter()
        outcome.runs.append(
            A1Run(
                configuration=frozenset(configuration),
                results=results,
                icfg=icfg,
                seconds=now - solve_start,
                build_seconds=solve_start - build_start,
            )
        )
        outcome.total_seconds = now - started
        if outcome.total_seconds > cutoff_seconds:
            break
    return outcome
