"""The ``spllift`` command-line tool.

Analyze a MiniJava product line from the shell::

    spllift analyze shop.mj --analysis taint --feature-model shop.fm
    spllift analyze shop.mj --analysis uninit --fm-mode ignore
    spllift interfaces shop.mj --feature Discount --feature-model shop.fm
    spllift run shop.mj --config Discount,Tax
    spllift metrics shop.mj --feature-model shop.fm
    spllift batch manifest.json --report report.json
    spllift cache stats
    spllift serve --cache-dir sqlite:///var/tmp/fleet.db --port 8765

``analyze`` prints, per finding, the statement and the feature constraint
under which it occurs; ``interfaces`` prints a feature's emergent
interface; ``run`` executes one configuration with the interpreter;
``metrics`` prints the Table-1-style subject metrics; ``batch`` fans a
manifest of jobs (a flat list or a dependency DAG) over the analysis
service (worker pool + result store); ``cache`` inspects, prunes (LRU,
``--max-bytes``), or clears the store; ``serve`` shares one store with a
fleet of schedulers over HTTP.

Everywhere a cache dir is accepted, the spec selects the store backend:
a plain path (directory store), ``sqlite://file.db`` (single-file WAL
store, safe for concurrent schedulers on one host), or
``http://host:port`` (client of a ``spllift serve`` daemon).

User errors — missing input files, unparseable feature models, unknown
analysis names, bad manifests — exit with status 2 and a one-line
``spllift: error: …`` message, never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import sys
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analyses import (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.analyses.typestate import FILE_PROTOCOL, TypestateAnalysis
from repro.constraints.bddsystem import REORDER_POLICIES
from repro.core import SPLLift, compute_emergent_interface
from repro.core.solver import SPLLiftResults
from repro.datalog import resolve_engine
from repro.ide.solver import WORKLIST_ORDERS
from repro.featuremodel import FeatureModel, FeatureModelError, parse_feature_model
from repro.interp import Interpreter
from repro.minijava.parser import ParseError
from repro.obs import runtime as obs
from repro.obs.flight import load_flight_dump, render_postmortem
from repro.obs.log import LOG_ENV, format_line, iter_log
from repro.obs.progress import ProgressReporter
from repro.obs.regress import (
    compare,
    load_snapshot,
    parse_threshold_overrides,
)
from repro.obs.trace import fold_trace, read_trace, summarize_trace, write_trace
from repro.service import (
    ServiceError,
    default_cache_dir,
    load_manifest_plan,
    open_store,
    run_batch,
    serve_store,
)
from repro.spl import ProductLine
from repro.utils import format_count

__all__ = ["main"]

ANALYSES = ("taint", "uninit", "nullness", "types", "rd", "typestate")


def _telemetry_begin(args) -> None:
    """Arm tracing/progress/logging before a command runs
    (``--trace``/``--progress``/``--log``/``$SPLLIFT_LOG``)."""
    if getattr(args, "trace", None):
        obs.enable_tracing()
    if getattr(args, "progress", False):
        obs.set_progress(ProgressReporter())
    log_path = getattr(args, "log", None) or os.environ.get(LOG_ENV)
    if log_path and hasattr(args, "log"):
        obs.enable_log(log_path)
        args._log_enabled = True


def _telemetry_end(args) -> None:
    """Flush telemetry the command collected (``--trace``/``--metrics``)."""
    progress = obs.progress()
    if progress is not None:
        progress.finish()
        obs.set_progress(None)
    trace_path = getattr(args, "trace", None)
    if trace_path:
        count = write_trace(
            obs.tracer().events(), trace_path, run_id=obs.run_id()
        )
        print(f"trace: {count} event(s) written to {trace_path}", file=sys.stderr)
    metrics_path = getattr(args, "metrics_file", None)
    if metrics_path:
        report = {
            "schema": "spllift-metrics/v1",
            "run_id": obs.run_id(),
            "metrics": obs.metrics().describe(),
        }
        Path(metrics_path).write_text(
            json.dumps(report, indent=1, sort_keys=True) + "\n"
        )
        print(f"metrics written to {metrics_path}", file=sys.stderr)


def _load_product_line(args) -> ProductLine:
    with open(args.file) as handle:
        source = handle.read()
    model = FeatureModel()
    if getattr(args, "feature_model", None):
        with open(args.feature_model) as handle:
            model = parse_feature_model(handle.read())
    return ProductLine(name=args.file, source=source, feature_model=model, entry=args.entry)


def _findings(
    product_line: ProductLine,
    analysis_name: str,
    fm_mode: str,
    reorder: Optional[str] = None,
    worklist_order: Optional[str] = None,
    parallel: Optional[int] = None,
    incremental_cache: Optional[str] = None,
    engine: Optional[str] = None,
) -> Tuple[List[Tuple[str, str, str]], SPLLiftResults]:
    # Engine validation happens here (not via argparse choices) so a bad
    # value — from the flag or $SPLLIFT_ENGINE — follows the clean-error
    # contract: one `spllift: error: …` line, exit 2, no traceback.
    try:
        engine = resolve_engine(engine)
    except ValueError as error:
        raise ServiceError(str(error))
    if engine == "datalog" and incremental_cache:
        raise ServiceError(
            "--engine datalog does not support --incremental-cache "
            "(incremental summary injection is a tabulation-engine feature)"
        )
    icfg = product_line.icfg
    feature_model = product_line.feature_model if fm_mode != "ignore" else None

    def solve(analysis) -> SPLLiftResults:
        spllift = SPLLift(
            analysis, feature_model=feature_model, fm_mode=fm_mode, reorder=reorder
        )
        summaries = None
        if incremental_cache:
            from repro.ide.summaries import summary_cache_for
            from repro.service import open_store

            summaries = summary_cache_for(spllift, open_store(incremental_cache))
        return spllift.solve(
            worklist_order=worklist_order,
            parallel=parallel,
            summaries=summaries,
            engine=engine,
        )

    if analysis_name == "taint":
        analysis = TaintAnalysis(icfg)
        results = solve(analysis)
        queries = [
            (stmt, fact, f"secret may reach print of {fact}")
            for stmt, fact in TaintAnalysis.sink_queries(icfg)
        ]
    elif analysis_name == "uninit":
        analysis = UninitializedVariablesAnalysis(icfg)
        results = solve(analysis)
        queries = [
            (stmt, fact, f"read of possibly-uninitialized {fact}")
            for stmt, fact in analysis.use_queries()
        ]
    elif analysis_name == "nullness":
        from repro.analyses.nullness import NullnessAnalysis

        analysis = NullnessAnalysis(icfg)
        results = solve(analysis)
        queries = [
            (stmt, fact, f"possible null dereference of {fact}")
            for stmt, fact in analysis.dereference_queries()
        ]
    elif analysis_name == "typestate":
        analysis = TypestateAnalysis(icfg, FILE_PROTOCOL)
        results = solve(analysis)
        queries = [
            (stmt, fact, f"protocol violation: {fact}")
            for stmt, fact in analysis.violation_queries()
        ]
    elif analysis_name in ("types", "rd"):
        analysis = (
            PossibleTypesAnalysis(icfg)
            if analysis_name == "types"
            else ReachingDefinitionsAnalysis(icfg)
        )
        results = solve(analysis)
        # Informational analyses: report all facts at method exits.
        queries = []
        for method in icfg.reachable_methods:
            for exit_point in method.exit_points:
                for fact in results.results_at(exit_point):
                    queries.append((exit_point, fact, f"{fact}"))
    else:
        raise ValueError(f"unknown analysis {analysis_name!r}")
    findings = []
    for stmt, fact, description in queries:
        constraint = results.finding_constraint(stmt, fact)
        if not constraint.is_false:
            findings.append((stmt.location, description, str(constraint)))
    return findings, results


def _cmd_analyze(args) -> int:
    product_line = _load_product_line(args)
    findings, results = _findings(
        product_line,
        args.analysis,
        args.fm_mode,
        reorder=args.reorder,
        worklist_order=args.worklist_order,
        parallel=args.parallel,
        incremental_cache=args.incremental_cache,
        engine=args.engine,
    )
    if args.incremental_cache:
        # One-line reuse report on stderr; stdout (the findings) must be
        # byte-identical between cold and warm solves.
        stats = results.stats
        print(
            "summaries: "
            f"{stats.get('summaries_reused', 0)} reused, "
            f"{stats.get('summaries_recomputed', 0)} recomputed, "
            f"{stats.get('summaries_invalidated', 0)} invalidated",
            file=sys.stderr,
        )
    if not findings:
        print(f"{args.analysis}: no findings (in any valid product)")
        return 0
    print(f"{args.analysis}: {len(findings)} finding(s)")
    for location, description, constraint in findings:
        print(f"  {location}: {description}")
        print(f"      iff {constraint}")
    if args.stats:
        print("\nsolver statistics:")
        for key, value in results.stats.items():
            print(f"  {key}: {value}")
    return 1 if findings else 0


def _cmd_interfaces(args) -> int:
    product_line = _load_product_line(args)
    interface = compute_emergent_interface(
        product_line.icfg,
        args.feature,
        feature_model=product_line.feature_model,
    )
    print(interface)
    return 0


def _cmd_run(args) -> int:
    product_line = _load_product_line(args)
    config = frozenset(
        name for name in (args.config or "").split(",") if name
    )
    interpreter = Interpreter(
        product_line.ir, configuration=config, fuel=args.fuel
    )
    trace = interpreter.run(product_line.entry)
    for _, value in trace.prints:
        marker = "  [tainted]" if value.tainted else ""
        print(f"{value.data}{marker}")
    if trace.uninit_reads:
        unique = sorted(
            {(stmt.location, name) for stmt, name in trace.uninit_reads}
        )
        print(f"warning: {len(unique)} uninitialized read(s):", file=sys.stderr)
        for location, name in unique:
            print(f"  {location}: {name}", file=sys.stderr)
    if not trace.completed:
        print(f"execution stopped early: {trace.stop_reason}", file=sys.stderr)
        return 2
    return 0


def _cmd_metrics(args) -> int:
    product_line = _load_product_line(args)
    print(f"file:                     {args.file}")
    print(f"KLOC:                     {product_line.kloc:.2f}")
    print(f"features (total):         {product_line.features_total}")
    reachable = product_line.features_reachable
    print(f"features (reachable):     {len(reachable)}: {', '.join(reachable)}")
    print(
        "configurations (reachable): "
        f"{format_count(product_line.configurations_reachable)}"
    )
    print(
        "configurations (valid):     "
        f"{format_count(product_line.count_valid_configurations())}"
    )
    icfg = product_line.icfg
    print(f"reachable methods:        {len(icfg.reachable_methods)}")
    print(f"reachable statements:     {icfg.instruction_count()}")
    return 0


def _batch_store(args):
    if getattr(args, "no_store", False):
        return None
    return open_store(getattr(args, "cache_dir", None))


def _cmd_batch(args) -> int:
    plan = load_manifest_plan(args.manifest)
    report = run_batch(
        plan.jobs,
        store=_batch_store(args),
        max_workers=args.jobs,
        job_timeout=args.timeout,
        max_retries=args.retries,
        use_pool=not args.no_pool,
        dependencies=plan.dependencies,
    )
    width = max(len(outcome.job.label) for outcome in report.outcomes)
    for outcome in report.outcomes:
        digest = (outcome.result_digest or "-")[:12]
        line = (
            f"  {outcome.job.label:<{width}}  "
            f"{outcome.job.analysis:<24} {outcome.status:<8} "
            f"{outcome.seconds:7.3f}s  {digest}"
        )
        if outcome.wait_seconds >= 0.0005:
            line += f"  (waited {outcome.wait_seconds:.3f}s)"
        if outcome.error:
            line += f"  ({outcome.error})"
        print(line)
    skipped = f", {report.skipped} skipped" if report.skipped else ""
    waves = f", {report.waves} wave(s)" if plan.has_dependencies else ""
    print(
        f"{len(report.outcomes)} job(s): {report.cached} cached, "
        f"{report.computed} computed, {report.failed} failed{skipped} "
        f"in {report.wall_seconds:.3f}s "
        f"({report.workers} worker(s){waves})"
    )
    hit_ratio = obs.metrics().hit_ratio("store.get_hits", "store.get_misses")
    if hit_ratio is not None:
        print(f"store hit ratio: {hit_ratio:.2f}")
    if args.report:
        Path(args.report).write_text(
            json.dumps(report.describe(), indent=1, sort_keys=True) + "\n"
        )
        print(f"report written to {args.report}")
    return 0 if report.ok else 1


def _cmd_cache(args) -> int:
    store = open_store(args.cache_dir)
    if args.action == "stats":
        stats = store.stats()
        root = stats.get("url") or stats.get("root", "")
        print(f"cache root: {root}")
        print(f"backend:    {stats.get('backend', store.kind)}")
        print(f"records:    {stats['records']}")
        print(f"bytes:      {stats['bytes']}")
        print(f"corrupt:    {stats['corrupt']}")
        session = stats.get("session") or {}
        if session.get("gets"):
            print(
                f"hit_ratio:  {session['hit_ratio']:.2f} "
                f"({session['hits']}/{session['gets']} gets this session)"
            )
        else:
            print("hit_ratio:  n/a (no gets this session)")
        for kind, count in sorted(stats["kinds"].items()):
            print(f"  {kind}: {count}")
        return 0
    if args.action == "prune":
        if args.max_bytes is None or args.max_bytes < 0:
            print(
                "spllift: error: cache prune requires --max-bytes >= 0",
                file=sys.stderr,
            )
            return 2
        summary = store.prune(args.max_bytes)
        print(
            f"pruned {summary['removed']} record(s) "
            f"({summary['freed_bytes']} bytes) from {_store_location(store)}"
        )
        print(
            f"remaining: {summary['remaining_records']} record(s), "
            f"{summary['remaining_bytes']} bytes"
        )
        return 0
    removed = store.clear()
    print(f"removed {removed} record(s) from {_store_location(store)}")
    return 0


def _store_location(store) -> str:
    """Where a store lives, backend-independently (for messages)."""
    for attribute in ("root", "path", "base_url"):
        value = getattr(store, attribute, None)
        if value is not None:
            return str(value)
    return store.kind


def _cmd_serve(args) -> int:
    spec = args.cache_dir
    if spec and str(spec).startswith(("http://", "https://")):
        raise ServiceError(
            "cannot serve an http:// store — point clients at it directly"
        )
    store = open_store(spec)

    def announce(host: str, port: int) -> None:
        print(
            f"serving {store.kind} store {_store_location(store)} "
            f"on http://{host}:{port}",
            flush=True,
        )
        print(
            f"point clients at it with --cache-dir http://{host}:{port}",
            flush=True,
        )

    serve_store(
        store,
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        ready_callback=announce,
    )
    return 0


def _cmd_trace(args) -> int:
    try:
        events = read_trace(args.file)
    except ValueError as error:
        # Empty or truncated trace files (a killed --trace run) must
        # follow the one-line error contract, not traceback.
        raise ServiceError(f"{args.file} is not a valid trace file: {error}")
    spans = [event for event in events if event.get("ph") in ("B", "E", "i")]
    if not spans:
        print(f"spllift: error: no trace events in {args.file}", file=sys.stderr)
        return 2
    if getattr(args, "folded", False):
        # Folded-stack export (`flamegraph.pl`-compatible): one line per
        # distinct stack, self time in microseconds.  Machine output only
        # — no headers, so it pipes straight into flamegraph tooling.
        lines = fold_trace(events)
        if not lines:
            print(
                f"spllift: error: no closed spans to fold in {args.file}",
                file=sys.stderr,
            )
            return 2
        for line in lines:
            print(line)
        return 0
    summary = summarize_trace(events)
    pids = sorted({event.get("pid", 0) for event in spans})
    print(f"trace: {args.file}")
    print(
        f"events: {len(spans)}  processes: {len(pids)}  "
        f"wall: {summary['wall_us'] / 1e6:.3f}s"
    )
    print(f"{'span':<28} {'count':>8} {'total':>11} {'% wall':>8}")
    for row in summary["rows"]:
        print(
            f"{row['name']:<28} {row['count']:>8} "
            f"{row['total_us'] / 1e6:>10.3f}s {row['pct']:>7.1f}%"
        )
    print(
        f"top-level span coverage: {summary['coverage_pct']:.1f}% of wall time"
    )
    return 0


def _cmd_obs_postmortem(args) -> int:
    try:
        document = load_flight_dump(args.file)
    except ValueError as error:
        raise ServiceError(str(error))
    dumps = document["dumps"]
    for position, dump in enumerate(dumps):
        if position:
            print()
        for line in render_postmortem(dump, last=args.last):
            print(line)
    if len(dumps) > 1:
        print()
        print(f"{len(dumps)} flight dump(s) in {args.file}")
    return 0


def _cmd_obs_diff(args) -> int:
    try:
        overrides = parse_threshold_overrides(args.threshold_for)
        baseline = load_snapshot(args.baseline)
        current = load_snapshot(args.current)
    except ValueError as error:
        raise ServiceError(str(error))
    violations, report = compare(
        baseline,
        current,
        args.threshold,
        overrides,
        args.only,
        args.ignore,
        args.allow_missing,
    )
    for line in report:
        if not args.quiet or line.endswith(("DRIFT", "MISSING")):
            print(line)
    compared = sum(1 for line in report if "->" in line)
    missing = sum(1 for line in report if ": missing from" in line)
    scope = f"{compared} metric(s) compared"
    if missing:
        scope += f", {missing} missing"
    print(
        f"obs diff: {scope}: "
        + ("OK" if not violations else f"{len(violations)} violation(s)")
    )
    return 1 if violations else 0


def _cmd_obs_tail(args) -> int:
    records = list(iter_log(args.file))
    for record in records[-args.lines:] if args.lines else records:
        print(format_line(record))
    if not args.follow:
        return 0
    try:
        with open(args.file, encoding="utf-8") as handle:
            handle.seek(0, 2)  # only lines appended from now on
            while True:
                line = handle.readline()
                if not line:
                    time.sleep(0.25)
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn line mid-write; the rewrite follows
                if isinstance(record, dict):
                    print(format_line(record), flush=True)
    except KeyboardInterrupt:
        return 0


def _cmd_obs(args) -> int:
    handlers = {
        "postmortem": _cmd_obs_postmortem,
        "diff": _cmd_obs_diff,
        "tail": _cmd_obs_tail,
    }
    return handlers[args.obs_command](args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="spllift",
        description="Feature-sensitive static analysis of MiniJava "
        "product lines (SPLLIFT, PLDI 2013).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p) -> None:
        p.add_argument("file", help="MiniJava product-line source file")
        p.add_argument(
            "--feature-model", help="feature model file (textual format)"
        )
        p.add_argument(
            "--entry", default="Main.main", help="entry point (default Main.main)"
        )

    def telemetry(p) -> None:
        p.add_argument(
            "--trace",
            metavar="FILE",
            help="write a Chrome trace_event span trace here (opens in "
            "Perfetto; summarize with `spllift trace summary FILE`)",
        )
        p.add_argument(
            "--metrics",
            dest="metrics_file",
            metavar="FILE",
            help="write the metrics registry (counters/gauges/histograms) "
            "as JSON here",
        )
        p.add_argument(
            "--log",
            metavar="FILE",
            default=None,
            help="append a structured JSONL event log here (run id, job "
            "digests, span-correlated; workers append to the same file; "
            "default: $SPLLIFT_LOG)",
        )

    analyze = sub.add_parser("analyze", help="run a lifted analysis")
    common(analyze)
    analyze.add_argument(
        "--analysis", choices=ANALYSES, default="taint", help="which analysis"
    )
    analyze.add_argument(
        "--fm-mode",
        choices=("edge", "seed", "ignore"),
        default="edge",
        help="how to use the feature model (Section 4.2)",
    )
    analyze.add_argument(
        "--stats", action="store_true", help="print solver statistics"
    )
    analyze.add_argument(
        "--reorder",
        choices=REORDER_POLICIES,
        default=None,
        help="dynamic BDD variable reordering (default: off)",
    )
    analyze.add_argument(
        "--worklist-order",
        choices=WORKLIST_ORDERS,
        default=None,
        help="solver worklist scheduling; the fixed point is "
        "order-independent (default: fifo, or $SPLLIFT_WORKLIST_ORDER)",
    )
    analyze.add_argument(
        "--parallel",
        "-j",
        type=int,
        default=None,
        help="partition the solve by entry context over this many worker "
        "processes (0 = all cores; default: $SPLLIFT_PARALLEL, else 1); "
        "results are bit-identical to the sequential solve",
    )
    analyze.add_argument(
        "--engine",
        default=None,
        metavar="ENGINE",
        help="evaluation engine: 'tabulate' (two-phase IDE tabulation, "
        "the default) or 'datalog' (semi-naive lifted-Datalog fixpoint; "
        "bit-identical results, sequential, no --incremental-cache); "
        "default: $SPLLIFT_ENGINE, else tabulate",
    )
    analyze.add_argument(
        "--incremental-cache",
        metavar="SPEC",
        default=None,
        help="method-summary store for incremental re-analysis: a path, "
        "sqlite://file.db, or http://host:port; summaries of "
        "content-unchanged methods are reused and fresh ones stored "
        "back (results bit-identical to a cold solve; implies a "
        "sequential solve)",
    )
    telemetry(analyze)
    analyze.add_argument(
        "--progress",
        action="store_true",
        help="live progress line (worklist depth, jump functions, BDD "
        "nodes, elapsed) on stderr",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    interfaces = sub.add_parser(
        "interfaces", help="compute a feature's emergent interface"
    )
    common(interfaces)
    interfaces.add_argument("--feature", required=True, help="feature name")
    interfaces.set_defaults(handler=_cmd_interfaces)

    run = sub.add_parser("run", help="execute one configuration")
    common(run)
    run.add_argument(
        "--config", default="", help="comma-separated enabled features"
    )
    run.add_argument("--fuel", type=int, default=200_000, help="step budget")
    run.set_defaults(handler=_cmd_run)

    metrics = sub.add_parser("metrics", help="print subject metrics")
    common(metrics)
    metrics.set_defaults(handler=_cmd_metrics)

    batch = sub.add_parser(
        "batch", help="run a manifest of jobs through the analysis service"
    )
    batch.add_argument("manifest", help="batch manifest (JSON)")
    batch.add_argument(
        "--cache-dir",
        help="result store spec: a path, sqlite://file.db, or "
        f"http://host:port (default {default_cache_dir()})",
    )
    batch.add_argument(
        "--no-store",
        action="store_true",
        help="skip the result store (always solve)",
    )
    batch.add_argument(
        "--jobs", type=int, help="worker processes (default: CPU count)"
    )
    batch.add_argument(
        "--timeout", type=float, help="per-job timeout in seconds"
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per job after a worker crash (default 1)",
    )
    batch.add_argument(
        "--no-pool",
        action="store_true",
        help="run jobs in-process instead of a worker pool",
    )
    batch.add_argument("--report", help="write the batch report JSON here")
    telemetry(batch)
    batch.add_argument(
        "--progress",
        action="store_true",
        help="live status line (wave, settled/total jobs, store hit "
        "ratio) on stderr",
    )
    batch.set_defaults(handler=_cmd_batch)

    trace = sub.add_parser(
        "trace", help="inspect trace files written by --trace"
    )
    trace.add_argument("action", choices=("summary",))
    trace.add_argument("file", help="trace file (Chrome trace_event JSON)")
    trace.add_argument(
        "--folded",
        action="store_true",
        help="emit folded-stack lines (`stack;frames self_us`) for "
        "flamegraph.pl / speedscope instead of the summary table",
    )
    trace.set_defaults(handler=_cmd_trace)

    obs_parser = sub.add_parser(
        "obs",
        help="operational observability: postmortems, metric diffs, "
        "event-log tailing",
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    postmortem = obs_sub.add_parser(
        "postmortem",
        help="reconstruct a dead worker's last moments from a flight "
        "dump or a batch report carrying flight attachments",
    )
    postmortem.add_argument(
        "file",
        help="a spllift-flight/v1 dump, or a batch --report JSON whose "
        "failed/crashed jobs carry flight dumps",
    )
    postmortem.add_argument(
        "--last",
        type=int,
        default=50,
        metavar="N",
        help="events to show per dump (default 50; 0 = all retained)",
    )
    postmortem.set_defaults(handler=_cmd_obs)

    diff = obs_sub.add_parser(
        "diff",
        help="compare two --metrics snapshots and report counter drift "
        "(summary-reuse ratios, datalog.* counters, store hit rates)",
    )
    diff.add_argument("baseline", help="baseline --metrics snapshot")
    diff.add_argument("current", help="current --metrics snapshot")
    diff.add_argument(
        "--threshold",
        type=float,
        default=0.1,
        help="default relative drift threshold (fraction; default 0.1 "
        "= ±10%%)",
    )
    diff.add_argument(
        "--threshold-for",
        action="append",
        default=[],
        metavar="PATTERN=FRACTION",
        help="per-counter threshold override (fnmatch pattern; repeatable)",
    )
    diff.add_argument(
        "--only",
        action="append",
        default=[],
        metavar="PATTERN",
        help="compare only matching names (repeatable)",
    )
    diff.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PATTERN",
        help="skip matching names (repeatable)",
    )
    diff.add_argument(
        "--allow-missing",
        action="store_true",
        help="report but do not fail on keys present in one snapshot only",
    )
    diff.add_argument(
        "--quiet",
        action="store_true",
        help="print only violations and the verdict line",
    )
    diff.set_defaults(handler=_cmd_obs)

    tail = obs_sub.add_parser(
        "tail", help="render a structured event log (--log) for humans"
    )
    tail.add_argument("file", help="JSONL event log written via --log")
    tail.add_argument(
        "--lines",
        "-n",
        type=int,
        default=20,
        help="show the last N records (default 20; 0 = all)",
    )
    tail.add_argument(
        "--follow",
        "-f",
        action="store_true",
        help="keep the file open and stream new records (live fleets)",
    )
    tail.set_defaults(handler=_cmd_obs)

    cache = sub.add_parser(
        "cache", help="inspect, prune, or clear the result store"
    )
    cache.add_argument("action", choices=("stats", "prune", "clear"))
    cache.add_argument(
        "--cache-dir",
        help="result store spec: a path, sqlite://file.db, or "
        f"http://host:port (default {default_cache_dir()})",
    )
    cache.add_argument(
        "--max-bytes",
        type=int,
        help="prune: evict least-recently-used records down to this size",
    )
    cache.set_defaults(handler=_cmd_cache)

    serve = sub.add_parser(
        "serve",
        help="serve a result store over HTTP to a fleet of schedulers",
    )
    serve.add_argument(
        "--cache-dir",
        help="store to serve: a path or sqlite://file.db "
        f"(default {default_cache_dir()})",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (default 8765; 0 picks a free port)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log each request to stderr"
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _telemetry_begin(args)
    try:
        code = args.handler(args)
        _telemetry_end(args)
        return code
    except (ServiceError, FeatureModelError, ParseError) as error:
        print(f"spllift: error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        name = error.filename if error.filename else ""
        detail = error.strerror or str(error)
        suffix = f": {name}" if name else ""
        print(f"spllift: error: {detail}{suffix}", file=sys.stderr)
        return 2
    except sqlite3.Error as error:
        print(f"spllift: error: sqlite store: {error}", file=sys.stderr)
        return 2
    finally:
        # Commands are one-shot, but `main` is also called in-process
        # (tests, scripts): leave no tracing, progress or log state behind.
        if getattr(args, "trace", None):
            obs.disable_tracing()
        if getattr(args, "_log_enabled", False):
            obs.disable_log()
        obs.set_progress(None)


if __name__ == "__main__":
    sys.exit(main())
