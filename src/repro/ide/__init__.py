"""The IDE framework: edge functions, problem interface, two-phase solver."""

from repro.ide.binary import BinaryIDEProblem, ifds_as_ide, solve_ifds_via_ide
from repro.ide.edgefunctions import AllTop, EdgeFunction, IdentityEdge
from repro.ide.problem import IDEProblem
from repro.ide.solver import IDEResults, IDESolver

__all__ = [
    "EdgeFunction",
    "IdentityEdge",
    "AllTop",
    "IDEProblem",
    "IDESolver",
    "IDEResults",
    "BinaryIDEProblem",
    "ifds_as_ide",
    "solve_ifds_via_ide",
]
