"""Edge functions: the value-domain transformers of the IDE framework.

In IDE (Sagiv, Reps, Horwitz, TAPSOFT'96) every edge of the exploded super
graph carries a distributive function over a value lattice ``V``.  SPLLIFT
instantiates ``V`` with feature constraints and edge functions of the form
``λc. c ∧ A`` (see :mod:`repro.core.lifting`); the binary instantiation in
:mod:`repro.ide.binary` recovers plain IFDS.

Conventions:

- ``compose_with(second)`` returns "apply ``self``, then ``second``";
- ``join_with`` merges functions at control-flow merge points and must move
  values *down* the lattice (toward "more flows possible");
- ``TOP`` (via :class:`AllTop`) is the neutral element of the join: it maps
  everything to the lattice top ("this edge carries no flow").
"""

from __future__ import annotations

from typing import Generic, Hashable, Set, Tuple, TypeVar

__all__ = ["EdgeFunction", "IdentityEdge", "AllTop"]

V = TypeVar("V")

# In-flight delegations (op, id(self), id(other)).  ``IdentityEdge`` is
# domain-agnostic and must delegate join/equality to the other operand; a
# foreign EdgeFunction subclass that delegates back the same way would
# otherwise recurse forever.  The guard turns that mutual delegation into a
# terminating fallback (see ``IdentityEdge.join_with`` / ``equal_to``).
_ACTIVE_DELEGATIONS: Set[Tuple[str, int, int]] = set()


class EdgeFunction(Generic[V]):
    """A distributive function ``V -> V`` attached to an exploded-graph edge."""

    #: True iff this function maps *every* value to the lattice top, i.e. the
    #: edge carries no flow.  The solver reads this flag (one attribute load)
    #: on every propagation to drop dead paths — SPLLIFT's early termination —
    #: instead of a dynamic ``equal_to(all_top)`` comparison.  Subclasses
    #: whose instances can be all-top must set it accordingly (see
    #: ``ConstraintEdge``, whose flag is ``constraint.is_false``).
    is_top: bool = False

    def compute_target(self, source: V) -> V:
        raise NotImplementedError

    def compose_with(self, second: "EdgeFunction[V]") -> "EdgeFunction[V]":
        """``second ∘ self`` — apply ``self`` first, then ``second``."""
        raise NotImplementedError

    def join_with(self, other: "EdgeFunction[V]") -> "EdgeFunction[V]":
        """The join of two edge functions at a merge point."""
        raise NotImplementedError

    def equal_to(self, other: "EdgeFunction[V]") -> bool:
        """Semantic equality (drives the solver's fixed-point detection)."""
        raise NotImplementedError


class IdentityEdge(EdgeFunction[V]):
    """The identity edge function (seeds and plain IFDS edges)."""

    def compute_target(self, source: V) -> V:
        return source

    def compose_with(self, second: EdgeFunction[V]) -> EdgeFunction[V]:
        return second

    def join_with(self, other: EdgeFunction[V]) -> EdgeFunction[V]:
        if isinstance(other, (AllTop, IdentityEdge)):
            return self
        if other.equal_to(self):
            return self
        # Delegate: the other function knows its own domain.  Guard against
        # mutual delegation (a foreign subclass bouncing the join straight
        # back) — without the guard that is infinite recursion.
        key = ("join", id(self), id(other))
        if key in _ACTIVE_DELEGATIONS:
            raise TypeError(
                f"cannot join {self!r} with {other!r}: both functions "
                f"delegate the join to the other operand"
            )
        _ACTIVE_DELEGATIONS.add(key)
        try:
            return other.join_with(self)
        finally:
            _ACTIVE_DELEGATIONS.discard(key)

    def equal_to(self, other: EdgeFunction[V]) -> bool:
        if other is self or isinstance(other, IdentityEdge):
            return True
        if isinstance(other, AllTop):
            return False
        # Delegate with the same mutual-delegation guard as ``join_with``;
        # if the other operand delegates back, conservatively report "not
        # equal" instead of recursing forever.
        key = ("equal", id(self), id(other))
        if key in _ACTIVE_DELEGATIONS:
            return False
        _ACTIVE_DELEGATIONS.add(key)
        try:
            return other.equal_to(self)
        finally:
            _ACTIVE_DELEGATIONS.discard(key)

    def __repr__(self) -> str:
        return "id"


class AllTop(EdgeFunction[V]):
    """Maps every value to top: the edge carries no flow.

    This is the default jump function; a composed function that collapses
    to all-top is dropped by the solver, which is exactly SPLLIFT's early
    termination when a constraint contradicts the feature model.
    """

    is_top = True

    def __init__(self, top: V) -> None:
        self.top = top

    def compute_target(self, source: V) -> V:
        return self.top

    def compose_with(self, second: EdgeFunction[V]) -> EdgeFunction[V]:
        # Edge functions are strict (they map top to top), so composing
        # anything after all-top stays all-top.
        return self

    def join_with(self, other: EdgeFunction[V]) -> EdgeFunction[V]:
        return other

    def equal_to(self, other: EdgeFunction[V]) -> bool:
        if other is self:
            return True
        return isinstance(other, AllTop) and other.top == self.top

    def __repr__(self) -> str:
        return "all-top"
