"""The IDE solver: jump-function construction plus value propagation.

Phase I builds *jump functions* — for each reachable exploded-graph node
``(n, d2)`` and each source fact ``d1`` at the start point of ``n``'s
method, the composed edge function summarizing all same-level paths from
``(sp, d1)`` to ``(n, d2)``.  The tabulation mirrors the IFDS solver
(summaries, incoming map), except that path edges carry edge functions
merged via ``join_with`` until a fixed point.

Phase II propagates concrete values: seeds flow through jump functions to
call sites, across call edges into callee start points (phase II(i)), and
finally to every node via its jump function (phase II(ii)).

The paper's observation that exchanging only the *start value* terminates
late (Section 4.2) is visible here: phase I dominates the cost, so
SPLLIFT's feature-model conjunction happens inside the edge functions,
collapsing contradictory compositions to all-top, which this solver drops
— ending those paths already during construction.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Deque,
    Dict,
    Generic,
    Hashable,
    List,
    Set,
    Tuple,
    TypeVar,
)

from repro.ide.edgefunctions import EdgeFunction
from repro.ide.problem import IDEProblem
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod

__all__ = ["IDESolver", "IDEResults"]

D = TypeVar("D", bound=Hashable)
V = TypeVar("V")

_JumpKey = Tuple[Hashable, Hashable]  # (source fact d1, target fact d2)


class IDEResults(Generic[D, V]):
    """Solved values per (statement, fact)."""

    def __init__(
        self,
        values: Dict[Tuple[Instruction, D], V],
        top: V,
        zero: D,
    ) -> None:
        self._values = values
        self._top = top
        self._zero = zero

    def value_at(self, stmt: Instruction, fact: D) -> V:
        """The joined value of ``fact`` just before ``stmt`` (top if the
        node is unreachable)."""
        return self._values.get((stmt, fact), self._top)

    def results_at(
        self, stmt: Instruction, include_zero: bool = False
    ) -> Dict[D, V]:
        """All non-top facts and their values at ``stmt``."""
        result: Dict[D, V] = {}
        for (node, fact), value in self._values.items():
            if node is not stmt or value == self._top:
                continue
            if fact is self._zero and not include_zero:
                continue
            result[fact] = value
        return result

    def non_top_count(self) -> int:
        return sum(1 for value in self._values.values() if value != self._top)

    def items(self):
        """Iterate ``((stmt, fact), value)`` pairs (top entries included)."""
        return self._values.items()


class IDESolver(Generic[D, V]):
    """Two-phase worklist solver for :class:`IDEProblem`.

    ``worklist_order`` selects the iteration order of phase I: ``"fifo"``
    (default), ``"lifo"``, or ``"random"`` with ``order_seed``.  The fixed
    point is order-independent, but the amount of work is not — the paper
    observes "a relatively high variance in the analysis times ... caused
    by non-determinism in the order in which the IDE solution is computed"
    (Section 6.2); exposing the order makes that variance measurable
    (see ``repro.experiments.variance``).
    """

    def __init__(
        self,
        problem: IDEProblem[D, V],
        worklist_order: str = "fifo",
        order_seed: int = 0,
    ) -> None:
        if worklist_order not in ("fifo", "lifo", "random"):
            raise ValueError(
                f"worklist_order must be fifo/lifo/random, got {worklist_order!r}"
            )
        self._order = worklist_order
        if worklist_order == "random":
            import random as _random

            self._rng = _random.Random(order_seed)
        self.problem = problem
        self.icfg = problem.icfg
        self.stats: Dict[str, int] = {
            "jump_functions": 0,
            "flow_applications": 0,
            "edge_compositions": 0,
            "value_updates": 0,
        }
        # target stmt -> (d1, d2) -> current jump function
        self._jump: Dict[Instruction, Dict[_JumpKey, EdgeFunction[V]]] = {}
        self._worklist: Deque[Tuple[D, Instruction, D]] = deque()
        # (method, entry fact) -> {(exit stmt, exit fact)}
        self._end_summaries: Dict[
            Tuple[IRMethod, D], Set[Tuple[Instruction, D]]
        ] = {}
        # (method, entry fact) -> {(call stmt, caller source fact, call fact)}
        self._incoming: Dict[
            Tuple[IRMethod, D], Set[Tuple[Instruction, D, D]]
        ] = {}
        self._all_top = problem.all_top()

    # ==================================================================
    # Phase I: jump functions
    # ==================================================================

    def solve(self) -> IDEResults[D, V]:
        """Run both phases and return the solved values."""
        self._build_jump_functions()
        values = self._compute_values()
        return IDEResults(values, self.problem.top_value(), self.problem.zero)

    def _build_jump_functions(self) -> None:
        seed_function = self.problem.seed_edge_function()
        for stmt, facts in self.problem.initial_seeds().items():
            for fact in facts:
                self._propagate(fact, stmt, fact, seed_function)
        while self._worklist:
            d1, n, d2 = self._pop()
            f = self._jump_fn(n, d1, d2)
            if self.icfg.is_call(n):
                self._process_call(d1, n, d2, f)
            elif self.icfg.is_exit(n):
                self._process_exit(d1, n, d2, f)
                # A disabled `return` in a lifted CFG falls through to its
                # successor; plain CFGs have none (no-op there).
                if self.icfg.successors_of(n):
                    self._process_normal(d1, n, d2, f)
            else:
                self._process_normal(d1, n, d2, f)

    def _pop(self) -> Tuple[D, Instruction, D]:
        if self._order == "fifo":
            return self._worklist.popleft()
        if self._order == "lifo":
            return self._worklist.pop()
        # random: swap a random element to the end, then pop it.
        index = self._rng.randrange(len(self._worklist))
        self._worklist[index], self._worklist[-1] = (
            self._worklist[-1],
            self._worklist[index],
        )
        return self._worklist.pop()

    def _jump_fn(self, n: Instruction, d1: D, d2: D) -> EdgeFunction[V]:
        functions = self._jump.get(n)
        if functions is None:
            return self._all_top
        return functions.get((d1, d2), self._all_top)

    def _propagate(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        if f.equal_to(self._all_top):
            return  # no flow — drop the path (early termination)
        functions = self._jump.setdefault(n, {})
        key = (d1, d2)
        old = functions.get(key)
        joined = f if old is None else old.join_with(f)
        if old is not None and joined.equal_to(old):
            return
        if old is None:
            self.stats["jump_functions"] += 1
        functions[key] = joined
        self._worklist.append((d1, n, d2))

    # ------------------------------------------------------------------
    # Case: normal statements
    # ------------------------------------------------------------------

    def _process_normal(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        for succ in self.icfg.successors_of(n):
            flow = self.problem.normal_flow(n, succ)
            self.stats["flow_applications"] += 1
            for d3 in flow.compute_targets(d2):
                edge = self.problem.edge_normal(n, d2, succ, d3)
                self.stats["edge_compositions"] += 1
                self._propagate(d1, succ, d3, f.compose_with(edge))

    # ------------------------------------------------------------------
    # Case: call statements
    # ------------------------------------------------------------------

    def _process_call(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        return_sites = self.icfg.return_sites_of(n)
        seed_function = self.problem.seed_edge_function()
        for callee in self.icfg.callees_of(n):
            call_flow = self.problem.call_flow(n, callee)
            self.stats["flow_applications"] += 1
            entry_facts = call_flow.compute_targets(d2)
            if not entry_facts:
                continue
            start = self.icfg.start_point_of(callee)
            for d3 in entry_facts:
                self._propagate(d3, start, d3, seed_function)
                context = (callee, d3)
                self._incoming.setdefault(context, set()).add((n, d1, d2))
                for exit_stmt, d4 in self._end_summaries.get(context, set()):
                    summary = self._jump_fn(exit_stmt, d3, d4)
                    self._apply_summary(
                        n, d1, d2, f, callee, d3, exit_stmt, d4, summary, return_sites
                    )
        for return_site in return_sites:
            flow = self.problem.call_to_return_flow(n, return_site)
            self.stats["flow_applications"] += 1
            for d3 in flow.compute_targets(d2):
                edge = self.problem.edge_call_to_return(n, d2, return_site, d3)
                self.stats["edge_compositions"] += 1
                self._propagate(d1, return_site, d3, f.compose_with(edge))

    def _apply_summary(
        self,
        call: Instruction,
        caller_source: D,
        call_fact: D,
        caller_fn: EdgeFunction[V],
        callee: IRMethod,
        entry_fact: D,
        exit_stmt: Instruction,
        exit_fact: D,
        summary_fn: EdgeFunction[V],
        return_sites: Tuple[Instruction, ...],
    ) -> None:
        """Compose caller function, call edge, summary and return edge."""
        call_edge = self.problem.edge_call(call, call_fact, callee, entry_fact)
        for return_site in return_sites:
            flow = self.problem.return_flow(call, callee, exit_stmt, return_site)
            self.stats["flow_applications"] += 1
            for d5 in flow.compute_targets(exit_fact):
                return_edge = self.problem.edge_return(
                    call, callee, exit_stmt, exit_fact, return_site, d5
                )
                self.stats["edge_compositions"] += 3
                total = (
                    caller_fn.compose_with(call_edge)
                    .compose_with(summary_fn)
                    .compose_with(return_edge)
                )
                self._propagate(caller_source, return_site, d5, total)

    # ------------------------------------------------------------------
    # Case: exit statements
    # ------------------------------------------------------------------

    def _process_exit(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        method = self.icfg.method_of(n)
        context = (method, d1)
        self._end_summaries.setdefault(context, set()).add((n, d2))
        for call, caller_source, call_fact in tuple(
            self._incoming.get(context, set())
        ):
            caller_fn = self._jump_fn(call, caller_source, call_fact)
            self._apply_summary(
                call,
                caller_source,
                call_fact,
                caller_fn,
                method,
                d1,
                n,
                d2,
                f,
                self.icfg.return_sites_of(call),
            )

    # ==================================================================
    # Phase II: value computation
    # ==================================================================

    def _compute_values(self) -> Dict[Tuple[Instruction, D], V]:
        top = self.problem.top_value()
        values: Dict[Tuple[Instruction, D], V] = {}

        def set_value(stmt: Instruction, fact: D, value: V) -> bool:
            key = (stmt, fact)
            old = values.get(key, top)
            joined = self.problem.join_values(old, value)
            if joined == old:
                return False
            values[key] = joined
            self.stats["value_updates"] += 1
            return True

        # Phase II(i): start points and call sites.
        worklist: Deque[Tuple[Instruction, D]] = deque()
        for stmt, fact_values in self.problem.initial_seed_values().items():
            for fact, value in fact_values.items():
                if set_value(stmt, fact, value):
                    worklist.append((stmt, fact))
        while worklist:
            n, d = worklist.popleft()
            value = values.get((n, d), top)
            method = self.icfg.method_of(n)
            if n is self.icfg.start_point_of(method):
                for call in self.icfg.call_sites_in(method):
                    for (d1, d2), f in self._jump.get(call, {}).items():
                        if d1 != d:
                            continue
                        if set_value(call, d2, f.compute_target(value)):
                            worklist.append((call, d2))
            if self.icfg.is_call(n):
                for callee in self.icfg.callees_of(n):
                    flow = self.problem.call_flow(n, callee)
                    start = self.icfg.start_point_of(callee)
                    for d3 in flow.compute_targets(d):
                        edge = self.problem.edge_call(n, d, callee, d3)
                        if set_value(start, d3, edge.compute_target(value)):
                            worklist.append((start, d3))

        # Phase II(ii): every remaining node via its jump function.
        for method in self.icfg.reachable_methods:
            start = self.icfg.start_point_of(method)
            for stmt in method.instructions:
                if stmt is start:
                    continue
                for (d1, d2), f in self._jump.get(stmt, {}).items():
                    start_value = values.get((start, d1), top)
                    if start_value == top:
                        continue
                    set_value(stmt, d2, f.compute_target(start_value))
        return values
