"""The IDE solver: jump-function construction plus value propagation.

Phase I builds *jump functions* — for each reachable exploded-graph node
``(n, d2)`` and each source fact ``d1`` at the start point of ``n``'s
method, the composed edge function summarizing all same-level paths from
``(sp, d1)`` to ``(n, d2)``.  The tabulation mirrors the IFDS solver
(summaries, incoming map), except that path edges carry edge functions
merged via ``join_with`` until a fixed point.

Phase II propagates concrete values: seeds flow through jump functions to
call sites, across call edges into callee start points (phase II(i)), and
finally to every node via its jump function (phase II(ii)).

The paper's observation that exchanging only the *start value* terminates
late (Section 4.2) is visible here: phase I dominates the cost, so
SPLLIFT's feature-model conjunction happens inside the edge functions,
collapsing contradictory compositions to all-top, which this solver drops
— ending those paths already during construction.
"""

from __future__ import annotations

import os
from collections import deque
from typing import (
    Deque,
    Dict,
    Generic,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.ide.edgefunctions import EdgeFunction
from repro.ide.problem import IDEProblem
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod
from repro.ir.rpo import RPORanker
from repro.obs import runtime as obs

__all__ = ["IDESolver", "IDEResults", "WORKLIST_ORDERS", "BucketQueue"]

#: Phase-I iteration orders; ``None`` resolves to $SPLLIFT_WORKLIST_ORDER
#: (default ``fifo``), which is how CI matrix-runs the whole suite per order.
WORKLIST_ORDERS = ("fifo", "lifo", "random", "rpo")


def resolve_worklist_order(worklist_order: Optional[str]) -> str:
    if worklist_order is None:
        worklist_order = os.environ.get("SPLLIFT_WORKLIST_ORDER", "fifo")
    if worklist_order not in WORKLIST_ORDERS:
        raise ValueError(
            f"worklist_order must be one of {'/'.join(WORKLIST_ORDERS)}, "
            f"got {worklist_order!r}"
        )
    return worklist_order

D = TypeVar("D", bound=Hashable)
V = TypeVar("V")


class BucketQueue:
    """Integer-priority queue: one list per rank plus a moving cursor.

    RPO ranks are small dense ints, so a bucket per rank beats a binary
    heap — push is a list append, pop scans the cursor forward.  Because
    propagation mostly moves *down* the reverse post-order, the cursor
    rarely rewinds (only on loop back-edges), keeping pops amortized O(1).
    Order within one rank is unspecified (the fixed point is
    order-independent); across ranks the minimum always pops first.
    """

    __slots__ = ("_buckets", "_cursor", "_size")

    def __init__(self) -> None:
        self._buckets: List[List] = []
        self._cursor = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, rank: int, entry) -> None:
        buckets = self._buckets
        grow = rank + 1 - len(buckets)
        if grow > 0:
            buckets.extend([] for _ in range(grow))
        buckets[rank].append(entry)
        if rank < self._cursor:
            self._cursor = rank
        self._size += 1

    def pop(self):
        buckets = self._buckets
        cursor = self._cursor
        while not buckets[cursor]:
            cursor += 1
        self._cursor = cursor
        self._size -= 1
        return buckets[cursor].pop()


class IDEResults(Generic[D, V]):
    """Solved values per (statement, fact)."""

    def __init__(
        self,
        values: Dict[Tuple[Instruction, D], V],
        top: V,
        zero: D,
    ) -> None:
        self._values = values
        self._top = top
        self._zero = zero
        # stmt -> {fact -> value}, non-top entries only; built on the first
        # `results_at` so per-statement queries are O(facts at stmt), not
        # O(all (stmt, fact) pairs in the program).
        self._by_stmt: Optional[Dict[Instruction, Dict[D, V]]] = None

    def value_at(self, stmt: Instruction, fact: D) -> V:
        """The joined value of ``fact`` just before ``stmt`` (top if the
        node is unreachable)."""
        return self._values.get((stmt, fact), self._top)

    def _stmt_index(self) -> Dict[Instruction, Dict[D, V]]:
        if self._by_stmt is None:
            index: Dict[Instruction, Dict[D, V]] = {}
            for (node, fact), value in self._values.items():
                if value == self._top:
                    continue
                row = index.get(node)
                if row is None:
                    row = index[node] = {}
                row[fact] = value
            self._by_stmt = index
        return self._by_stmt

    def results_at(
        self, stmt: Instruction, include_zero: bool = False
    ) -> Dict[D, V]:
        """All non-top facts and their values at ``stmt``."""
        row = self._stmt_index().get(stmt)
        if row is None:
            return {}
        if include_zero:
            return dict(row)
        zero = self._zero
        return {fact: value for fact, value in row.items() if fact is not zero}

    def non_top_count(self) -> int:
        return sum(1 for value in self._values.values() if value != self._top)

    def items(self):
        """Iterate ``((stmt, fact), value)`` pairs (top entries included)."""
        return self._values.items()


class IDESolver(Generic[D, V]):
    """Two-phase worklist solver for :class:`IDEProblem`.

    ``worklist_order`` selects the iteration order of phase I: ``"fifo"``,
    ``"lifo"``, ``"random"`` with ``order_seed``, or ``"rpo"`` (a priority
    queue popping statements in per-method reverse post-order, so merge
    points see near-final joined functions and re-propagate less).  ``None``
    resolves to ``$SPLLIFT_WORKLIST_ORDER``, default ``fifo``.  The fixed
    point is order-independent, but the amount of work is not — the paper
    observes "a relatively high variance in the analysis times ... caused
    by non-determinism in the order in which the IDE solution is computed"
    (Section 6.2); exposing the order makes that variance measurable
    (see ``repro.experiments.variance``).
    """

    def __init__(
        self,
        problem: IDEProblem[D, V],
        worklist_order: Optional[str] = None,
        order_seed: int = 0,
        summaries: Optional[object] = None,
    ) -> None:
        worklist_order = resolve_worklist_order(worklist_order)
        self._order = worklist_order
        # Incremental warm-summary provider (repro.ide.summaries); None
        # on a cold solve.  The provider may detach itself in attach()
        # when the problem shape does not support reuse.
        self._summaries = summaries
        if worklist_order == "random":
            import random as _random

            self._rng = _random.Random(order_seed)
        self.problem = problem
        self.icfg = problem.icfg
        self._use_heap = worklist_order == "rpo"
        if self._use_heap:
            self._ranker = RPORanker(problem.icfg)
        self.stats: Dict[str, int] = {
            "jump_functions": 0,
            "flow_applications": 0,
            "edge_compositions": 0,
            "value_updates": 0,
            "value_batch_joins": 0,
            "worklist_deduped": 0,
            "compose_cache_hits": 0,
            "compose_cache_misses": 0,
            "join_cache_hits": 0,
            "join_cache_misses": 0,
            "interned_edges": 0,
            # Incremental reuse split: contexts injected from the store,
            # contexts tabulated while a summary cache was armed, and
            # reachable methods whose stored record was missing/unusable.
            # All deterministic zeros on a cold solve.
            "summaries_reused": 0,
            "summaries_recomputed": 0,
            "summaries_invalidated": 0,
            # Overridden by the parallel solve layer; a plain sequential
            # solve is one partition on one worker.
            "parallel_workers": 1,
            "parallel_partitions": 1,
        }
        # Two-level jump index: target stmt -> d1 -> d2 -> jump function.
        # The nesting lets phase II enumerate exactly the pairs whose source
        # fact matches, instead of scanning all (d1, d2) pairs per statement.
        self._jump: Dict[Instruction, Dict[D, Dict[D, EdgeFunction[V]]]] = {}
        # fifo/lifo/random use a deque of entries; rpo uses a bucket queue
        # indexed by statement rank.
        self._worklist = BucketQueue() if self._use_heap else deque()
        # Entries currently enqueued; re-joining a pending entry must not
        # enqueue it twice — its single pop reads the latest joined function.
        self._pending: Set[Tuple[D, Instruction, D]] = set()
        # (method, entry fact) -> {(exit stmt, exit fact)}
        self._end_summaries: Dict[
            Tuple[IRMethod, D], Set[Tuple[Instruction, D]]
        ] = {}
        # (method, entry fact) -> {(call stmt, caller source fact, call fact)}
        self._incoming: Dict[
            Tuple[IRMethod, D], Set[Tuple[Instruction, D, D]]
        ] = {}
        self._all_top = problem.all_top()
        # Exploded-successor memos.  Flow functions and edge functions
        # depend only on (statement, fact) — never on the path's source
        # fact d1 — so the solver caches, per (n, d2), the tuple of
        # (successor, d3, edge function) it produces.  Re-walks of the same
        # exploded node with a different d1 (the common case in phase I)
        # then skip flow-function application and edge construction.
        self._normal_cache: Dict[
            Tuple[Instruction, D],
            Tuple[Tuple[Instruction, D, EdgeFunction[V]], ...],
        ] = {}
        self._c2r_cache: Dict[
            Tuple[Instruction, D],
            Tuple[Tuple[Instruction, D, EdgeFunction[V]], ...],
        ] = {}
        # (call, d2) -> ((callee, callee start, entry facts), ...)
        self._call_cache: Dict[
            Tuple[Instruction, D],
            Tuple[Tuple[IRMethod, Instruction, Tuple[D, ...]], ...],
        ] = {}
        # (call, exit stmt, exit fact) -> ((return site, d5, edge), ...)
        self._return_cache: Dict[
            Tuple[Instruction, Instruction, D],
            Tuple[Tuple[Instruction, D, EdgeFunction[V]], ...],
        ] = {}
        # Statement kind (0 normal, 1 call, 2 exit, 3 exit-with-successors),
        # resolved once per statement instead of per worklist pop.
        self._kind_cache: Dict[Instruction, int] = {}
        # Flow functions are pure per ICFG edge; constructing them (closure
        # allocation in the client analyses) is cached per edge so memo
        # misses for further facts at the same edge skip it.
        self._flow_cache: Dict[tuple, object] = {}

    # ==================================================================
    # Phase I: jump functions
    # ==================================================================

    def solve(self) -> IDEResults[D, V]:
        """Run both phases and return the solved values."""
        tracer = obs.tracer()
        with tracer.span("ide/solve", order=self._order):
            with tracer.span("ide/phase1/tabulation"):
                self._build_jump_functions()
            if self._summaries is not None:
                # Store the freshly computed method summaries before the
                # value phase; phase II reads, never extends, jump rows.
                self._summaries.harvest(self)
            with tracer.span("ide/phase2/values"):
                values = self._compute_values()
        self.stats.update(self.problem.edge_cache_stats())
        self.stats["worklist_order"] = self._order
        # Mirror the per-solve stats dict (the compatibility view) into
        # the process-wide registry, where campaigns aggregate.
        obs.publish_stats("ide.solver", self.stats)
        progress = obs.progress()
        if progress is not None:
            progress.finish()
        return IDEResults(values, self.problem.top_value(), self.problem.zero)

    def _build_jump_functions(self) -> None:
        seed_function = self.problem.seed_edge_function()
        if self._summaries is not None:
            self._summaries.attach(self)
        summaries = self._summaries  # attach() may have detached it
        for stmt, facts in self.problem.initial_seeds().items():
            method = self.icfg.method_of(stmt)
            ensure = (
                summaries is not None
                and stmt is self.icfg.start_point_of(method)
            )
            for fact in facts:
                if ensure:
                    summaries.ensure_context(self, method, fact, stmt)
                else:
                    self._propagate(fact, stmt, fact, seed_function)
        kind_cache = self._kind_cache
        worklist = self._worklist
        pending = self._pending
        jump = self._jump
        fifo = self._order == "fifo"
        use_heap = self._use_heap
        progress = obs.progress()
        flight = obs.flight() if obs.flight_enabled() else None
        tick = 0
        while worklist:
            # Live progress and flight pulses, masked to one pop in ~1k
            # (progress) / ~256 (flight) so the hot loop pays a
            # mask-and-branch, nothing more.  The pulse is what lets a
            # postmortem of a worker killed mid-solve show where the
            # worklist stood in its final moments.
            tick += 1
            if (tick & 255) == 0:
                if flight is not None:
                    flight.record(
                        "pulse",
                        "ide/phase1",
                        pops=tick,
                        worklist=len(worklist),
                        jumps=self.stats["jump_functions"],
                    )
                if (tick & 1023) == 0 and progress is not None:
                    progress.tick(
                        "ide/phase1",
                        worklist=len(worklist),
                        jumps=self.stats["jump_functions"],
                    )
            # Inlined `_pop` for the default and rpo orders; every
            # propagated entry has a jump-table row, so the lookup can
            # index directly.
            if fifo:
                entry = worklist.popleft()
                pending.discard(entry)
                d1, n, d2 = entry
            elif use_heap:
                entry = worklist.pop()
                pending.discard(entry)
                d1, n, d2 = entry
            else:
                d1, n, d2 = self._pop()
            f = jump[n][d1][d2]
            kind = kind_cache.get(n)
            if kind is None:
                if self.icfg.is_call(n):
                    kind = 1
                elif self.icfg.is_exit(n):
                    # A disabled `return` in a lifted CFG falls through to
                    # its successor; plain CFGs have none.
                    kind = 3 if self.icfg.successors_of(n) else 2
                else:
                    kind = 0
                kind_cache[n] = kind
            if kind == 0:
                self._process_normal(d1, n, d2, f)
            elif kind == 1:
                self._process_call(d1, n, d2, f)
            else:
                self._process_exit(d1, n, d2, f)
                if kind == 3:
                    self._process_normal(d1, n, d2, f)

    def _pop(self) -> Tuple[D, Instruction, D]:
        if self._order == "fifo":
            entry = self._worklist.popleft()
        elif self._order == "rpo":
            entry = self._worklist.pop()
        elif self._order == "lifo":
            entry = self._worklist.pop()
        else:
            # random: swap a random element to the end, then pop it.
            index = self._rng.randrange(len(self._worklist))
            self._worklist[index], self._worklist[-1] = (
                self._worklist[-1],
                self._worklist[index],
            )
            entry = self._worklist.pop()
        self._pending.discard(entry)
        return entry

    def _jump_fn(self, n: Instruction, d1: D, d2: D) -> EdgeFunction[V]:
        rows = self._jump.get(n)
        if rows is None:
            return self._all_top
        row = rows.get(d1)
        if row is None:
            return self._all_top
        return row.get(d2, self._all_top)

    def _propagate(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        if f.is_top:
            return  # no flow — drop the path (early termination)
        rows = self._jump.get(n)
        if rows is None:
            rows = self._jump[n] = {}
        row = rows.get(d1)
        if row is None:
            row = rows[d1] = {}
        old = row.get(d2)
        if old is None:
            self.stats["jump_functions"] += 1
            joined = f
        else:
            joined = old.join_with(f)
            # Flyweight edges make the fixed-point check a pointer
            # comparison; `equal_to` remains as the general fallback.
            if joined is old or joined.equal_to(old):
                return
        row[d2] = joined
        entry = (d1, n, d2)
        if entry in self._pending:
            # Already enqueued: its pop reads the freshly joined function.
            self.stats["worklist_deduped"] += 1
            return
        self._pending.add(entry)
        if self._use_heap:
            self._worklist.push(self._ranker.rank_of(n), entry)
        else:
            self._worklist.append(entry)

    # ------------------------------------------------------------------
    # Case: normal statements
    # ------------------------------------------------------------------

    def _process_normal(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        key = (n, d2)
        exploded = self._normal_cache.get(key)
        if exploded is None:
            entries: List[Tuple[Instruction, D, EdgeFunction[V]]] = []
            for succ in self.icfg.successors_of(n):
                fkey = ("normal", n, succ)
                flow = self._flow_cache.get(fkey)
                if flow is None:
                    flow = self._flow_cache[fkey] = self.problem.normal_flow(
                        n, succ
                    )
                self.stats["flow_applications"] += 1
                for d3 in flow.compute_targets(d2):
                    edge = self.problem.edge_normal(n, d2, succ, d3)
                    entries.append((succ, d3, edge))
            exploded = self._normal_cache[key] = tuple(entries)
        # `_propagate` inlined: the compose loop below is the hottest frame
        # of the lifted solve (ROADMAP "solver micro-path"), and the call
        # overhead is measurable at millions of propagations.
        stats = self.stats
        stats["edge_compositions"] += len(exploded)
        jump = self._jump
        pending = self._pending
        worklist = self._worklist
        use_heap = self._use_heap
        rank_of = self._ranker.rank_of if use_heap else None
        new_jumps = deduped = 0
        for succ, d3, edge in exploded:
            fn = f.compose_with(edge)
            if fn.is_top:
                continue  # no flow — drop the path (early termination)
            rows = jump.get(succ)
            if rows is None:
                rows = jump[succ] = {}
            row = rows.get(d1)
            if row is None:
                row = rows[d1] = {}
            old = row.get(d3)
            if old is None:
                new_jumps += 1
                joined = fn
            else:
                joined = old.join_with(fn)
                if joined is old or joined.equal_to(old):
                    continue
            row[d3] = joined
            entry = (d1, succ, d3)
            if entry in pending:
                deduped += 1
                continue
            pending.add(entry)
            if use_heap:
                worklist.push(rank_of(succ), entry)
            else:
                worklist.append(entry)
        if new_jumps:
            stats["jump_functions"] += new_jumps
        if deduped:
            stats["worklist_deduped"] += deduped

    # ------------------------------------------------------------------
    # Case: call statements
    # ------------------------------------------------------------------

    def _call_targets(
        self, n: Instruction, d2: D
    ) -> Tuple[Tuple[IRMethod, Instruction, Tuple[D, ...]], ...]:
        """Callees with at least one entry fact for ``(n, d2)`` (memoized)."""
        key = (n, d2)
        targets = self._call_cache.get(key)
        if targets is None:
            entries: List[Tuple[IRMethod, Instruction, Tuple[D, ...]]] = []
            for callee in self.icfg.callees_of(n):
                fkey = ("call", n, callee)
                call_flow = self._flow_cache.get(fkey)
                if call_flow is None:
                    call_flow = self._flow_cache[fkey] = self.problem.call_flow(
                        n, callee
                    )
                self.stats["flow_applications"] += 1
                entry_facts = tuple(call_flow.compute_targets(d2))
                if entry_facts:
                    entries.append(
                        (callee, self.icfg.start_point_of(callee), entry_facts)
                    )
            targets = self._call_cache[key] = tuple(entries)
        return targets

    def _process_call(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        return_sites = self.icfg.return_sites_of(n)
        seed_function = self.problem.seed_edge_function()
        provider = self._summaries
        for callee, start, entry_facts in self._call_targets(n, d2):
            for d3 in entry_facts:
                if provider is None:
                    self._propagate(d3, start, d3, seed_function)
                else:
                    # Warm path: inject the stored fixed point for the
                    # callee context (or fall back to seeding it) before
                    # the end-summaries lookup below, so an injected
                    # callee's summaries apply on this very visit.
                    provider.ensure_context(self, callee, d3, start)
                context = (callee, d3)
                self._incoming.setdefault(context, set()).add((n, d1, d2))
                summaries = self._end_summaries.get(context)
                if not summaries:
                    continue
                for exit_stmt, d4 in summaries:
                    summary = self._jump_fn(exit_stmt, d3, d4)
                    self._apply_summary(
                        n, d1, d2, f, callee, d3, exit_stmt, d4, summary, return_sites
                    )
        key = (n, d2)
        exploded = self._c2r_cache.get(key)
        if exploded is None:
            entries: List[Tuple[Instruction, D, EdgeFunction[V]]] = []
            for return_site in return_sites:
                fkey = ("c2r", n, return_site)
                flow = self._flow_cache.get(fkey)
                if flow is None:
                    flow = self._flow_cache[
                        fkey
                    ] = self.problem.call_to_return_flow(n, return_site)
                self.stats["flow_applications"] += 1
                for d3 in flow.compute_targets(d2):
                    edge = self.problem.edge_call_to_return(n, d2, return_site, d3)
                    entries.append((return_site, d3, edge))
            exploded = self._c2r_cache[key] = tuple(entries)
        self.stats["edge_compositions"] += len(exploded)
        for return_site, d3, edge in exploded:
            self._propagate(d1, return_site, d3, f.compose_with(edge))

    def _apply_summary(
        self,
        call: Instruction,
        caller_source: D,
        call_fact: D,
        caller_fn: EdgeFunction[V],
        callee: IRMethod,
        entry_fact: D,
        exit_stmt: Instruction,
        exit_fact: D,
        summary_fn: EdgeFunction[V],
        return_sites: Tuple[Instruction, ...],
    ) -> None:
        """Compose caller function, call edge, summary and return edge."""
        key = (call, exit_stmt, exit_fact)
        exploded = self._return_cache.get(key)
        if exploded is None:
            entries: List[Tuple[Instruction, D, EdgeFunction[V]]] = []
            for return_site in return_sites:
                fkey = ("return", call, exit_stmt, return_site)
                flow = self._flow_cache.get(fkey)
                if flow is None:
                    flow = self._flow_cache[fkey] = self.problem.return_flow(
                        call, callee, exit_stmt, return_site
                    )
                self.stats["flow_applications"] += 1
                for d5 in flow.compute_targets(exit_fact):
                    return_edge = self.problem.edge_return(
                        call, callee, exit_stmt, exit_fact, return_site, d5
                    )
                    entries.append((return_site, d5, return_edge))
            exploded = self._return_cache[key] = tuple(entries)
        if not exploded:
            return
        call_edge = self.problem.edge_call(call, call_fact, callee, entry_fact)
        # The caller/call/summary prefix is shared by every return edge.
        prefix = caller_fn.compose_with(call_edge).compose_with(summary_fn)
        self.stats["edge_compositions"] += 2 + len(exploded)
        for return_site, d5, return_edge in exploded:
            self._propagate(
                caller_source, return_site, d5, prefix.compose_with(return_edge)
            )

    # ------------------------------------------------------------------
    # Case: exit statements
    # ------------------------------------------------------------------

    def _process_exit(
        self, d1: D, n: Instruction, d2: D, f: EdgeFunction[V]
    ) -> None:
        method = self.icfg.method_of(n)
        context = (method, d1)
        self._end_summaries.setdefault(context, set()).add((n, d2))
        for call, caller_source, call_fact in tuple(
            self._incoming.get(context, set())
        ):
            caller_fn = self._jump_fn(call, caller_source, call_fact)
            self._apply_summary(
                call,
                caller_source,
                call_fact,
                caller_fn,
                method,
                d1,
                n,
                d2,
                f,
                self.icfg.return_sites_of(call),
            )

    # ==================================================================
    # Phase II: value computation
    # ==================================================================

    def _compute_values(self) -> Dict[Tuple[Instruction, D], V]:
        top = self.problem.top_value()
        join_values = self.problem.join_values
        values: Dict[Tuple[Instruction, D], V] = {}
        value_updates = 0

        def set_value(stmt: Instruction, fact: D, value: V) -> bool:
            nonlocal value_updates
            key = (stmt, fact)
            old = values.get(key, top)
            joined = join_values(old, value)
            # Identity first: value systems interning their instances (the
            # BDD constraint system does) make the no-change case pointer
            # equality.
            if joined is old or joined == old:
                return False
            values[key] = joined
            value_updates += 1
            return True

        # Phase II(i): start points and call sites.
        tracer = obs.tracer()
        worklist: Deque[Tuple[Instruction, D]] = deque()
        with tracer.span("ide/phase2/i"):
            for stmt, fact_values in self.problem.initial_seed_values().items():
                for fact, value in fact_values.items():
                    if set_value(stmt, fact, value):
                        worklist.append((stmt, fact))
            while worklist:
                n, d = worklist.popleft()
                value = values.get((n, d), top)
                method = self.icfg.method_of(n)
                if n is self.icfg.start_point_of(method):
                    for call in self.icfg.call_sites_in(method):
                        # Indexed jump table: enumerate only the pairs whose
                        # source fact is `d` instead of scanning all (d1, d2).
                        rows = self._jump.get(call)
                        row = rows.get(d) if rows is not None else None
                        if not row:
                            continue
                        for d2, f in row.items():
                            if set_value(call, d2, f.compute_target(value)):
                                worklist.append((call, d2))
                if self.icfg.is_call(n):
                    for callee, start, entry_facts in self._call_targets(n, d):
                        for d3 in entry_facts:
                            edge = self.problem.edge_call(n, d, callee, d3)
                            if set_value(start, d3, edge.compute_target(value)):
                                worklist.append((start, d3))

        # Phase II(ii): every remaining node via its jump function.  The
        # two-level index looks up the start value once per source fact.
        # Contributions from different source facts d1 targeting the same
        # (stmt, d2) are merged with one n-ary join instead of a pairwise
        # fold — at high-in-degree merge points this halves the traffic
        # to the value lattice (ROADMAP "batch constraint joins").
        jump = self._jump
        batch_joins = 0
        with tracer.span("ide/phase2/ii"):
            for method in self.icfg.reachable_methods:
                start = self.icfg.start_point_of(method)
                # Start values looked up once per source fact per method, not
                # once per (statement, source fact) pair.
                start_values: Dict[D, V] = {}
                for stmt in method.instructions:
                    if stmt is start:
                        continue
                    rows = jump.get(stmt)
                    if rows is None:
                        continue
                    incoming: Dict[D, List[V]] = {}
                    for d1, row in rows.items():
                        start_value = start_values.get(d1)
                        if start_value is None:
                            start_value = start_values[d1] = values.get(
                                (start, d1), top
                            )
                        if start_value == top:
                            continue
                        for d2, f in row.items():
                            contributions = incoming.get(d2)
                            if contributions is None:
                                contributions = incoming[d2] = []
                            contributions.append(f.compute_target(start_value))
                    for d2, contributions in incoming.items():
                        if len(contributions) == 1:
                            set_value(stmt, d2, contributions[0])
                        else:
                            batch_joins += 1
                            set_value(
                                stmt,
                                d2,
                                self.problem.join_all_values(contributions),
                            )
        self.stats["value_updates"] += value_updates
        self.stats["value_batch_joins"] += batch_joins
        return values
