"""The binary-domain embedding of IFDS into IDE.

"Every IFDS problem can be encoded as a special instance of the IDE
framework using a binary domain {⊤, ⊥} where d ↦ ⊥ states that data-flow
fact d holds at the current statement" (Section 2.4 of the paper).  Here
``⊥`` is ``True`` ("holds") and ``⊤`` is ``False``.

Used by the test suite to validate the IDE solver against the direct IFDS
tabulation solver: both must compute identical fact sets.
"""

from __future__ import annotations

from typing import Dict, Hashable, TypeVar

from repro.ide.edgefunctions import AllTop, EdgeFunction, IdentityEdge
from repro.ide.problem import IDEProblem
from repro.ide.solver import IDEResults, IDESolver
from repro.ifds.flowfunctions import FlowFunction
from repro.ifds.problem import IFDSProblem
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod

__all__ = ["BinaryIDEProblem", "ifds_as_ide", "solve_ifds_via_ide"]

D = TypeVar("D", bound=Hashable)

_IDENTITY: IdentityEdge = IdentityEdge()


class BinaryIDEProblem(IDEProblem[D, bool]):
    """Wrap an IFDS problem as an IDE problem over the binary lattice."""

    def __init__(self, ifds_problem: IFDSProblem[D]) -> None:
        super().__init__(ifds_problem.icfg)
        self.ifds_problem = ifds_problem
        # One all-top per problem: with a single flyweight instance the
        # solver's drop/fixed-point checks reduce to pointer comparisons.
        self._all_top: AllTop = AllTop(False)

    def all_top(self) -> EdgeFunction[bool]:
        return self._all_top

    def seed_edge_function(self) -> EdgeFunction[bool]:
        # The shared identity singleton; every edge below returns it too,
        # so compositions never allocate in the binary embedding.
        return _IDENTITY

    # Facts and flows delegate unchanged.
    def initial_seeds(self):
        return self.ifds_problem.initial_seeds()

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction[D]:
        return self.ifds_problem.normal_flow(stmt, succ)

    def call_flow(self, call: Instruction, callee: IRMethod) -> FlowFunction[D]:
        return self.ifds_problem.call_flow(call, callee)

    def return_flow(self, call, callee, exit_stmt, return_site) -> FlowFunction[D]:
        return self.ifds_problem.return_flow(call, callee, exit_stmt, return_site)

    def call_to_return_flow(self, call, return_site) -> FlowFunction[D]:
        return self.ifds_problem.call_to_return_flow(call, return_site)

    # The binary lattice.
    def top_value(self) -> bool:
        return False

    def bottom_value(self) -> bool:
        return True

    def join_values(self, left: bool, right: bool) -> bool:
        return left or right

    # Every existing edge computes the identity.
    def edge_normal(self, stmt, stmt_fact, succ, succ_fact) -> EdgeFunction[bool]:
        return _IDENTITY

    def edge_call(self, call, call_fact, callee, entry_fact) -> EdgeFunction[bool]:
        return _IDENTITY

    def edge_return(
        self, call, callee, exit_stmt, exit_fact, return_site, return_fact
    ) -> EdgeFunction[bool]:
        return _IDENTITY

    def edge_call_to_return(
        self, call, call_fact, return_site, return_fact
    ) -> EdgeFunction[bool]:
        return _IDENTITY


def ifds_as_ide(problem: IFDSProblem[D]) -> BinaryIDEProblem[D]:
    """Embed an IFDS problem into IDE over the binary domain."""
    return BinaryIDEProblem(problem)


def solve_ifds_via_ide(problem: IFDSProblem[D]) -> IDEResults[D, bool]:
    """Solve an IFDS problem with the IDE solver (binary domain)."""
    return IDESolver(ifds_as_ide(problem)).solve()
