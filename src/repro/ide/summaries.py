"""Content-keyed per-method summary reuse for incremental re-analysis.

A lifted IDE solve spends its time building, per calling context
``(method, entry fact)``, the method's jump functions and end summaries.
Those depend only on the method's own lowered body and on its callees —
never on callers — so they are reusable verbatim across solves as long
as the method *and its whole callee cone* are content-identical.  This
module persists exactly that unit in the result store:

- Every reachable method gets a transitive content digest
  (:mod:`repro.ir.digest`).  The digest of an edited method and of all
  its transitive callers changes; everything else keeps its digest.
- A stored record, keyed by ``H(problem key, method digest)``, holds the
  method's complete phase-I fixed point: for each calling context, all
  interior jump rows (phase II needs them, not just the exit rows) and
  the end-summary markers, with facts index-interned and constraints
  batched through the canonical BDD codec
  (:mod:`repro.constraints.serialize`).
- On a warm solve, the solver asks :meth:`SummaryCache.ensure_context`
  instead of seeding tabulation at a callee start.  A stored context is
  *injected*: its rows are written into the jump table as final (never
  enqueued — they already are a fixed point), and its callee contexts
  are ensured recursively so phase II sees the full exploded graph.  A
  missing or undecodable context falls back to normal tabulation.

Dirty-closure invalidation is implicit: edited methods and their
transitive callers get fresh digests, miss in the store, and are
re-tabulated; clean methods hit.  Because the clean set is closed under
the callee relation (a clean method's callees are clean by definition of
the transitive digest), injected rows can never be extended by new flow
— they are exact, which is why warm results are bit-identical to cold.

Everything fails open: a miss, a truncated document, a mis-keyed record
or a constraint naming an undeclared BDD variable just means that
method is recomputed.  The store is shared infrastructure
(:mod:`repro.service`) — dir, sqlite and served-HTTP backends all carry
summary records unmodified.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analyses.facts import (
    DefFact,
    FieldFact,
    LocalFact,
    TypedField,
    TypedLocal,
)
from repro.analyses.typestate import TypestateFact
from repro.constraints.serialize import (
    ConstraintCodecError,
    decode_constraints,
    encode_constraints,
)
from repro.ifds.problem import ZERO, ZeroFact
from repro.ir.digest import method_local_digest, transitive_method_digests
from repro.ir.program import IRMethod
from repro.obs import runtime as obs

__all__ = [
    "SUMMARY_SCHEMA",
    "SummaryCodecError",
    "SummaryCache",
    "encode_fact",
    "decode_fact",
    "problem_key_for",
    "summary_record_key",
    "summary_cache_for",
]

#: Record kind for method summaries in the result store (the store's
#: ``stats()`` counts records by this field, so summaries show up as
#: their own kind next to ``spllift-result/v1``).
SUMMARY_SCHEMA = "spllift-summary/v1"


class SummaryCodecError(ValueError):
    """A fact or edge function that cannot be encoded or decoded."""


# ----------------------------------------------------------------------
# Fact codec
# ----------------------------------------------------------------------
#
# Facts are plain value objects; each variant encodes to a small tagged
# list.  The one exception is DefFact, whose identity includes the
# *defining instruction* — encoded as (owning method's *local* digest,
# instruction index).  Local, not transitive: the instruction a site
# names is pinned by the owning method's own body alone, so a DefFact
# sited in a method that is dirty only transitively (an unchanged caller
# of the edit) still decodes.  A site in a body-edited method misses,
# which is correct — its defining instruction may no longer exist.


def encode_fact(fact: object, digest_of: Dict[IRMethod, str]) -> List[object]:
    if isinstance(fact, ZeroFact):
        return ["zero"]
    if isinstance(fact, LocalFact):
        return ["local", fact.name]
    if isinstance(fact, FieldFact):
        return ["field", fact.class_name, fact.field_name]
    if isinstance(fact, TypedLocal):
        return ["tlocal", fact.name, fact.class_name]
    if isinstance(fact, TypedField):
        return ["tfield", fact.declaring_class, fact.field_name, fact.class_name]
    if isinstance(fact, TypestateFact):
        return ["state", fact.local, fact.state]
    if isinstance(fact, DefFact):
        site = fact.site
        digest = digest_of.get(site.method)
        if digest is None:
            raise SummaryCodecError(
                f"DefFact site in unreachable method {site.method!r}"
            )
        return ["def", fact.name, digest, site.index]
    raise SummaryCodecError(f"unsupported fact type {type(fact).__name__}")


def decode_fact(
    document: object, method_by_digest: Dict[str, IRMethod]
) -> object:
    if not isinstance(document, list) or not document:
        raise SummaryCodecError(f"malformed fact document {document!r}")
    tag, args = document[0], document[1:]
    if tag == "zero" and not args:
        return ZERO
    if tag == "local" and len(args) == 1:
        return LocalFact(str(args[0]))
    if tag == "field" and len(args) == 2:
        return FieldFact(str(args[0]), str(args[1]))
    if tag == "tlocal" and len(args) == 2:
        return TypedLocal(str(args[0]), str(args[1]))
    if tag == "tfield" and len(args) == 3:
        return TypedField(str(args[0]), str(args[1]), str(args[2]))
    if tag == "state" and len(args) == 2:
        return TypestateFact(str(args[0]), str(args[1]))
    if tag == "def" and len(args) == 3:
        name, digest, index = args
        method = method_by_digest.get(digest)
        if method is None:
            raise SummaryCodecError(f"DefFact site digest {digest!r} unknown")
        if not isinstance(index, int) or not 0 <= index < len(method.instructions):
            raise SummaryCodecError(f"DefFact site index {index!r} out of range")
        return DefFact(str(name), method.instructions[index])
    raise SummaryCodecError(f"malformed fact document {document!r}")


# ----------------------------------------------------------------------
# Record keys
# ----------------------------------------------------------------------


def problem_key_for(problem: object) -> str:
    """The analysis-identity half of a summary record key.

    Covers everything besides program content that the summaries depend
    on: which analysis (and protocol, for typestate), the feature-model
    constraint and how it is applied.  The constraint renders
    deterministically because feature-model variables are declared first
    and in a fixed order (``LiftedProblem._declare_annotation_variables``).
    """
    inner = getattr(problem, "inner", problem)
    parts = [f"analysis={type(inner).__module__}.{type(inner).__qualname__}"]
    protocol = getattr(inner, "protocol", None)
    if protocol is not None:
        parts.append(f"protocol={protocol.name}")
    parts.append(f"fm_mode={getattr(problem, 'fm_mode', None)}")
    parts.append(f"fm={getattr(problem, 'feature_model', None)}")
    return "|".join(parts)


def summary_record_key(problem_key: str, method_digest: str) -> str:
    payload = "\n".join((SUMMARY_SCHEMA, problem_key, method_digest))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def summary_cache_for(spllift: object, store: object) -> "SummaryCache":
    """Build a :class:`SummaryCache` for a :class:`~repro.core.solver.SPLLift`
    instance against an opened store backend."""
    return SummaryCache(store, problem_key_for(spllift.problem))


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------

#: Decoded record entry per context: (jump rows, end summaries).
_Entry = Tuple[Tuple[Tuple[object, object, object], ...], FrozenSet]


class SummaryCache:
    """Warm-summary provider wired into one :class:`~repro.ide.solver.IDESolver`.

    Lifecycle: the solver calls :meth:`attach` once before seeding (this
    computes digests and eagerly loads/decodes every candidate record
    under the ``ide/phase1/summary_reuse`` span), then
    :meth:`ensure_context` for every calling context instead of the cold
    seed propagation, then :meth:`harvest` after phase I to store fresh
    summaries back.  One instance serves one solve; build a new one per
    re-solve (digests are per-program).
    """

    def __init__(self, store: object, problem_key: str) -> None:
        self.store = store
        self.problem_key = problem_key
        self._active = False
        self._system = None
        self._edge_table = None
        self._seed_fn = None
        self._digest_of: Dict[IRMethod, str] = {}
        self._local_digest_of: Dict[IRMethod, str] = {}
        self._method_by_local_digest: Dict[str, IRMethod] = {}
        self._records: Dict[IRMethod, Dict[object, _Entry]] = {}
        #: Contexts already ensured (injected or recomputed); repeat
        #: ensures are no-ops, matching the idempotent cold-path seeding.
        self._seen: Set[Tuple[IRMethod, object]] = set()
        self._injected: Set[Tuple[IRMethod, object]] = set()
        self._call_sites: Dict[IRMethod, Tuple[object, ...]] = {}

    # -- solver hooks --------------------------------------------------

    def attach(self, solver: object) -> None:
        """Bind to a solver; load and decode every candidate record.

        Summary reuse requires the lifted BDD problem shape (interned
        constraint edges, a canonical node codec).  Anything else —
        plain IFDS/IDE problems, the DNF reference system — detaches the
        cache so the solve runs exactly as a cold one.
        """
        problem = solver.problem
        system = getattr(problem, "system", None)
        edge_table = getattr(problem, "edge_table", None)
        if edge_table is None or not hasattr(system, "manager"):
            solver._summaries = None
            return
        self._system = system
        self._edge_table = edge_table
        self._seed_fn = problem.seed_edge_function()
        self._active = True
        icfg = solver.icfg
        stats = solver.stats
        with obs.tracer().span("ide/phase1/summary_reuse"):
            self._digest_of = transitive_method_digests(icfg.call_graph)
            self._local_digest_of = {
                method: method_local_digest(method) for method in self._digest_of
            }
            self._method_by_local_digest = {
                digest: method
                for method, digest in self._local_digest_of.items()
            }
            for method in icfg.reachable_methods:
                key = summary_record_key(self.problem_key, self._digest_of[method])
                record = self.store.get(key)
                decoded = (
                    None if record is None else self._decode_record(method, record)
                )
                if decoded is None:
                    stats["summaries_invalidated"] += 1
                else:
                    self._records[method] = decoded

    def ensure_context(
        self, solver: object, method: IRMethod, fact: object, start: object
    ) -> None:
        """Make the calling context ``(method, fact)`` available.

        Injects the stored fixed point when the method is clean and the
        context was seen by the populating solve; otherwise seeds normal
        tabulation (counted as recomputed).
        """
        key = (method, fact)
        if key in self._seen:
            return
        entries = self._records.get(method)
        if entries is None or fact not in entries:
            self._seen.add(key)
            solver.stats["summaries_recomputed"] += 1
            solver._propagate(fact, start, fact, self._seed_fn)
            return
        self._inject(solver, method, fact)

    def _inject(self, solver: object, method: IRMethod, fact: object) -> None:
        """Write stored fixed points into the solver, contexts
        callee-recursively, without touching the worklist."""
        jump = solver._jump
        incoming = solver._incoming
        stats = solver.stats
        stack = [(method, fact)]
        while stack:
            key = stack.pop()
            if key in self._seen:
                continue
            self._seen.add(key)
            self._injected.add(key)
            m, d1 = key
            rows, ends = self._records[m][d1]
            stats["summaries_reused"] += 1
            for stmt, d2, fn in rows:
                stmt_rows = jump.get(stmt)
                if stmt_rows is None:
                    stmt_rows = jump[stmt] = {}
                row = stmt_rows.get(d1)
                if row is None:
                    row = stmt_rows[d1] = {}
                existing = row.get(d2)
                row[d2] = fn if existing is None else existing.join_with(fn)
            if ends:
                solver._end_summaries.setdefault(key, set()).update(ends)
            # Bind callee contexts: phase II needs the callees' rows too,
            # and _incoming must name this caller in case a callee record
            # is unusable and tabulates (its exit re-applies summaries
            # into rows we already hold — a join no-op).
            for call in self._method_calls(solver, m):
                call_rows = jump.get(call)
                row = call_rows.get(d1) if call_rows is not None else None
                if not row:
                    continue
                for d2 in tuple(row):
                    for callee, start, entry_facts in solver._call_targets(
                        call, d2
                    ):
                        for d3 in entry_facts:
                            ckey = (callee, d3)
                            incoming.setdefault(ckey, set()).add((call, d1, d2))
                            if ckey in self._seen:
                                continue
                            centries = self._records.get(callee)
                            if centries is not None and d3 in centries:
                                stack.append(ckey)
                            else:
                                self._seen.add(ckey)
                                stats["summaries_recomputed"] += 1
                                solver._propagate(d3, start, d3, self._seed_fn)

    def _method_calls(self, solver: object, method: IRMethod) -> Tuple[object, ...]:
        calls = self._call_sites.get(method)
        if calls is None:
            calls = self._call_sites[method] = tuple(
                solver.icfg.call_sites_in(method)
            )
        return calls

    def harvest(self, solver: object) -> None:
        """Store back the summaries of every method that was (re)computed.

        Methods whose every context was injected are skipped — the store
        already holds an equivalent record under the same key.
        """
        if not self._active:
            return
        jump = solver._jump
        icfg = solver.icfg
        with obs.tracer().span("ide/phase1/summary_harvest"):
            for method in icfg.reachable_methods:
                contexts: Set[object] = set()
                for stmt in method.instructions:
                    rows = jump.get(stmt)
                    if rows:
                        contexts.update(rows)
                if not contexts:
                    continue
                if all((method, d1) in self._injected for d1 in contexts):
                    continue
                record = self._encode_method(solver, method, contexts)
                if record is not None:
                    self.store.put(record)

    # -- record codec --------------------------------------------------

    def _encode_method(
        self, solver: object, method: IRMethod, contexts: Set[object]
    ) -> Optional[Dict[str, object]]:
        digest = self._digest_of[method]
        fact_index: Dict[object, int] = {}
        fact_docs: List[object] = []
        constraint_index: Dict[object, int] = {}
        constraints: List[object] = []

        def fact_ref(fact: object) -> int:
            ref = fact_index.get(fact)
            if ref is None:
                ref = fact_index[fact] = len(fact_docs)
                fact_docs.append(encode_fact(fact, self._local_digest_of))
            return ref

        def constraint_ref(fn: object) -> int:
            constraint = getattr(fn, "constraint", None)
            if constraint is None:
                raise SummaryCodecError(
                    f"edge function {fn!r} is not a constraint edge"
                )
            ref = constraint_index.get(constraint)
            if ref is None:
                ref = constraint_index[constraint] = len(constraints)
                constraints.append(constraint)
            return ref

        jump = solver._jump
        try:
            context_docs = []
            for d1 in sorted(contexts, key=repr):
                jumps = []
                for stmt in method.instructions:
                    rows = jump.get(stmt)
                    row = rows.get(d1) if rows is not None else None
                    if not row:
                        continue
                    for d2, fn in row.items():
                        jumps.append([stmt.index, fact_ref(d2), constraint_ref(fn)])
                ends = [
                    [stmt.index, fact_ref(d4)]
                    for stmt, d4 in sorted(
                        solver._end_summaries.get((method, d1), ()),
                        key=lambda item: (item[0].index, repr(item[1])),
                    )
                ]
                context_docs.append(
                    {"entry": fact_ref(d1), "jumps": jumps, "ends": ends}
                )
            return {
                "schema": SUMMARY_SCHEMA,
                "digest": summary_record_key(self.problem_key, digest),
                "method": method.qualified_name,
                "method_digest": digest,
                "facts": fact_docs,
                "constraints": encode_constraints(self._system, constraints),
                "contexts": context_docs,
            }
        except SummaryCodecError:
            # An unsupported fact or edge shape: this method's summaries
            # simply are not persisted; the solve itself is unaffected.
            return None

    def _decode_record(
        self, method: IRMethod, record: Dict[str, object]
    ) -> Optional[Dict[object, _Entry]]:
        """Decode one stored record into live solver structures.

        Record-level malformation — wrong schema, mis-keyed method,
        truncated tables, constraints naming undeclared variables —
        returns ``None``: a miss, never an exception.  A *context* whose
        facts no longer resolve (typically a ``DefFact`` sited in the
        edited method: its identity genuinely changed) is dropped alone;
        the method's other contexts stay injectable.  Dropping whole
        contexts is sound — an absent context just re-tabulates — while
        dropping individual rows would inject a truncated fixed point,
        so any bad row discards its whole context.
        """
        bad = object()  # sentinel: a fact that failed to decode
        try:
            if record.get("schema") != SUMMARY_SCHEMA:
                return None
            if record.get("method") != method.qualified_name:
                return None
            if record.get("method_digest") != self._digest_of[method]:
                return None
            roots = decode_constraints(
                self._system,
                record["constraints"],
                require_declared_vars=True,
            )
            edges = [self._edge_table.edge(constraint) for constraint in roots]
            facts = []
            for doc in record["facts"]:
                try:
                    facts.append(decode_fact(doc, self._method_by_local_digest))
                except SummaryCodecError:
                    facts.append(bad)
            instructions = method.instructions

            def pick(table: list, ref: object) -> object:
                # Explicit bounds check: a corrupt negative ref must be a
                # decode failure, not a silent alias of the table's tail.
                if not isinstance(ref, int) or not 0 <= ref < len(table):
                    raise SummaryCodecError(f"table ref {ref!r} out of range")
                value = table[ref]
                if value is bad:
                    raise SummaryCodecError(f"fact ref {ref!r} undecodable")
                return value

            entries: Dict[object, _Entry] = {}
            for context in record["contexts"]:
                try:
                    d1 = pick(facts, context["entry"])
                    rows = []
                    for stmt_idx, fact_ref, root_ref in context["jumps"]:
                        fn = pick(edges, root_ref)
                        if fn.is_top:
                            continue
                        rows.append(
                            (pick(instructions, stmt_idx), pick(facts, fact_ref), fn)
                        )
                    ends = set()
                    for stmt_idx, fact_ref in context["ends"]:
                        ends.add(
                            (pick(instructions, stmt_idx), pick(facts, fact_ref))
                        )
                    entries[d1] = (tuple(rows), frozenset(ends))
                except (SummaryCodecError, KeyError, TypeError, ValueError):
                    continue
            return entries or None
        except (
            ConstraintCodecError,
            SummaryCodecError,
            KeyError,
            IndexError,
            TypeError,
            ValueError,
        ):
            return None
