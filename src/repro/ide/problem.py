"""The IDE problem interface (Sagiv, Reps, Horwitz, TAPSOFT'96).

An IDE problem is an IFDS problem (the four flow-function classes decide
*which* exploded-graph edges exist) plus, for every edge, an
:class:`~repro.ide.edgefunctions.EdgeFunction` over a value lattice ``V``
(which decides what the edge *computes*).  Environments ``{fact -> V}`` are
transformed along the graph; the solved value at ``(s, d)`` is the join
over all valid paths.

Every IFDS problem embeds into IDE via the binary lattice
(:mod:`repro.ide.binary`); SPLLIFT instead uses feature constraints
(:mod:`repro.core`), exploiting exactly this expressiveness gap
(Section 3 of the paper).
"""

from __future__ import annotations

from typing import Dict, Generic, Hashable, Iterable, TypeVar

from repro.ide.edgefunctions import AllTop, EdgeFunction, IdentityEdge
from repro.ifds.problem import IFDSProblem
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod

__all__ = ["IDEProblem"]

D = TypeVar("D", bound=Hashable)
V = TypeVar("V")


class IDEProblem(IFDSProblem[D], Generic[D, V]):
    """Base class for IDE analyses.

    Subclasses provide the value lattice (:meth:`top_value`,
    :meth:`join_values`), per-edge functions, and seed values.
    """

    # ------------------------------------------------------------------
    # The value lattice
    # ------------------------------------------------------------------

    def top_value(self) -> V:
        """The neutral element of the join ("no flow reaches this node")."""
        raise NotImplementedError

    def bottom_value(self) -> V:
        """The most permissive value (seeds default to this)."""
        raise NotImplementedError

    def join_values(self, left: V, right: V) -> V:
        """Join two values at a merge point (moves down, toward bottom)."""
        raise NotImplementedError

    def join_all_values(self, values: Iterable[V]) -> V:
        """n-ary join at a merge point with many incoming values.

        The default folds pairwise via :meth:`join_values`; lattices with
        a cheaper batch operation (e.g. the constraint systems' n-ary
        ``or_all``) override this — the join is associative and
        commutative, so any reduction order yields the same value.
        """
        result = self.top_value()
        for value in values:
            result = self.join_values(result, value)
        return result

    def all_top(self) -> EdgeFunction[V]:
        """The all-top edge function (default jump function)."""
        return AllTop(self.top_value())

    def seed_edge_function(self) -> EdgeFunction[V]:
        """Jump function seeded at entry points (default: identity)."""
        return IdentityEdge()

    def initial_seed_values(self) -> Dict[Instruction, Dict[D, V]]:
        """Seed values for phase II; defaults to bottom at every seed."""
        return {
            stmt: {fact: self.bottom_value() for fact in facts}
            for stmt, facts in self.initial_seeds().items()
        }

    def edge_cache_stats(self) -> Dict[str, int]:
        """Edge-algebra cache counters, merged into ``IDESolver.stats``
        after the solve.  Problems without a memoized edge algebra (e.g.
        the binary embedding) report nothing; the lifted problem reports
        its intern-table counters (see ``repro.core.lifting``)."""
        return {}

    # ------------------------------------------------------------------
    # Edge functions, one per flow-function edge
    # ------------------------------------------------------------------

    def edge_normal(
        self,
        stmt: Instruction,
        stmt_fact: D,
        succ: Instruction,
        succ_fact: D,
    ) -> EdgeFunction[V]:
        """Function for a normal-flow edge ``(stmt, d) -> (succ, d')``."""
        raise NotImplementedError

    def edge_call(
        self,
        call: Instruction,
        call_fact: D,
        callee: IRMethod,
        entry_fact: D,
    ) -> EdgeFunction[V]:
        """Function for a call edge into a callee's start point."""
        raise NotImplementedError

    def edge_return(
        self,
        call: Instruction,
        callee: IRMethod,
        exit_stmt: Instruction,
        exit_fact: D,
        return_site: Instruction,
        return_fact: D,
    ) -> EdgeFunction[V]:
        """Function for a return edge back to a return site."""
        raise NotImplementedError

    def edge_call_to_return(
        self,
        call: Instruction,
        call_fact: D,
        return_site: Instruction,
        return_fact: D,
    ) -> EdgeFunction[V]:
        """Function for an intra-procedural edge across a call site."""
        raise NotImplementedError
