"""SPLLIFT: the paper's contribution — lifting IFDS analyses to SPLs."""

from repro.core.emergent import (
    EmergentInterface,
    FeatureDependency,
    compute_emergent_interface,
)
from repro.core.icfg import LiftedICFG
from repro.core.lifting import FM_MODES, ConstraintEdge, LiftedProblem
from repro.core.solver import SPLLift, SPLLiftResults

__all__ = [
    "LiftedICFG",
    "LiftedProblem",
    "ConstraintEdge",
    "FM_MODES",
    "SPLLift",
    "SPLLiftResults",
    "EmergentInterface",
    "FeatureDependency",
    "compute_emergent_interface",
]
