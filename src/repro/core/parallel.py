"""Parallel solve layer: process fan-out for campaigns and lifted solves.

Two consumers share one engine:

- :class:`ProcessTaskPool` — a generic fan-out of ``(callable, args)``
  tasks over short-lived worker processes.  It is the
  :class:`~repro.service.scheduler.BatchScheduler` machinery extracted
  into a reusable form: one process per task attempt (SIGKILL-safe, no
  ``BrokenProcessPool``), bounded crash retry, per-task timeout, and
  graceful inline degradation when processes cannot be spawned.  The
  wait loop blocks on :func:`multiprocessing.connection.wait` over the
  result pipes *and* the process sentinels, with the timeout derived
  from the nearest task deadline — no polling, no busy-wait.

- :func:`solve_lifted_parallel` — per-entry-context parallelism for
  ``SPLLift.solve(parallel=N)``.  Phase-I tabulation is independent per
  seed ``(statement, fact)`` unit: the IDE solution over a seed set is
  the join of the solutions over its singletons, because every value is
  a join over paths and paths from distinct seeds never interact.  The
  seeds are partitioned, each partition is solved in a forked worker,
  and the per-partition values come back as (statement index, fact
  codec, constraint ref) triples with the constraints shipped through
  the canonical node-table codec of
  :mod:`repro.constraints.serialize`.  The parent decodes into its own
  constraint system and joins duplicates in deterministic submission
  order, so ``result_digest()`` is bit-identical to a sequential solve.

Workers are forked *after* the lifted problem is built, so they inherit
the parent's instruction identities (the statement index is shared by
construction) and its BDD variable order.  On platforms without fork,
or when anything at all goes wrong in a partition, the caller falls
back to the ordinary sequential solve — parallelism may only change
speed, never results.
"""

from __future__ import annotations

import dataclasses
import importlib
import os
import pickle
import shutil
import signal
import tempfile
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.constraints.serialize import decode_constraints, encode_constraints
from repro.ifds.problem import ZERO, ZeroFact
from repro.ir.instructions import Instruction
from repro.obs import runtime as obs
from repro.obs.flight import FLIGHT_DIR_ENV, load_spill

__all__ = [
    "PARALLEL_ENV",
    "resolve_parallel",
    "TaskOutcome",
    "ProcessTaskPool",
    "solve_lifted_parallel",
]

#: Environment default for every ``parallel=None`` entry point
#: (``SPLLift.solve``, the experiment runners, the CLI).
PARALLEL_ENV = "SPLLIFT_PARALLEL"

#: Set in worker processes: gates the service's fault-injection hooks and
#: pins nested parallelism to 1 (a forked worker must not fork a pool of
#: its own).
_WORKER_ENV = "SPLLIFT_WORKER"

#: TaskOutcome.status values.
COMPUTED, FAILED = "computed", "failed"


def resolve_parallel(parallel: Optional[int] = None) -> int:
    """Resolve a ``parallel=`` argument to a worker count.

    ``None`` falls back to ``$SPLLIFT_PARALLEL`` (unset/empty means 1 —
    sequential); ``0`` or negative means "one worker per CPU".
    """
    if parallel is None:
        raw = os.environ.get(PARALLEL_ENV, "").strip()
        if not raw:
            return 1
        try:
            parallel = int(raw)
        except ValueError:
            raise ValueError(
                f"${PARALLEL_ENV} must be an integer, got {raw!r}"
            ) from None
    parallel = int(parallel)
    if parallel <= 0:
        return max(1, os.cpu_count() or 1)
    return parallel


# ======================================================================
# Generic process-pool engine
# ======================================================================


@dataclasses.dataclass
class TaskOutcome:
    """What happened to one task of a :meth:`ProcessTaskPool.run` batch."""

    index: int
    status: str  # computed | failed
    attempts: int = 1
    seconds: float = 0.0
    result: object = None
    error: Optional[str] = None
    executor: str = "pool"  # pool | inline
    #: ``spllift-flight/v1`` dump from a dead/failed attempt, when one
    #: could be captured (worker exception, timeout, crash — including a
    #: crash on an earlier attempt of a task that later succeeded).
    flight: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.status == COMPUTED


def _pool_context():
    """The multiprocessing context pool workers run under.

    Module-level so tests can monkeypatch it to raise, forcing the
    inline-degradation path deterministically.
    """
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _worker_sigterm(signum, frame) -> None:
    """Record the signal in the flight ring (the spill makes it visible
    to the parent), then die the default SIGTERM death."""
    obs.flight().record("signal", "SIGTERM")
    obs.flight().close_spill()
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def _child_main(target, args, connection) -> None:
    """Worker-process entry: run the task, ship the outcome back.

    Sends ``("ok", result, telemetry)`` or ``("error", message,
    telemetry)``, where telemetry is the worker's metric snapshot and
    drained span buffer (:func:`repro.obs.runtime.worker_payload`) —
    plus, on error, the worker's flight dump under ``"flight"``; a
    worker that dies without sending anything is classified as a crash
    (and retried).  Marks the process as a worker so fault-injection
    hooks arm and nested ``parallel=None`` resolution stays sequential.
    """
    os.environ[_WORKER_ENV] = "1"
    os.environ[PARALLEL_ENV] = "1"
    obs.activate_worker()
    try:
        signal.signal(signal.SIGTERM, _worker_sigterm)
    except (ValueError, OSError):  # not the main thread (tests)
        pass
    label = getattr(target, "__qualname__", None) or str(target)
    try:
        with obs.tracer().span("pool/task", target=label, run_id=obs.run_id()):
            result = target(*args)
    except BaseException as error:  # noqa: BLE001 — ship, don't swallow
        obs.flight().record(
            "exception", type(error).__name__, message=str(error)
        )
        telemetry = obs.worker_payload()
        telemetry["flight"] = obs.flight_dump(
            f"unhandled exception: {type(error).__name__}"
        )
        try:
            connection.send(
                ("error", f"{type(error).__name__}: {error}", telemetry)
            )
        finally:
            connection.close()
        return
    telemetry = obs.worker_payload()
    try:
        connection.send(("ok", result, telemetry))
    except Exception as error:  # unpicklable result: report, don't crash
        connection.send(("error", f"{type(error).__name__}: {error}", telemetry))
    finally:
        connection.close()


class ProcessTaskPool:
    """Run ``(callable, args)`` tasks in per-task worker processes.

    Semantics (shared with — and now backing — the batch scheduler):

    - **crash → bounded retry** — a worker that dies without reporting
      is re-queued up to ``max_retries`` times, then failed with a
      ``worker crashed`` error;
    - **error → terminal** — a worker that *reports* an exception failed
      deterministically and is not retried;
    - **timeout → terminal** — a task attempt exceeding ``task_timeout``
      seconds is terminated and failed;
    - **inline degradation** — tasks that cannot run in a process at all
      (no usable start method, fork failure with an empty pool,
      unpicklable arguments under spawn) run in-process instead, with
      per-task exception isolation.

    Results come back in submission order regardless of completion
    order.  ``peak_workers`` records the highest number of concurrently
    live workers, i.e. the parallelism actually achieved.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 1,
        use_pool: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.task_timeout = task_timeout
        self.max_retries = max_retries
        self.use_pool = use_pool
        self.peak_workers = 0
        self._crash_flights: Dict[int, dict] = {}

    def run(self, tasks: Sequence[Tuple[object, tuple]]) -> List[TaskOutcome]:
        """Execute all tasks; outcomes in submission order."""
        tasks = list(tasks)
        outcomes: Dict[int, TaskOutcome] = {}
        self.peak_workers = 0
        self._crash_flights: Dict[int, dict] = {}
        obs.ensure_run_id()  # workers inherit it through the environment
        if tasks and self.use_pool:
            # Workers spill their flight rings here for the duration of
            # the batch, so even a SIGKILLed worker leaves evidence.
            spill_dir = tempfile.mkdtemp(prefix="spllift-flight-")
            previous_dir = os.environ.get(FLIGHT_DIR_ENV)
            os.environ[FLIGHT_DIR_ENV] = spill_dir
            try:
                self._run_pool(tasks, outcomes, spill_dir)
            finally:
                if previous_dir is None:
                    os.environ.pop(FLIGHT_DIR_ENV, None)
                else:
                    os.environ[FLIGHT_DIR_ENV] = previous_dir
                shutil.rmtree(spill_dir, ignore_errors=True)
        for index, (target, args) in enumerate(tasks):
            if index not in outcomes:
                outcomes[index] = self._run_inline(index, target, args)
        # A crash on an early attempt still matters when the retry later
        # succeeded — attach the dump so the report shows what died.
        for index, dump in self._crash_flights.items():
            outcome = outcomes.get(index)
            if outcome is not None and outcome.flight is None:
                outcome.flight = dump
        metrics = obs.metrics()
        metrics.gauge_max("pool.peak_workers", self.peak_workers)
        for outcome in outcomes.values():
            metrics.inc(
                "pool.tasks_completed" if outcome.ok else "pool.tasks_failed"
            )
            if outcome.executor == "inline":
                metrics.inc("pool.tasks_inline")
            metrics.observe("pool.task_seconds", outcome.seconds)
        return [outcomes[index] for index in range(len(tasks))]

    # ------------------------------------------------------------------

    def _run_inline(self, index: int, target, args) -> TaskOutcome:
        t0 = time.perf_counter()
        try:
            result = target(*args)
        except Exception as error:  # noqa: BLE001 — per-task isolation
            return TaskOutcome(
                index=index,
                status=FAILED,
                seconds=time.perf_counter() - t0,
                error=f"{type(error).__name__}: {error}",
                executor="inline",
            )
        return TaskOutcome(
            index=index,
            status=COMPUTED,
            seconds=time.perf_counter() - t0,
            result=result,
            executor="inline",
        )

    def _run_pool(
        self, tasks, outcomes: Dict[int, TaskOutcome], spill_dir: str
    ) -> bool:
        """Fan tasks over worker processes; ``False`` means no process
        could be started at all (every unsettled task degrades inline)."""
        try:
            context = _pool_context()
        except Exception:  # noqa: BLE001 — any context failure degrades
            return False
        from multiprocessing.connection import wait as wait_ready

        pending: Deque[Tuple[int, object, tuple, int]] = deque(
            (index, target, args, 1)
            for index, (target, args) in enumerate(tasks)
        )
        # process -> (index, target, args, attempt, connection, start time)
        running: Dict[object, Tuple[int, object, tuple, int, object, float]] = {}

        try:
            while pending or running:
                while pending and len(running) < self.max_workers:
                    index, target, args, attempt = pending.popleft()
                    parent, child = context.Pipe(duplex=False)
                    process = context.Process(
                        target=_child_main,
                        args=(target, args, child),
                        daemon=True,
                    )
                    try:
                        process.start()
                    except (
                        OSError,
                        ValueError,
                        TypeError,
                        AttributeError,
                        pickle.PicklingError,
                    ):
                        # OSError: resource exhaustion; the rest: spawn
                        # contexts pickling unpicklable targets/arguments.
                        parent.close()
                        child.close()
                        if running:
                            # Let in-flight workers drain, then retry.
                            pending.appendleft((index, target, args, attempt))
                            break
                        return False
                    child.close()
                    running[process] = (
                        index,
                        target,
                        args,
                        attempt,
                        parent,
                        time.perf_counter(),
                    )
                    if len(running) > self.peak_workers:
                        self.peak_workers = len(running)
                if not running:
                    continue

                # Block until a result arrives or a worker dies; with a
                # timeout configured, wake at the nearest task deadline
                # (plus a hair, so `elapsed > timeout` is decisive).
                timeout = None
                if self.task_timeout is not None:
                    nearest = min(entry[5] for entry in running.values())
                    timeout = (
                        max(0.0, nearest + self.task_timeout - time.perf_counter())
                        + 0.01
                    )
                waitables: List[object] = []
                for process, entry in running.items():
                    waitables.append(entry[4])
                    waitables.append(process.sentinel)
                ready = set(wait_ready(waitables, timeout))

                finished = []
                for process, (
                    index,
                    target,
                    args,
                    attempt,
                    conn,
                    t0,
                ) in running.items():
                    elapsed = time.perf_counter() - t0
                    if conn in ready or conn.poll(0):
                        status, payload, telemetry = None, None, None
                        try:
                            message = conn.recv()
                            status, payload = message[0], message[1]
                            if len(message) > 2:
                                telemetry = message[2]
                        except (EOFError, OSError):
                            pass
                        obs.absorb_payload(telemetry)
                        obs.tracer().complete(
                            "pool/dispatch",
                            t0 * 1e6,
                            time.perf_counter() * 1e6,
                            tid=process.pid,
                            index=index,
                            attempt=attempt,
                            status=status or "crashed",
                        )
                        process.join(timeout=5.0)
                        if process.is_alive():
                            process.terminate()
                            process.join()
                        if status == "ok":
                            outcomes[index] = TaskOutcome(
                                index=index,
                                status=COMPUTED,
                                attempts=attempt,
                                seconds=elapsed,
                                result=payload,
                            )
                        elif status == "error":
                            outcomes[index] = TaskOutcome(
                                index=index,
                                status=FAILED,
                                attempts=attempt,
                                seconds=elapsed,
                                error=str(payload),
                                flight=telemetry.get("flight")
                                if isinstance(telemetry, dict)
                                else None,
                            )
                        else:  # EOF without a message: a crash
                            self._crash(
                                pending, outcomes, index, target, args,
                                attempt, process, elapsed, spill_dir,
                            )
                    elif process.sentinel in ready or not process.is_alive():
                        process.join()
                        self._crash(
                            pending, outcomes, index, target, args,
                            attempt, process, elapsed, spill_dir,
                        )
                    elif (
                        self.task_timeout is not None
                        and elapsed > self.task_timeout
                    ):
                        process.terminate()  # SIGTERM — the worker's
                        # handler notes the signal in its spill, then dies
                        process.join()
                        obs.metrics().inc("pool.tasks_timeout")
                        outcomes[index] = TaskOutcome(
                            index=index,
                            status=FAILED,
                            attempts=attempt,
                            seconds=elapsed,
                            error=f"timed out after {self.task_timeout:g}s "
                            f"(attempt {attempt})",
                            flight=self._spill_dump(
                                spill_dir,
                                process.pid,
                                f"timeout after {self.task_timeout:g}s "
                                f"(SIGTERM, attempt {attempt})",
                            ),
                        )
                    else:
                        continue
                    finished.append(process)
                for process in finished:
                    entry = running.pop(process)
                    entry[4].close()
        finally:
            for process, entry in running.items():
                process.terminate()
                process.join()
                entry[4].close()
        return True

    def _spill_dump(
        self, spill_dir: str, pid, reason: str
    ) -> Optional[dict]:
        """Reconstruct a dead worker's flight dump from its spill file."""
        if not spill_dir or pid is None:
            return None
        return load_spill(
            os.path.join(spill_dir, f"flight-{pid}.jsonl"), reason
        )

    def _crash(
        self,
        pending,
        outcomes,
        index,
        target,
        args,
        attempt,
        process,
        elapsed,
        spill_dir: str = "",
    ) -> None:
        """A worker died without reporting: retry or fail the task."""
        obs.metrics().inc("pool.tasks_crashed")
        dump = self._spill_dump(
            spill_dir,
            process.pid,
            f"worker crashed (exit code {process.exitcode}, "
            f"attempt {attempt})",
        )
        if dump is not None:
            self._crash_flights[index] = dump
        if attempt <= self.max_retries:
            obs.metrics().inc("pool.task_retries")
            pending.append((index, target, args, attempt + 1))
            return
        outcomes[index] = TaskOutcome(
            index=index,
            status=FAILED,
            attempts=attempt,
            seconds=elapsed,
            error=f"worker crashed (exit code {process.exitcode}) "
            f"after {attempt} attempt(s)",
            flight=dump,
        )


# ======================================================================
# Per-entry-context parallel lifted solve
# ======================================================================


class ParallelSolveError(ValueError):
    """A value that cannot cross the worker boundary."""


def _encode_value(value, stmt_index: Dict[Instruction, int]):
    """Encode a fact (or fact component) as plain, picklable data.

    Facts are arbitrary hashable objects; the codec covers the shapes
    the bundled analyses use — primitives, the 0-fact, instructions (by
    shared index), tuples/frozensets, and ``__slots__``/dataclass value
    objects reconstructed from their public fields.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return ("p", value)
    if isinstance(value, ZeroFact):
        return ("z",)
    if isinstance(value, Instruction):
        return ("s", stmt_index[value])
    if isinstance(value, tuple):
        return ("t", tuple(_encode_value(item, stmt_index) for item in value))
    if isinstance(value, frozenset):
        items = sorted(
            (_encode_value(item, stmt_index) for item in value), key=repr
        )
        return ("f", tuple(items))
    cls = type(value)
    if dataclasses.is_dataclass(value):
        args = [getattr(value, f.name) for f in dataclasses.fields(value)]
    elif getattr(cls, "__slots__", None) is not None:
        args = [
            getattr(value, name)
            for name in cls.__slots__
            if not name.startswith("_")
        ]
    else:
        raise ParallelSolveError(f"cannot serialize fact {value!r}")
    return (
        "o",
        cls.__module__,
        cls.__qualname__,
        tuple(_encode_value(arg, stmt_index) for arg in args),
    )


def _decode_value(payload, stmts: Sequence[Instruction]):
    tag = payload[0]
    if tag == "p":
        return payload[1]
    if tag == "z":
        return ZERO
    if tag == "s":
        return stmts[payload[1]]
    if tag == "t":
        return tuple(_decode_value(item, stmts) for item in payload[1])
    if tag == "f":
        return frozenset(_decode_value(item, stmts) for item in payload[1])
    if tag == "o":
        target = importlib.import_module(payload[1])
        for part in payload[2].split("."):
            target = getattr(target, part)
        return target(*(_decode_value(arg, stmts) for arg in payload[3]))
    raise ParallelSolveError(f"unknown fact payload tag {tag!r}")


class _SeedSubsetProblem:
    """A lifted problem restricted to a subset of its seed units.

    Everything except the seeds delegates to the wrapped problem, so a
    partition's solver sees the full program — it just starts fewer
    tabulation contexts.
    """

    def __init__(self, problem, units) -> None:
        self._problem = problem
        self._units = units

    def __getattr__(self, name):
        return getattr(self._problem, name)

    def initial_seeds(self):
        seeds: Dict[Instruction, set] = {}
        for stmt, fact in self._units:
            seeds.setdefault(stmt, set()).add(fact)
        return seeds

    def initial_seed_values(self):
        full = self._problem.initial_seed_values()
        return {
            stmt: {fact: full[stmt][fact] for fact in facts}
            for stmt, facts in self.initial_seeds().items()
        }


def _seed_units(problem) -> List[Tuple[Instruction, object]]:
    """The independent tabulation contexts: one (statement, fact) seed
    unit each, in deterministic seed order."""
    units = []
    for stmt, facts in problem.initial_seeds().items():
        for fact in sorted(facts, key=repr):
            units.append((stmt, fact))
    return units


def _solve_partition_task(
    problem, units, worklist_order, order_seed, stmt_index
) -> Dict[str, object]:
    """Worker body: solve one seed partition, return encoded values."""
    from repro.ide.solver import IDESolver

    solver = IDESolver(
        _SeedSubsetProblem(problem, units),
        worklist_order=worklist_order,
        order_seed=order_seed,
    )
    ide_results = solver.solve()
    entries = []
    constraints: List[object] = []
    constraint_ref: Dict[object, int] = {}
    for (stmt, fact), value in ide_results.items():
        ref = constraint_ref.get(value)
        if ref is None:
            ref = constraint_ref[value] = len(constraints)
            constraints.append(value)
        entries.append((stmt_index[stmt], _encode_value(fact, stmt_index), ref))
    return {
        "entries": entries,
        "constraints": encode_constraints(problem.system, constraints),
        "stats": dict(solver.stats),
    }


def solve_lifted_parallel(
    spllift,
    worklist_order: Optional[str] = None,
    order_seed: int = 0,
    workers: int = 2,
):
    """Solve ``spllift.problem`` across ``workers`` processes.

    Returns ``(IDEResults, stats)`` on success, or ``None`` when the
    solve cannot be partitioned (fewer than two seed units) or any
    partition failed — the caller then runs the sequential solve.
    """
    problem = spllift.problem
    system = spllift.system
    units = _seed_units(problem)
    if len(units) < 2:
        return None
    partition_count = min(workers, len(units))
    partitions: List[List[Tuple[Instruction, object]]] = [
        [] for _ in range(partition_count)
    ]
    for position, unit in enumerate(units):
        partitions[position % partition_count].append(unit)

    stmts = tuple(problem.icfg.reachable_instructions())
    stmt_index = {stmt: position for position, stmt in enumerate(stmts)}

    pool = ProcessTaskPool(max_workers=workers, max_retries=0)
    try:
        results = pool.run(
            [
                (
                    _solve_partition_task,
                    (problem, partition, worklist_order, order_seed, stmt_index),
                )
                for partition in partitions
            ]
        )
    except ParallelSolveError:
        return None
    if any(not outcome.ok for outcome in results):
        return None

    # Deterministic merge: partitions in submission order, entries in
    # each partition's (deterministic) solve order, duplicates joined.
    values: Dict[Tuple[Instruction, object], object] = {}
    merged_stats: Dict[str, object] = {}
    with obs.tracer().span("spllift/parallel/merge", partitions=partition_count):
        for outcome in results:
            payload = outcome.result
            decoded = decode_constraints(system, payload["constraints"])
            for stmt_ref, fact_payload, ref in payload["entries"]:
                key = (stmts[stmt_ref], _decode_value(fact_payload, stmts))
                old = values.get(key)
                value = decoded[ref]
                values[key] = value if old is None else (old | value)
            for name, count in payload["stats"].items():
                if isinstance(count, bool) or not isinstance(count, int):
                    continue
                merged_stats[name] = merged_stats.get(name, 0) + count
    merged_stats["worklist_order"] = results[0].result["stats"].get(
        "worklist_order"
    )
    merged_stats["parallel_workers"] = max(1, pool.peak_workers)
    merged_stats["parallel_partitions"] = partition_count

    from repro.ide.solver import IDEResults

    return (
        IDEResults(values, problem.top_value(), problem.zero),
        merged_stats,
    )
