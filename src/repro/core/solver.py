"""The SPLLIFT facade: run an unmodified IFDS analysis over a whole SPL.

Usage::

    icfg = ICFG.for_entry(lower_program(parse_program(source)))
    analysis = TaintAnalysis(icfg)          # a plain IFDS problem
    spllift = SPLLift(analysis, feature_model=model)
    results = spllift.solve()
    results.constraint_for(stmt, fact)      # e.g. !F & G & !H

In cases where the original analysis reports that fact ``d`` may hold at
statement ``s``, the lifted analysis reports the *feature constraint* under
which ``d`` may hold at ``s`` (Section 1 of the paper).  As a side effect
the 0-fact's value gives each statement's reachability constraint
(Section 3.3).
"""

from __future__ import annotations

import hashlib
import sys
import time
from typing import Dict, Generic, Hashable, List, Optional, TypeVar, Union

from repro.constraints.base import Constraint, ConstraintSystem, as_assignment
from repro.constraints.bddsystem import BddConstraintSystem
from repro.core.lifting import FM_MODES, LiftedProblem
from repro.featuremodel.batory import to_constraint
from repro.featuremodel.model import FeatureModel
from repro.ide.solver import IDEResults, IDESolver
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import Instruction
from repro.obs import runtime as obs

__all__ = ["SPLLift", "SPLLiftResults"]

D = TypeVar("D", bound=Hashable)


class SPLLiftResults(Generic[D]):
    """Feature constraints per (statement, fact)."""

    def __init__(
        self,
        ide_results: IDEResults[D, Constraint],
        system: ConstraintSystem,
        feature_model: Constraint,
        stats: Dict[str, int],
        solve_seconds: float,
    ) -> None:
        self._ide = ide_results
        self.system = system
        self.feature_model = feature_model
        self.stats = stats
        self.solve_seconds = solve_seconds

    def constraint_for(self, stmt: Instruction, fact: D) -> Constraint:
        """The constraint under which ``fact`` may hold just before
        ``stmt`` (``false`` when it cannot hold in any product)."""
        return self._ide.value_at(stmt, fact)

    def holds_in(self, stmt: Instruction, fact: D, configuration, over=None) -> bool:
        """Does ``fact`` hold at ``stmt`` for the given configuration?

        With ``over`` given, ``configuration`` is interpreted as a *partial*
        configuration over exactly the features in ``over`` (e.g. the
        reachable features); the check then asks whether the constraint is
        satisfiable by *some* product agreeing with it — which is how the
        paper compares against A2 runs over reachable-feature
        configurations.  Without ``over``, features outside the
        configuration are treated as disabled.
        """
        constraint = self.constraint_for(stmt, fact)
        if constraint.is_false:
            return False
        if over is None:
            return constraint.satisfied_by(configuration)
        assignment = as_assignment(configuration, over)
        cube = self.system.and_all(
            self.system.var(name) if value else ~self.system.var(name)
            for name, value in assignment.items()
        )
        return not (constraint & cube).is_false

    def finding_constraint(self, stmt: Instruction, fact: D) -> Constraint:
        """The constraint under which a *finding* at ``stmt`` manifests:
        the fact must reach the statement **and** the statement itself
        must be enabled.  Use this (not :meth:`constraint_for`) when the
        statement is the event — a dereference, a print, a use."""
        constraint = self.constraint_for(stmt, fact)
        if stmt.annotation is None or constraint.is_false:
            return constraint
        return constraint & self.system.from_formula(stmt.annotation)

    def config_is_valid(self, configuration, over) -> bool:
        """Is this partial configuration (over the features ``over``)
        extendable to a product satisfying the feature model?"""
        assignment = as_assignment(configuration, over)
        cube = self.system.and_all(
            self.system.var(name) if value else ~self.system.var(name)
            for name, value in assignment.items()
        )
        return not (self.feature_model & cube).is_false

    def results_at(
        self, stmt: Instruction, include_zero: bool = False
    ) -> Dict[D, Constraint]:
        """All facts with a satisfiable constraint at ``stmt``."""
        return self._ide.results_at(stmt, include_zero=include_zero)

    def reachability_of(self, stmt: Instruction) -> Constraint:
        """The constraint under which ``stmt`` is reachable at all — the
        0-fact's value (Section 3.3 of the paper)."""
        return self._ide.value_at(stmt, ZERO)

    def items(self):
        """Iterate ``((stmt, fact), constraint)`` pairs."""
        return self._ide.items()

    # ------------------------------------------------------------------
    # Canonical serialization (the analysis service's exchange format)
    # ------------------------------------------------------------------

    def result_lines(self) -> List[str]:
        """Canonical, order-independent serialization of the solution.

        One ``location|statement|fact|constraint`` line per (statement,
        fact) pair whose constraint is satisfiable, sorted.  Statement
        locations, statement/fact renderings and constraint strings are
        all deterministic for a given subject, so two solves of the same
        job — in different processes, on different machines — produce the
        same lines.  This is what the result store persists and what the
        sha256 :meth:`result_digest` is computed over.
        """
        lines = []
        for (stmt, fact), constraint in self._ide.items():
            if constraint.is_false:
                continue
            lines.append(f"{stmt.location}|{stmt}|{fact!r}|{constraint}")
        lines.sort()
        return lines

    def result_digest(self) -> str:
        """sha256 hex digest of :meth:`result_lines` — the bit-identity
        check used by the regression protocol and the warm-cache verify."""
        payload = "\n".join(self.result_lines()).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


class SPLLift(Generic[D]):
    """Lift and solve an IFDS analysis over a software product line."""

    def __init__(
        self,
        analysis: IFDSProblem[D],
        feature_model: Optional[Union[Constraint, FeatureModel]] = None,
        system: Optional[ConstraintSystem] = None,
        fm_mode: str = "edge",
        reorder: Optional[str] = None,
    ) -> None:
        """
        Parameters
        ----------
        analysis:
            An *unmodified* IFDS problem over the product line's ICFG.
        feature_model:
            The product line's feature model — either an already-compiled
            :class:`Constraint` or a :class:`FeatureModel` (translated via
            Batory's encoding).  ``None`` means no model (all products).
        system:
            The constraint system; defaults to a fresh BDD-backed one.
        fm_mode:
            One of ``"edge"`` (paper's choice), ``"seed"`` (rejected
            variant) or ``"ignore"`` — see Section 4.2.
        reorder:
            Dynamic BDD variable-reordering policy (``"off"``/``"sift"``);
            ``None`` keeps the constraint system's configured policy (off
            by default, keeping Tables 1–3 bit-identical).
        """
        self.system = system if system is not None else BddConstraintSystem()
        if feature_model is None:
            fm_constraint = self.system.true
        elif isinstance(feature_model, FeatureModel):
            fm_constraint = to_constraint(feature_model, self.system)
        else:
            fm_constraint = feature_model
        self.feature_model = fm_constraint
        if fm_mode not in FM_MODES:
            raise ValueError(f"fm_mode must be one of {FM_MODES}, got {fm_mode!r}")
        self.fm_mode = fm_mode
        self.problem = LiftedProblem(
            analysis, self.system, fm_constraint, fm_mode=fm_mode, reorder=reorder
        )
        self.analysis = analysis

    def solve(
        self,
        worklist_order: Optional[str] = None,
        order_seed: int = 0,
        parallel: Optional[int] = None,
        summaries: Optional[object] = None,
        engine: Optional[str] = None,
    ) -> SPLLiftResults[D]:
        """Run the IDE solver on the lifted problem (one single pass).

        ``worklist_order``/``order_seed`` select the phase-I iteration
        order (see :class:`IDESolver`); the fixed point — and therefore
        the result digest — is order-independent.

        ``parallel`` (default ``$SPLLIFT_PARALLEL``, else 1) partitions
        phase-I tabulation by entry context across worker processes and
        joins the partial solutions deterministically; results are
        bit-identical to the sequential solve, which also serves as the
        fallback whenever the solve cannot be partitioned (see
        :mod:`repro.core.parallel`).

        ``summaries`` arms incremental re-analysis: a
        :class:`~repro.ide.summaries.SummaryCache` whose stored
        per-method summaries are injected for content-identical methods
        and refreshed for the rest (see ``summary_cache_for``).  An
        armed solve runs sequentially — injection rewires one solver's
        tables in place, which does not compose with the by-seed
        partitioning — so ``parallel`` beyond 1 is downgraded with a
        warning and the stats report the achieved ``parallel_workers``;
        results stay bit-identical either way.

        ``engine`` selects the evaluation engine (default
        ``$SPLLIFT_ENGINE``, else ``tabulate``): ``"tabulate"`` is the
        two-phase IDE tabulation above; ``"datalog"`` compiles the
        lifted problem to constraint-annotated Datalog rules and runs a
        semi-naive fixpoint (:mod:`repro.datalog`) — an independent
        engine whose results are bit-identical.  The datalog engine is
        sequential and does not support ``summaries``.
        """
        from repro.core.parallel import resolve_parallel
        from repro.datalog import resolve_engine

        engine = resolve_engine(engine)
        if engine == "datalog" and summaries is not None:
            raise ValueError(
                "engine 'datalog' does not support incremental summaries "
                "(use the tabulation engine for warm solves)"
            )
        workers = resolve_parallel(parallel)
        if workers > 1 and (summaries is not None or engine == "datalog"):
            reason = (
                "incremental summaries force a sequential solve"
                if summaries is not None
                else "the datalog engine is sequential"
            )
            print(
                f"spllift: warning: {reason}; "
                f"ignoring parallel={workers} (running 1 worker)",
                file=sys.stderr,
            )
            workers = 1
        # Live progress gets the BDD substrate's node count alongside the
        # solver's own fields; set here because only this layer knows the
        # constraint system.
        progress = obs.progress()
        if progress is not None and hasattr(self.system, "solver_stats"):
            system = self.system
            progress.extra = lambda: {
                "bdd_nodes": system.solver_stats()["bdd_nodes"]
            }
        with obs.tracer().span(
            "spllift/solve", workers=workers, fm_mode=self.fm_mode, engine=engine
        ):
            if engine == "datalog":
                results = self._solve_datalog()
            else:
                results = self._solve_timed(
                    worklist_order, order_seed, workers, summaries
                )
        self._publish_bdd_metrics()
        return results

    def _solve_datalog(self) -> SPLLiftResults[D]:
        from repro.datalog import DatalogSolver

        solver = DatalogSolver(self.problem)
        started = time.perf_counter()
        ide_results = solver.solve()
        elapsed = time.perf_counter() - started
        stats: Dict[str, int] = {"engine": "datalog"}
        stats.update(solver.stats)
        stats.update({"parallel_workers": 1, "parallel_partitions": 1})
        return SPLLiftResults(
            ide_results, self.system, self.feature_model, stats, elapsed
        )

    def _solve_timed(
        self,
        worklist_order: Optional[str],
        order_seed: int,
        workers: int,
        summaries: Optional[object] = None,
    ) -> SPLLiftResults[D]:
        from repro.core.parallel import solve_lifted_parallel

        started = time.perf_counter()
        if workers > 1:
            merged = solve_lifted_parallel(
                self,
                worklist_order=worklist_order,
                order_seed=order_seed,
                workers=workers,
            )
            if merged is not None:
                ide_results, stats = merged
                return SPLLiftResults(
                    ide_results,
                    self.system,
                    self.feature_model,
                    stats,
                    time.perf_counter() - started,
                )
        solver = IDESolver(
            self.problem,
            worklist_order=worklist_order,
            order_seed=order_seed,
            summaries=summaries,
        )
        started = time.perf_counter()
        ide_results = solver.solve()
        elapsed = time.perf_counter() - started
        return SPLLiftResults(
            ide_results,
            self.system,
            self.feature_model,
            dict(solver.stats),
            elapsed,
        )

    def _publish_bdd_metrics(self) -> None:
        """Sample the BDD substrate into the registry (gauges: levels, not
        increments — `solver_stats` is cumulative over the system's life)."""
        if not hasattr(self.system, "solver_stats"):
            return
        stats = self.system.solver_stats()
        metrics = obs.metrics()
        for name, value in stats.items():
            metrics.gauge_max(f"bdd.{name}", value)
        hits = stats.get("bdd_apply_cache_hits", 0)
        calls = hits + stats.get("bdd_apply_cache_misses", 0)
        if calls:
            metrics.gauge("bdd.apply_hit_ratio", hits / calls)
