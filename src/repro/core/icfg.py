"""The feature-annotated (SPL-aware) control-flow graph.

SPLLIFT analyzes the *unpreprocessed* product line, so control flow must
account for statements that may be disabled:

- a disabled **unconditional branch** (``goto``; Figure 4b) does not
  execute — control *falls through* to the textually next statement, so an
  annotated ``goto`` gains a synthetic fall-through successor;
- a disabled **conditional branch** (Figure 4c) falls through, which is
  already one of its successors;
- a disabled **return** falls through as well (it is an unconditional
  control transfer); the trailing return of every method is unannotated,
  so there is always something to fall through to;
- all other statements keep their successors (a disabled normal statement
  simply computes the identity).

Both SPLLIFT and the configuration-specific baseline ``A2`` run on this
graph (Section 6.1: "A2 operates on the feature-annotated control-flow
graph just as SPLLIFT").
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ir.icfg import ICFG
from repro.ir.instructions import Goto, If, Instruction, Return

__all__ = ["LiftedICFG"]


class LiftedICFG(ICFG):
    """An ICFG whose successor relation accounts for disabled statements."""

    def __init__(self, base: ICFG) -> None:
        # Reuse the base graph's call graph and successor map; do not
        # recompute. (Deliberately not calling super().__init__.)
        self.program = base.program
        self.entry_points = base.entry_points
        self.call_graph = base.call_graph
        self._base = base
        self._successors = dict(base._successors)
        for method in base.reachable_methods:
            for instruction in method.instructions:
                if instruction.annotation is None:
                    continue
                if isinstance(instruction, Goto):
                    fall_through = method.instructions[instruction.index + 1]
                    target = method.instructions[instruction.target]
                    successors = (
                        (target,)
                        if fall_through is target
                        else (fall_through, target)
                    )
                    self._successors[instruction] = successors
                elif isinstance(instruction, Return):
                    fall_through = method.instructions[instruction.index + 1]
                    self._successors[instruction] = (fall_through,)

    # ------------------------------------------------------------------
    # Classification helpers used by the lifted flow functions
    # ------------------------------------------------------------------

    @staticmethod
    def fall_through_of(instruction: Instruction) -> Optional[Instruction]:
        """The textually next statement (None at the end of a method)."""
        instructions = instruction.method.instructions
        if instruction.index + 1 < len(instructions):
            return instructions[instruction.index + 1]
        return None

    @staticmethod
    def branch_target_of(instruction: Instruction) -> Optional[Instruction]:
        """The explicit branch target of an If/Goto (None otherwise)."""
        if isinstance(instruction, (If, Goto)):
            return instruction.method.instructions[instruction.target]
        return None
