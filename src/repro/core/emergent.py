"""Emergent interfaces: feature-dependency summaries from lifted results.

Section 7 of the paper names *emergent interfaces* (Ribeiro et al.,
SPLASH'10) as a key application: "These interfaces emerge on demand to
give support for specific SPL maintenance tasks and thus help developers
understand and manage dependencies between features. ... In particular,
the performance improvements we obtain are very important to make
emergent interfaces useful in practice."

This module computes such interfaces from SPLLIFT reaching-definitions
results: for a selected feature (or any feature constraint), which values
defined inside the feature's code are used outside of it (the feature
*provides* them), and which outside definitions are used inside (the
feature *requires* them) — each dependency with the exact feature
constraint under which it exists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analyses.facts import DefFact
from repro.analyses.reaching_definitions import ReachingDefinitionsAnalysis
from repro.analyses.uninitialized_variables import uses_of
from repro.constraints.base import Constraint
from repro.core.solver import SPLLift, SPLLiftResults
from repro.ir.icfg import ICFG
from repro.ir.instructions import Instruction

__all__ = ["FeatureDependency", "EmergentInterface", "compute_emergent_interface"]


@dataclass(frozen=True)
class FeatureDependency:
    """One data-flow dependency crossing the feature boundary."""

    definition: Instruction
    use: Instruction
    variable: str
    constraint: Constraint

    def __str__(self) -> str:
        return (
            f"{self.definition.location} defines {self.variable!r} "
            f"used at {self.use.location}  [iff {self.constraint}]"
        )


@dataclass
class EmergentInterface:
    """The interface of one feature: provided and required data flows."""

    feature: str
    provides: List[FeatureDependency]
    requires: List[FeatureDependency]

    def __str__(self) -> str:
        lines = [f"emergent interface of feature {self.feature!r}:"]
        lines.append(f"  provides ({len(self.provides)}):")
        for dep in self.provides:
            lines.append(f"    {dep}")
        lines.append(f"  requires ({len(self.requires)}):")
        for dep in self.requires:
            lines.append(f"    {dep}")
        return "\n".join(lines)


def _mentions_feature(stmt: Instruction, feature: str) -> bool:
    return stmt.annotation is not None and feature in stmt.annotation.variables()


def compute_emergent_interface(
    icfg: ICFG,
    feature: str,
    feature_model=None,
    results: Optional[SPLLiftResults] = None,
) -> EmergentInterface:
    """Compute the emergent interface of ``feature``.

    Runs (or reuses) a lifted reaching-definitions analysis, then
    classifies every definition→use pair whose constraint is satisfiable
    by which side of the feature boundary each end sits on.
    """
    if results is None:
        analysis = ReachingDefinitionsAnalysis(icfg)
        results = SPLLift(analysis, feature_model=feature_model).solve()
    system = results.system
    provides: List[FeatureDependency] = []
    requires: List[FeatureDependency] = []
    seen = set()
    for use_stmt in icfg.reachable_instructions():
        used_names = set(uses_of(use_stmt))
        if not used_names:
            continue
        use_condition = (
            system.true
            if use_stmt.annotation is None
            else system.from_formula(use_stmt.annotation)
        )
        for fact, reach_constraint in results.results_at(use_stmt).items():
            if not isinstance(fact, DefFact) or fact.name not in used_names:
                continue
            # The dependency exists when the definition reaches the use
            # *and* the use itself is enabled.
            constraint = reach_constraint & use_condition
            if constraint.is_false:
                continue
            definition = fact.site
            def_inside = _mentions_feature(definition, feature)
            use_inside = _mentions_feature(use_stmt, feature)
            if def_inside == use_inside:
                continue  # not a boundary crossing
            key = (definition, use_stmt, fact.name, def_inside)
            if key in seen:
                continue
            seen.add(key)
            dependency = FeatureDependency(
                definition=definition,
                use=use_stmt,
                variable=fact.name,
                constraint=constraint,
            )
            if def_inside:
                provides.append(dependency)
            else:
                requires.append(dependency)
    provides.sort(key=lambda d: (d.definition.location, d.use.location))
    requires.sort(key=lambda d: (d.definition.location, d.use.location))
    return EmergentInterface(feature=feature, provides=provides, requires=requires)
