"""The SPLLIFT lifting: any IFDS problem becomes an IDE problem over
feature constraints — without changing a line of the original analysis.

Section 3 of the paper.  For a statement ``s`` annotated with feature
constraint ``F``, the lifted flow function is ``f_LIFT = f_F ∨ f_¬F``:

- **enabled case** ``f_F``: a copy of the statement's original flow
  function with every edge labeled ``F``;
- **disabled case** ``f_¬F``:
  - the identity labeled ``¬F`` for normal statements and call-to-return
    edges (Figure 4a),
  - flow only along the *fall-through* branch for disabled conditional and
    unconditional branches (Figures 4b, 4c),
  - the **kill-all** function for call and return edges (Figure 4d) — an
    identity there would smuggle flow into a callee whose call never
    happens.

Edges annotated ``F`` in one case and ``¬F`` in the other are implicitly
annotated ``true``.  Edge labels become IDE edge functions ``λc. c ∧ F``;
composition along a path conjoins, merging paths disjoins (Section 3.4).
0-edges are conditionalized like any other edge, so the analysis computes
reachability constraints as a side effect (Section 3.5).

With a feature model ``m`` (Section 4.2), every edge label ``f`` becomes
``f ∧ m``; contradictions reduce to ``false`` (= the all-top edge
function), which the IDE solver drops — terminating infeasible paths
already during the jump-function construction phase.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, TypeVar

from repro.constraints.base import Constraint, ConstraintSystem
from repro.constraints.formula import Formula
from repro.core.icfg import LiftedICFG
from repro.ide.edgefunctions import AllTop, EdgeFunction
from repro.ide.problem import IDEProblem
from repro.ifds.flowfunctions import FlowFunction, Identity, Union
from repro.ifds.problem import IFDSProblem
from repro.ir.instructions import Goto, If, Instruction, Return
from repro.ir.program import IRMethod

__all__ = ["ConstraintEdge", "EdgeFunctionTable", "LiftedProblem", "FM_MODES"]

D = TypeVar("D", bound=Hashable)

#: How the feature model is taken into account (Section 4.2):
#: - "edge": conjoin the model onto every edge label (the paper's choice —
#:   early termination already in the construction phase);
#: - "seed": keep edges model-free, start the value phase from the model
#:   constraint instead of true (the paper's rejected first attempt);
#: - "ignore": do not use the feature model at all.
FM_MODES = ("edge", "seed", "ignore")


class ConstraintEdge(EdgeFunction[Constraint]):
    """The edge function ``λc. c ∧ A`` for a feature constraint ``A``.

    This family is closed under the IDE operations — composition conjoins
    and join disjoins the constants — and equality is constant time thanks
    to the canonical BDD representation.

    Edges created through an :class:`EdgeFunctionTable` are *flyweights*:
    one unique instance per distinct constraint, so semantic equality
    degenerates to ``a is b`` and compose/join results are memoized.
    Directly constructed edges (no table) keep the original allocating
    behaviour — the table is an optimization, not a semantic change.
    """

    __slots__ = ("constraint", "_table", "is_top", "_memo_compose", "_memo_join")

    def __init__(
        self, constraint: Constraint, _table: "EdgeFunctionTable" = None
    ) -> None:
        self.constraint = constraint
        self._table = _table
        # λc. c ∧ false maps everything to top ("no flow"): precomputing the
        # flag lets the solver drop such edges with one attribute load.
        self.is_top = constraint.is_false
        # Per-edge memo tables keyed on the *other* interned operand
        # (identity hash — interning makes instances unique per constraint).
        # One dict probe replaces the old table-level id-pair keys, and both
        # operands record the result so the commutative mirror still hits.
        if _table is not None:
            self._memo_compose: Dict["ConstraintEdge", "ConstraintEdge"] = {}
            self._memo_join: Dict["ConstraintEdge", "ConstraintEdge"] = {}

    def compute_target(self, source: Constraint) -> Constraint:
        return source & self.constraint

    def compose_with(self, second: EdgeFunction[Constraint]) -> EdgeFunction[Constraint]:
        if isinstance(second, ConstraintEdge):
            table = self._table
            if table is not None and second._table is table:
                memo = self._memo_compose
                cached = memo.get(second)
                if cached is not None:
                    table.compose_hits += 1
                    return cached
                table.compose_misses += 1
                result = table.edge(self.constraint & second.constraint)
                memo[second] = result
                second._memo_compose[self] = result
                return result
            return ConstraintEdge(self.constraint & second.constraint)
        if isinstance(second, AllTop):
            return second
        raise TypeError(f"cannot compose ConstraintEdge with {second!r}")

    def join_with(self, other: EdgeFunction[Constraint]) -> EdgeFunction[Constraint]:
        if other is self:
            return self
        if isinstance(other, ConstraintEdge):
            table = self._table
            if table is not None and other._table is table:
                memo = self._memo_join
                cached = memo.get(other)
                if cached is not None:
                    table.join_hits += 1
                    return cached
                table.join_misses += 1
                result = table.edge(self.constraint | other.constraint)
                memo[other] = result
                other._memo_join[self] = result
                return result
            return ConstraintEdge(self.constraint | other.constraint)
        if isinstance(other, AllTop):
            return self
        raise TypeError(f"cannot join ConstraintEdge with {other!r}")

    def equal_to(self, other: EdgeFunction[Constraint]) -> bool:
        if other is self:
            return True
        if isinstance(other, ConstraintEdge):
            if self._table is not None and other._table is self._table:
                # Flyweights: distinct instances mean distinct constraints.
                return False
            return other.constraint == self.constraint
        if isinstance(other, AllTop):
            return self.constraint.is_false
        return False

    def __repr__(self) -> str:
        return f"λc. c ∧ ({self.constraint})"


class EdgeFunctionTable:
    """Per-problem flyweight intern table and memoized constraint algebra.

    The paper attributes SPLLIFT's constant factors to cheap canonical
    constraint operations (Section 5): equality and ``is false`` are
    constant time on BDDs, and conjunction/disjunction are memoized.  This
    table provides the same dividends at the edge-function level:

    - :meth:`edge` interns one unique :class:`ConstraintEdge` per distinct
      constraint, so the solver's fixed-point check is ``a is b``;
    - :meth:`compose`/:meth:`join` memoize results keyed on the operand
      *identities* (valid precisely because operands are interned), with
      commutative-key normalization — ``A ∧ B`` and ``B ∧ A`` share one
      entry.  Underneath, the constraint operation itself still hits the
      BDD manager's apply cache; this cache avoids even that descent plus
      the re-wrapping on repeat compositions along hot paths.

    Hit/miss counters are exported into ``IDESolver.stats`` via
    :meth:`LiftedProblem.edge_cache_stats`.
    """

    __slots__ = (
        "system",
        "_edges",
        "compose_hits",
        "compose_misses",
        "join_hits",
        "join_misses",
    )

    def __init__(self, system: ConstraintSystem) -> None:
        self.system = system
        self._edges: Dict[Constraint, ConstraintEdge] = {}
        self.compose_hits = 0
        self.compose_misses = 0
        self.join_hits = 0
        self.join_misses = 0

    @property
    def stats(self) -> Dict[str, int]:
        """Cache counters in the legacy dict shape."""
        return {
            "compose_cache_hits": self.compose_hits,
            "compose_cache_misses": self.compose_misses,
            "join_cache_hits": self.join_hits,
            "join_cache_misses": self.join_misses,
        }

    def edge(self, constraint: Constraint) -> ConstraintEdge:
        """The unique interned edge function ``λc. c ∧ constraint``."""
        interned = self._edges.get(constraint)
        if interned is None:
            interned = ConstraintEdge(constraint, _table=self)
            self._edges[constraint] = interned
        return interned

    @property
    def interned_count(self) -> int:
        return len(self._edges)

    # Both operations are commutative; each interned edge carries its own
    # memo dict keyed on the other operand (identity hash), and results are
    # recorded under both operands so the mirrored pair still hits.

    def compose(self, first: ConstraintEdge, second: ConstraintEdge) -> ConstraintEdge:
        return first.compose_with(second)

    def join(self, first: ConstraintEdge, second: ConstraintEdge) -> ConstraintEdge:
        return first.join_with(second)

    def cache_stats(self) -> Dict[str, int]:
        """Counters in the shape ``IDESolver.stats`` reports them."""
        stats = self.stats
        stats["interned_edges"] = len(self._edges)
        return stats


class LiftedProblem(IDEProblem[D, Constraint]):
    """The automatic IFDS→IDE conversion (the ``SPLLIFT`` transformation).

    Wraps an unmodified :class:`~repro.ifds.problem.IFDSProblem`; the
    wrapped analysis' flow functions are consulted for the enabled case of
    every statement, and this class supplies the Figure 4 rules plus the
    constraint edge functions.
    """

    def __init__(
        self,
        inner: IFDSProblem[D],
        system: ConstraintSystem,
        feature_model: Optional[Constraint] = None,
        fm_mode: str = "edge",
        reorder: Optional[str] = None,
    ) -> None:
        if fm_mode not in FM_MODES:
            raise ValueError(f"fm_mode must be one of {FM_MODES}, got {fm_mode!r}")
        icfg = inner.icfg
        if not isinstance(icfg, LiftedICFG):
            icfg = LiftedICFG(icfg)
            inner.icfg = icfg
        super().__init__(icfg)
        self.inner = inner
        self.system = system
        self.fm_mode = fm_mode
        self.feature_model = (
            feature_model if feature_model is not None else system.true
        )
        self._edge_label_fm = (
            self.feature_model if fm_mode == "edge" else system.true
        )
        self._formula_cache: Dict[Formula, Constraint] = {}
        self._declare_annotation_variables()
        self._inner_flow_cache: Dict[tuple, object] = {}
        self.edge_table = EdgeFunctionTable(system)
        self._true_edge = self.edge_table.edge(system.true & self._edge_label_fm)
        self._seed_edge = self.edge_table.edge(system.true)
        if reorder is not None and hasattr(system, "configure_reorder"):
            # Seed the sifting order with the feature-model variables, which
            # appear in (nearly) every constraint of the lifted solve.
            first: tuple = ()
            fm = self.feature_model
            if hasattr(fm, "node") and hasattr(system, "manager"):
                first = tuple(sorted(system.manager.support(fm.node)))
            system.configure_reorder(reorder, first=first)

    # ------------------------------------------------------------------
    # Constraint helpers
    # ------------------------------------------------------------------

    def _declare_annotation_variables(self) -> None:
        """Declare every annotation variable up front, in program order.

        The solver would otherwise declare variables lazily in worklist
        order, which makes the BDD variable order — and therefore the
        rendered constraint strings — depend on how the solve was
        scheduled whenever a feature is missing from the feature model.
        Declaring deterministically (feature model first, then
        annotations in statement order, alphabetical within a formula)
        is what lets a parallel solve's partitions, its parent, and the
        sequential reference all render bit-identical constraints.
        """
        from collections import deque

        icfg = self.icfg
        # Entry-first breadth-first method order — the order the solver
        # itself discovers code, so pre-declaration reproduces the
        # variable order lazy declaration produced for default solves.
        seen = set()
        queue = deque(icfg.entry_points)
        ordered = []
        while queue:
            method = queue.popleft()
            if method in seen:
                continue
            seen.add(method)
            ordered.append(method)
            for stmt in method.instructions:
                if icfg.is_call(stmt):
                    queue.extend(icfg.callees_of(stmt))
        ordered.extend(m for m in icfg.reachable_methods if m not in seen)
        var = self.system.var
        for method in ordered:
            for stmt in method.instructions:
                formula = stmt.annotation
                if formula is not None:
                    for name in sorted(formula.variables()):
                        var(name)

    def constraint_of(self, stmt: Instruction) -> Constraint:
        """The statement's feature annotation as a constraint (``true`` if
        unannotated)."""
        formula = stmt.annotation
        if formula is None:
            return self.system.true
        cached = self._formula_cache.get(formula)
        if cached is None:
            cached = self.system.from_formula(formula)
            self._formula_cache[formula] = cached
        return cached

    def _edge(self, label: Constraint) -> ConstraintEdge:
        """The interned edge function for label ``f``, implicitly conjoined
        with the feature model ``m`` in "edge" mode (Section 4.2)."""
        return self.edge_table.edge(label & self._edge_label_fm)

    def edge_cache_stats(self) -> Dict[str, int]:
        """Edge-algebra and BDD substrate counters (merged into
        ``IDESolver.stats``)."""
        stats = self.edge_table.cache_stats()
        solver_stats = getattr(self.system, "solver_stats", None)
        if solver_stats is not None:
            stats.update(solver_stats())
        return stats

    # ------------------------------------------------------------------
    # Value lattice
    # ------------------------------------------------------------------

    def top_value(self) -> Constraint:
        return self.system.false

    def bottom_value(self) -> Constraint:
        return self.system.true

    def join_values(self, left: Constraint, right: Constraint) -> Constraint:
        return left | right

    def join_all_values(self, values) -> Constraint:
        # Batch constraint join: one n-ary disjunction on the manager
        # instead of a pairwise fold (ROADMAP "batch constraint joins").
        return self.system.or_all(values)

    def seed_edge_function(self) -> EdgeFunction[Constraint]:
        return self._seed_edge

    def initial_seeds(self):
        return self.inner.initial_seeds()

    def initial_seed_values(self):
        # "seed" mode implements the paper's rejected variant: the start
        # value is the feature model instead of true (Section 4.2).
        seed = (
            self.feature_model if self.fm_mode == "seed" else self.system.true
        )
        return {
            stmt: {fact: seed for fact in facts}
            for stmt, facts in self.initial_seeds().items()
        }

    # ------------------------------------------------------------------
    # Flow functions: which exploded-graph edges exist (f_F ∨ f_¬F)
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction[D]:
        if stmt.annotation is None:
            if isinstance(stmt, Return):
                # Unannotated returns have no successors; nothing to do.
                return Identity()
            return self.inner.normal_flow(stmt, succ)
        fall_through = LiftedICFG.fall_through_of(stmt)
        target = LiftedICFG.branch_target_of(stmt)
        if isinstance(stmt, Goto):
            # Enabled: flow to the target only; disabled: fall through.
            flows = []
            if succ is target:
                flows.append(self.inner.normal_flow(stmt, succ))
            if succ is fall_through:
                flows.append(Identity())
            return _union(flows)
        if isinstance(stmt, If):
            if succ is target and succ is not fall_through:
                return self.inner.normal_flow(stmt, succ)
            # Fall-through: enabled normal flow or disabled identity.
            return _union([self.inner.normal_flow(stmt, succ), Identity()])
        if isinstance(stmt, Return):
            # Only reached for annotated returns: disabled → fall through.
            return Identity()
        # Normal statement: enabled effect or disabled identity (Fig. 4a).
        return _union([self.inner.normal_flow(stmt, succ), Identity()])

    def call_flow(self, call: Instruction, callee: IRMethod) -> FlowFunction[D]:
        # Disabled case is kill-all (Fig. 4d), which adds no edges.
        return self.inner.call_flow(call, callee)

    def return_flow(
        self,
        call: Instruction,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction[D]:
        # Disabled case is kill-all (Fig. 4d).
        return self.inner.return_flow(call, callee, exit_stmt, return_site)

    def call_to_return_flow(
        self, call: Instruction, return_site: Instruction
    ) -> FlowFunction[D]:
        inner_flow = self.inner.call_to_return_flow(call, return_site)
        if call.annotation is None:
            return inner_flow
        # Enabled: the analysis' call-to-return flow; disabled: identity
        # (the call does not happen, locals survive unchanged) — Fig. 4a.
        return _union([inner_flow, Identity()])

    # ------------------------------------------------------------------
    # Edge functions: the constraint labels of Figure 4
    # ------------------------------------------------------------------

    def edge_normal(
        self, stmt: Instruction, stmt_fact: D, succ: Instruction, succ_fact: D
    ) -> EdgeFunction[Constraint]:
        if stmt.annotation is None:
            return self._true_edge
        condition = self.constraint_of(stmt)
        fall_through = LiftedICFG.fall_through_of(stmt)
        target = LiftedICFG.branch_target_of(stmt)
        if isinstance(stmt, Goto):
            enabled = succ is target and self._in_inner_normal(
                stmt, stmt_fact, succ, succ_fact
            )
            disabled = succ is fall_through and succ_fact == stmt_fact
            return self._label(condition, enabled, disabled)
        if isinstance(stmt, If):
            if succ is target and succ is not fall_through:
                # Branch taken: only possible when enabled (Fig. 4c).
                return self._edge(condition)
            enabled = self._in_inner_normal(stmt, stmt_fact, succ, succ_fact)
            disabled = succ_fact == stmt_fact
            return self._label(condition, enabled, disabled)
        if isinstance(stmt, Return):
            # Synthetic fall-through edge: the disabled case only.
            return self._edge(~condition)
        enabled = self._in_inner_normal(stmt, stmt_fact, succ, succ_fact)
        disabled = succ_fact == stmt_fact
        return self._label(condition, enabled, disabled)

    def _in_inner_normal(
        self, stmt: Instruction, stmt_fact: D, succ: Instruction, succ_fact: D
    ) -> bool:
        # One flow-function construction per (stmt, succ), not per exploded
        # edge — inner analyses build a fresh object on every call.
        key = (stmt, succ)
        flow = self._inner_flow_cache.get(key)
        if flow is None:
            flow = self._inner_flow_cache[key] = self.inner.normal_flow(stmt, succ)
        return succ_fact in flow.compute_targets(stmt_fact)

    def _label(
        self, condition: Constraint, enabled: bool, disabled: bool
    ) -> EdgeFunction[Constraint]:
        """Combine the enabled-case label ``F`` and disabled-case label
        ``¬F`` for one edge; present in both cases means ``true``."""
        if enabled and disabled:
            return self._true_edge
        if enabled:
            return self._edge(condition)
        if disabled:
            return self._edge(~condition)
        # The solver only asks for edges produced by the flow functions,
        # so at least one case must apply.
        raise AssertionError("edge label requested for a non-existent edge")

    def edge_call(
        self, call: Instruction, call_fact: D, callee: IRMethod, entry_fact: D
    ) -> EdgeFunction[Constraint]:
        if call.annotation is None:
            return self._true_edge
        return self._edge(self.constraint_of(call))

    def edge_return(
        self,
        call: Instruction,
        callee: IRMethod,
        exit_stmt: Instruction,
        exit_fact: D,
        return_site: Instruction,
        return_fact: D,
    ) -> EdgeFunction[Constraint]:
        # The flow happens only if the call occurs *and* the exit statement
        # itself is enabled (an annotated return that is disabled falls
        # through instead of returning).
        label = self.constraint_of(call) & self.constraint_of(exit_stmt)
        if label.is_true:
            return self._true_edge
        return self._edge(label)

    def edge_call_to_return(
        self, call: Instruction, call_fact: D, return_site: Instruction, return_fact: D
    ) -> EdgeFunction[Constraint]:
        if call.annotation is None:
            return self._true_edge
        condition = self.constraint_of(call)
        flow = self.inner.call_to_return_flow(call, return_site)
        enabled = return_fact in flow.compute_targets(call_fact)
        disabled = return_fact == call_fact
        return self._label(condition, enabled, disabled)


def _union(flows) -> FlowFunction:
    """Union of flow functions, avoiding the wrapper for a single one."""
    flows = [flow for flow in flows if flow is not None]
    if not flows:
        from repro.ifds.flowfunctions import KillAll

        return KillAll()
    if len(flows) == 1:
        return flows[0]
    return Union(*flows)
