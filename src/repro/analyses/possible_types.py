"""Possible Types: which classes may a reference point to?

One of the paper's three evaluation clients (Section 6.2): "computes the
possible types for a value reference in the program.  Such information can,
for instance, be used for virtual-method-call resolution.  We track typing
information through method boundaries.  Field and array assignments are
treated with weak updates in a field-sensitive manner, abstracting from
receiver objects through their context-insensitive points-to sets."

Facts are :class:`~repro.analyses.facts.TypedLocal` (local ``x`` may refer
to an instance of class ``C``) and :class:`~repro.analyses.facts.TypedField`
(receiver-merged).  Types originate at allocation sites (``new C()``) and
at entry-point receivers, and propagate through copies, field loads/stores,
parameters and return values.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Union

from repro.analyses.facts import TypedField, TypedLocal
from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import (
    Assign,
    FieldLoad,
    FieldStore,
    Instruction,
    Invoke,
    LocalRef,
    NewObject,
    Return,
)
from repro.ir.program import IRMethod

__all__ = ["PossibleTypesAnalysis", "TypeFact"]

TypeFact = Union[TypedLocal, TypedField, type(ZERO)]


class PossibleTypesAnalysis(IFDSProblem[TypeFact]):
    """IFDS possible-types analysis (allocation-site class names)."""

    def initial_seeds(self):
        seeds = {}
        for entry in self.icfg.entry_points:
            facts: Set[TypeFact] = {self.zero}
            # The harness conjures the entry receiver out of thin air; give
            # it its static type so virtual dispatch has a starting point.
            facts.add(TypedLocal("this", entry.class_name))
            seeds[entry.start_point] = facts
        return seeds

    # ------------------------------------------------------------------
    # Normal flow
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if isinstance(stmt, Assign):
            return self._assign_flow(stmt)
        if isinstance(stmt, FieldStore):
            return self._field_store_flow(stmt)
        return Identity()

    def _assign_flow(self, stmt: Assign) -> FlowFunction:
        target = stmt.target
        rvalue = stmt.rvalue

        def flow(fact: TypeFact) -> Iterable[TypeFact]:
            if fact is ZERO:
                if isinstance(rvalue, NewObject):
                    return (ZERO, TypedLocal(target, rvalue.class_name))
                return (ZERO,)
            if isinstance(fact, TypedLocal) and fact.name == target:
                # Strong update — except for the self-copy x = x.
                if isinstance(rvalue, LocalRef) and rvalue.name == target:
                    return (fact,)
                return ()
            targets: List[TypeFact] = [fact]
            if isinstance(rvalue, LocalRef) and isinstance(fact, TypedLocal):
                if fact.name == rvalue.name:
                    targets.append(TypedLocal(target, fact.class_name))
            elif isinstance(rvalue, FieldLoad) and isinstance(fact, TypedField):
                if (
                    fact.field_name == rvalue.field
                    and fact.declaring_class == rvalue.field_class
                ):
                    targets.append(TypedLocal(target, fact.class_name))
            return targets

        return Lambda(flow)

    def _field_store_flow(self, stmt: FieldStore) -> FlowFunction:
        value = stmt.value

        def flow(fact: TypeFact) -> Iterable[TypeFact]:
            # Weak update: receivers are merged, so nothing is killed.
            if (
                isinstance(fact, TypedLocal)
                and isinstance(value, LocalRef)
                and fact.name == value.name
            ):
                return (
                    fact,
                    TypedField(stmt.field_class, stmt.field_name, fact.class_name),
                )
            return (fact,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Inter-procedural flow
    # ------------------------------------------------------------------

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        args = call.args
        params = callee.params
        receiver = call.receiver

        def flow(fact: TypeFact) -> Iterable[TypeFact]:
            if fact is ZERO:
                return (ZERO,)
            if isinstance(fact, TypedField):
                return (fact,)
            targets: List[TypeFact] = []
            if receiver is not None and fact.name == receiver.name:
                targets.append(TypedLocal("this", fact.class_name))
            for arg, param in zip(args, params):
                if isinstance(arg, LocalRef) and fact.name == arg.name:
                    targets.append(TypedLocal(param, fact.class_name))
            return targets

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None

        def flow(fact: TypeFact) -> Iterable[TypeFact]:
            if fact is ZERO:
                return (ZERO,)
            if isinstance(fact, TypedField):
                return (fact,)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and isinstance(fact, TypedLocal)
                and fact.name == returned.name
            ):
                return (TypedLocal(result, fact.class_name),)
            return ()

        return Lambda(flow)

    def call_to_return_flow(
        self, call: Invoke, return_site: Instruction
    ) -> FlowFunction:
        result = call.result

        def flow(fact: TypeFact) -> Iterable[TypeFact]:
            if fact is ZERO:
                return (ZERO,)
            if isinstance(fact, TypedField):
                return ()  # fields travel through the callee
            if result is not None and fact.name == result:
                return ()
            return (fact,)

        return Lambda(flow)
