"""Uninitialized Variables: may a local be read before it is assigned?

One of the paper's three evaluation clients (Section 6.2): "finds
potentially uninitialized variables.  Assume a call foo(x), where x is
potentially uninitialized.  Our analysis will determine that all uses of
the formal parameter of foo may also access an uninitialized value."

This is the analysis the paper's introduction motivates for SPLs: a plain
Java program with a potentially undefined local does not compile, but any
preprocessor accepts the product line and the error only shows up in some
products.  The lifted analysis reports the exact feature constraint under
which the uninitialized read happens.

A fact ``LocalFact(x)`` states "local ``x`` may be uninitialized".  All
source-level locals start uninitialized at method entry (Jimple hoists
declarations); assignments kill; calls propagate uninitializedness from
actuals into formals and from returned locals into result locals.
"""

from __future__ import annotations

from typing import Iterable, List, Set, Tuple, Union

from repro.analyses.facts import LocalFact
from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import (
    Assign,
    BinOp,
    FieldLoad,
    FieldStore,
    If,
    Instruction,
    Invoke,
    LocalRef,
    Print,
    Return,
    RValue,
    UnOp,
)
from repro.ir.program import IRMethod

__all__ = ["UninitializedVariablesAnalysis", "UninitFact", "uses_of"]

UninitFact = Union[LocalFact, type(ZERO)]


def uses_of(stmt: Instruction) -> Tuple[str, ...]:
    """The locals *read* by a statement (the use sites to report on)."""
    atoms: List = []
    if isinstance(stmt, Assign):
        atoms.extend(_rvalue_atoms(stmt.rvalue))
    elif isinstance(stmt, FieldStore):
        atoms.extend((stmt.base, stmt.value))
    elif isinstance(stmt, If):
        atoms.extend(_rvalue_atoms(stmt.cond))
    elif isinstance(stmt, Invoke):
        atoms.append(stmt.receiver)
        atoms.extend(stmt.args)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            atoms.append(stmt.value)
    elif isinstance(stmt, Print):
        atoms.append(stmt.value)
    return tuple(
        atom.name for atom in atoms if isinstance(atom, LocalRef)
    )


def _rvalue_atoms(rvalue: RValue) -> Tuple:
    if isinstance(rvalue, BinOp):
        return (rvalue.left, rvalue.right)
    if isinstance(rvalue, UnOp):
        return (rvalue.operand,)
    if isinstance(rvalue, FieldLoad):
        return (rvalue.base,)
    return (rvalue,)


class UninitializedVariablesAnalysis(IFDSProblem[UninitFact]):
    """IFDS may-be-uninitialized analysis over source-level locals."""

    def initial_seeds(self):
        seeds = {}
        for entry in self.icfg.entry_points:
            facts: Set[UninitFact] = {self.zero}
            facts.update(LocalFact(name) for name in entry.source_locals)
            seeds[entry.start_point] = facts
        return seeds

    # ------------------------------------------------------------------
    # Normal flow
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if isinstance(stmt, Assign):
            target = LocalFact(stmt.target)

            def flow(fact: UninitFact) -> Iterable[UninitFact]:
                if fact == target:
                    return ()  # initialized now
                return (fact,)

            return Lambda(flow)
        return Identity()

    # ------------------------------------------------------------------
    # Inter-procedural flow
    # ------------------------------------------------------------------

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        args = call.args
        params = callee.params
        callee_locals = tuple(LocalFact(name) for name in callee.source_locals)

        def flow(fact: UninitFact) -> Iterable[UninitFact]:
            if fact is ZERO:
                # The callee's own locals start uninitialized.
                return (ZERO, *callee_locals)
            targets: List[UninitFact] = []
            ref = LocalRef(fact.name)
            for arg, param in zip(args, params):
                if arg == ref:
                    targets.append(LocalFact(param))
            return targets

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None

        def flow(fact: UninitFact) -> Iterable[UninitFact]:
            if fact is ZERO:
                return (ZERO,)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and fact == LocalFact(returned.name)
            ):
                # Returning an uninitialized local taints the result.
                return (LocalFact(result),)
            return ()

        return Lambda(flow)

    def call_to_return_flow(
        self, call: Invoke, return_site: Instruction
    ) -> FlowFunction:
        result = call.result

        def flow(fact: UninitFact) -> Iterable[UninitFact]:
            if fact is ZERO:
                return (ZERO,)
            if result is not None and fact == LocalFact(result):
                return ()  # the call initializes the result local
            return (fact,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def use_queries(self) -> Tuple[Tuple[Instruction, LocalFact], ...]:
        """(statement, fact) pairs whose hit means an uninitialized read."""
        queries = []
        for stmt in self.icfg.reachable_instructions():
            for name in uses_of(stmt):
                queries.append((stmt, LocalFact(name)))
        return tuple(queries)
