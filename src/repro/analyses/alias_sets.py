"""Alias-set analysis: which locals may refer to the same object?

Alias sets are one of the IFDS applications the paper's introduction
names (Naeem & Lhoták, ISMM'09: "Efficient alias set analysis using SSA
form").  A fact is a *set* of locals that may all point to one object —
demonstrating that IFDS facts need not be atomic (Section 2.1: the
framework "is oblivious to the concrete abstraction being used").

Semantics (simplified from the cited paper — no SSA, no field-sensitive
extension):

- an allocation ``x = new C()`` generates the singleton set ``{x}`` and
  removes ``x`` from every other set (strong update);
- a copy ``y = x`` adds ``y`` to every set containing ``x`` and removes
  ``y`` from sets not containing ``x``;
- any other assignment to ``y`` removes ``y``;
- across calls the set is renamed to the callee's frame (receiver →
  ``this``, actuals → formals), dropping out-of-scope members; empty sets
  die.  Return renames the returned local to the caller's result local.

Lifted, the analysis answers under which feature combinations two locals
may alias — useful e.g. to constrain when a feature's mutation is visible
through another feature's reference.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Tuple, Union

from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import (
    Assign,
    Instruction,
    Invoke,
    LocalRef,
    NewObject,
    Return,
)
from repro.ir.program import IRMethod

__all__ = ["AliasSetAnalysis", "AliasFact"]

#: A fact: the frozenset of locals that may alias one object.
AliasFact = Union[FrozenSet[str], type(ZERO)]


class AliasSetAnalysis(IFDSProblem[AliasFact]):
    """IFDS may-alias sets over locals (allocation-site free)."""

    # ------------------------------------------------------------------
    # Normal flow
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if not isinstance(stmt, Assign):
            return Identity()
        target = stmt.target
        rvalue = stmt.rvalue

        def flow(fact: AliasFact) -> Iterable[AliasFact]:
            if fact is ZERO:
                if isinstance(rvalue, NewObject):
                    return (ZERO, frozenset((target,)))
                return (ZERO,)
            if isinstance(rvalue, LocalRef) and rvalue.name in fact:
                return (fact | {target},)
            without = fact - {target}
            if not without:
                return ()  # the object lost its last reference name
            return (without,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Inter-procedural flow (frame renaming)
    # ------------------------------------------------------------------

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        renames: List[Tuple[str, str]] = []
        if call.receiver is not None:
            renames.append((call.receiver.name, "this"))
        for arg, param in zip(call.args, callee.params):
            if isinstance(arg, LocalRef):
                renames.append((arg.name, param))

        def flow(fact: AliasFact) -> Iterable[AliasFact]:
            if fact is ZERO:
                return (ZERO,)
            renamed = frozenset(
                new for old, new in renames if old in fact
            )
            if not renamed:
                return ()
            return (renamed,)

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None
        # The receiver/argument names on the caller side are recovered via
        # the inverse renaming, so aliasing established inside the callee
        # between `this`/params is reflected back.
        inverse: List[Tuple[str, str]] = []
        if call.receiver is not None:
            inverse.append(("this", call.receiver.name))
        for arg, param in zip(call.args, callee.params):
            if isinstance(arg, LocalRef):
                inverse.append((param, arg.name))

        def flow(fact: AliasFact) -> Iterable[AliasFact]:
            if fact is ZERO:
                return (ZERO,)
            renamed = set(new for old, new in inverse if old in fact)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and returned.name in fact
            ):
                renamed.add(result)
            if not renamed:
                return ()
            return (frozenset(renamed),)

        return Lambda(flow)

    def call_to_return_flow(
        self, call: Invoke, return_site: Instruction
    ) -> FlowFunction:
        result = call.result

        def flow(fact: AliasFact) -> Iterable[AliasFact]:
            if fact is ZERO:
                return (ZERO,)
            without = fact - {result} if result is not None else fact
            if not without:
                return ()
            return (without,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @staticmethod
    def may_alias(results, stmt: Instruction, left: str, right: str) -> bool:
        """Do ``left`` and ``right`` possibly alias just before ``stmt``?

        Closes transitively over the alias sets at the statement: two
        locals may alias if they are connected through any chain of
        overlapping sets (the merge the cited paper performs internally).
        """
        if left == right:
            return True
        parents = {}

        def find(name: str) -> str:
            root = name
            while parents.get(root, root) != root:
                root = parents[root]
            parents[name] = root
            return root

        for fact in results.at(stmt):
            if fact is ZERO or not fact:
                continue
            names = iter(fact)
            first = find(next(names))
            for other in names:
                parents[find(other)] = first
        return (
            left in parents
            and right in parents
            and find(left) == find(right)
        )
