"""Reaching Definitions, inter-procedural variant.

One of the paper's three evaluation clients (Section 6.2): "a
reaching-definitions analysis that computes variable definitions for their
uses.  To obtain inter-procedural flows, we implement a variant that tracks
definitions through parameter and return-value assignments."

A fact :class:`~repro.analyses.facts.DefFact` ``(name, site)`` states that
local ``name`` may still hold the value produced by the definition at
``site``.  Crossing a call rebinds ``name`` from actual to formal; crossing
a return rebinds the returned local to the caller's result local, keeping
the original definition site — so a use can be traced to definitions in
other methods.
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.analyses.facts import DefFact
from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import (
    Assign,
    Instruction,
    Invoke,
    LocalRef,
    Return,
)
from repro.ir.program import IRMethod

__all__ = ["ReachingDefinitionsAnalysis", "RDFact"]

RDFact = Union[DefFact, type(ZERO)]


class ReachingDefinitionsAnalysis(IFDSProblem[RDFact]):
    """IFDS inter-procedural reaching definitions over locals."""

    # ------------------------------------------------------------------
    # Normal flow
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if isinstance(stmt, Assign):
            target = stmt.target

            def flow(fact: RDFact) -> Iterable[RDFact]:
                if fact is ZERO:
                    return (ZERO, DefFact(target, stmt))
                if fact.name == target:
                    return ()  # the new definition kills the old ones
                return (fact,)

            return Lambda(flow)
        return Identity()

    # ------------------------------------------------------------------
    # Inter-procedural flow
    # ------------------------------------------------------------------

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        args = call.args
        params = callee.params

        def flow(fact: RDFact) -> Iterable[RDFact]:
            if fact is ZERO:
                # Parameters are defined by the call itself (the binding of
                # actuals that are constants still counts as a definition).
                targets: List[RDFact] = [ZERO]
                for arg, param in zip(args, params):
                    if not isinstance(arg, LocalRef):
                        targets.append(DefFact(param, call))
                return targets
            targets = []
            for arg, param in zip(args, params):
                if isinstance(arg, LocalRef) and fact.name == arg.name:
                    # The actual's definition reaches the formal.
                    targets.append(DefFact(param, fact.site))
            return targets

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None

        def flow(fact: RDFact) -> Iterable[RDFact]:
            if fact is ZERO:
                if result is not None and not isinstance(returned, LocalRef):
                    # Returning a constant defines the result at the exit.
                    return (ZERO, DefFact(result, exit_stmt))
                return (ZERO,)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and fact.name == returned.name
            ):
                return (DefFact(result, fact.site),)
            return ()

        return Lambda(flow)

    def call_to_return_flow(
        self, call: Invoke, return_site: Instruction
    ) -> FlowFunction:
        result = call.result

        def flow(fact: RDFact) -> Iterable[RDFact]:
            if fact is ZERO:
                return (ZERO,)
            if result is not None and fact.name == result:
                return ()  # killed: the call defines the result local
            return (fact,)

        return Lambda(flow)
