"""Taint analysis: does a value from ``secret()`` reach a ``print``?

The running example of the paper (Sections 1 and 2.3).  Facts are tainted
locals and tainted fields; ``secret()`` is the source, ``print`` the sink.
Written as a plain IFDS problem — lifting it to product lines requires no
change to this file (the whole point of SPLLIFT).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple, Union

from repro.analyses.facts import FieldFact, LocalFact
from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import (
    Assign,
    BinOp,
    FieldLoad,
    FieldStore,
    Instruction,
    Invoke,
    LocalRef,
    Print,
    Return,
    RValue,
    SecretValue,
    UnOp,
)
from repro.ir.program import IRMethod

__all__ = ["TaintAnalysis", "TaintFact"]

TaintFact = Union[LocalFact, FieldFact, type(ZERO)]


class TaintAnalysis(IFDSProblem[TaintFact]):
    """IFDS taint analysis over locals and (receiver-merged) fields."""

    # ------------------------------------------------------------------
    # Normal flow
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if isinstance(stmt, Assign):
            return self._assign_flow(stmt)
        if isinstance(stmt, FieldStore):
            return self._field_store_flow(stmt)
        return Identity()

    def _assign_flow(self, stmt: Assign) -> FlowFunction:
        target = LocalFact(stmt.target)
        rvalue = stmt.rvalue

        def flow(fact: TaintFact) -> Iterable[TaintFact]:
            if fact is ZERO:
                if isinstance(rvalue, SecretValue):
                    return (ZERO, target)
                return (ZERO,)
            if self._taints(rvalue, fact):
                # Covers x = x + ... : the target stays tainted even
                # though its old value is overwritten.
                return (fact, target) if fact != target else (fact,)
            if fact == target:
                return ()  # strong update: the old value is overwritten
            return (fact,)

        return Lambda(flow)

    @staticmethod
    def _taints(rvalue: RValue, fact: TaintFact) -> bool:
        """Does taint on ``fact`` make the value of ``rvalue`` tainted?"""
        if isinstance(fact, LocalFact):
            ref = LocalRef(fact.name)
            if isinstance(rvalue, LocalRef):
                return rvalue == ref
            if isinstance(rvalue, BinOp):
                return rvalue.left == ref or rvalue.right == ref
            if isinstance(rvalue, UnOp):
                return rvalue.operand == ref
            return False
        if isinstance(fact, FieldFact):
            return (
                isinstance(rvalue, FieldLoad)
                and rvalue.field == fact.field_name
                and rvalue.field_class == fact.class_name
            )
        return False

    def _field_store_flow(self, stmt: FieldStore) -> FlowFunction:
        field_fact = FieldFact(stmt.field_class, stmt.field_name)
        value = stmt.value

        def flow(fact: TaintFact) -> Iterable[TaintFact]:
            # Weak update: receivers are merged, so the store never kills.
            if isinstance(fact, LocalFact) and value == LocalRef(fact.name):
                return (fact, field_fact)
            return (fact,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Inter-procedural flow
    # ------------------------------------------------------------------

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        args = call.args
        params = callee.params

        def flow(fact: TaintFact) -> Iterable[TaintFact]:
            if fact is ZERO:
                return (ZERO,)
            if isinstance(fact, FieldFact):
                return (fact,)  # fields are global: visible in the callee
            targets: List[TaintFact] = []
            ref = LocalRef(fact.name)
            for arg, param in zip(args, params):
                if arg == ref:
                    targets.append(LocalFact(param))
            return targets

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None

        def flow(fact: TaintFact) -> Iterable[TaintFact]:
            if fact is ZERO:
                return (ZERO,)
            if isinstance(fact, FieldFact):
                return (fact,)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and fact == LocalFact(returned.name)
            ):
                return (LocalFact(result),)
            return ()  # callee locals die at the boundary

        return Lambda(flow)

    def call_to_return_flow(
        self, call: Invoke, return_site: Instruction
    ) -> FlowFunction:
        result = call.result

        def flow(fact: TaintFact) -> Iterable[TaintFact]:
            if fact is ZERO:
                return (ZERO,)
            if isinstance(fact, FieldFact):
                return ()  # fields travel through the callee instead
            if result is not None and fact == LocalFact(result):
                return ()  # the call overwrites its result local
            return (fact,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @staticmethod
    def sink_queries(
        icfg,
    ) -> Tuple[Tuple[Instruction, LocalFact], ...]:
        """(print statement, fact) pairs to check: a hit is a leak."""
        queries = []
        for stmt in icfg.reachable_instructions():
            if isinstance(stmt, Print) and isinstance(stmt.value, LocalRef):
                queries.append((stmt, LocalFact(stmt.value.name)))
        return tuple(queries)
