"""Client analyses — plain IFDS problems, liftable without modification.

The paper's three evaluation clients (Section 6.2) plus the taint analysis
of the running example:

- :class:`TaintAnalysis` — secret() → print() information flow,
- :class:`PossibleTypesAnalysis` — allocation-site types per reference,
- :class:`ReachingDefinitionsAnalysis` — inter-procedural reaching defs,
- :class:`UninitializedVariablesAnalysis` — may-be-uninitialized locals.

Plus :class:`ConstantPropagation`, a *native* IDE analysis (linear
constant propagation, the TAPSOFT'96 flagship client) exercising the IDE
solver with a non-binary value domain.
"""

from repro.analyses.alias_sets import AliasFact, AliasSetAnalysis
from repro.analyses.constant_propagation import (
    BOTTOM,
    TOP,
    AffineEdge,
    AllBottomEdge,
    ConstantPropagation,
    CPValue,
)
from repro.analyses.facts import (
    DefFact,
    FieldFact,
    LocalFact,
    TypedField,
    TypedLocal,
)
from repro.analyses.nullness import NullFact, NullnessAnalysis
from repro.analyses.possible_types import PossibleTypesAnalysis, TypeFact
from repro.analyses.reaching_definitions import RDFact, ReachingDefinitionsAnalysis
from repro.analyses.taint import TaintAnalysis, TaintFact
from repro.analyses.typestate import (
    FILE_PROTOCOL,
    TypestateAnalysis,
    TypestateFact,
    TypestateProtocol,
)
from repro.analyses.uninitialized_variables import (
    UninitFact,
    UninitializedVariablesAnalysis,
    uses_of,
)

#: The paper's Table 2/3 analysis lineup, in table order.
PAPER_ANALYSES = (
    ("Possible Types", PossibleTypesAnalysis),
    ("Reaching Definitions", ReachingDefinitionsAnalysis),
    ("Uninitialized Variables", UninitializedVariablesAnalysis),
)

__all__ = [
    "LocalFact",
    "FieldFact",
    "TypedLocal",
    "TypedField",
    "DefFact",
    "TaintAnalysis",
    "TaintFact",
    "PossibleTypesAnalysis",
    "TypeFact",
    "ReachingDefinitionsAnalysis",
    "RDFact",
    "UninitializedVariablesAnalysis",
    "UninitFact",
    "ConstantPropagation",
    "CPValue",
    "TOP",
    "BOTTOM",
    "AffineEdge",
    "AllBottomEdge",
    "TypestateAnalysis",
    "TypestateProtocol",
    "TypestateFact",
    "FILE_PROTOCOL",
    "NullnessAnalysis",
    "NullFact",
    "AliasSetAnalysis",
    "AliasFact",
    "uses_of",
    "PAPER_ANALYSES",
]
