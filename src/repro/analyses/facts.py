"""Fact abstractions shared by the client analyses.

Facts must be hashable values; the IFDS framework is oblivious to their
structure (Section 2.1 of the paper).  Locals are naturally method-scoped
(Jimple locals), fields are abstracted by their declaring class and name —
i.e. receiver objects are merged, matching the paper's treatment of field
assignments "in a field-sensitive manner, abstracting from receiver
objects through their context-insensitive points-to sets".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.instructions import Instruction

__all__ = ["LocalFact", "FieldFact", "TypedLocal", "TypedField", "DefFact"]


@dataclass(frozen=True)
class LocalFact:
    """A property (e.g. tainted, uninitialized) of one local variable."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FieldFact:
    """A property of a field, merged over all receiver objects."""

    class_name: str
    field_name: str

    def __repr__(self) -> str:
        return f"{self.class_name}.{self.field_name}"


@dataclass(frozen=True)
class TypedLocal:
    """Possible-types fact: local ``name`` may refer to a ``class_name``."""

    name: str
    class_name: str

    def __repr__(self) -> str:
        return f"{self.name}:{self.class_name}"


@dataclass(frozen=True)
class TypedField:
    """Possible-types fact for a field (receivers merged)."""

    declaring_class: str
    field_name: str
    class_name: str

    def __repr__(self) -> str:
        return f"{self.declaring_class}.{self.field_name}:{self.class_name}"


@dataclass(frozen=True)
class DefFact:
    """Reaching-definitions fact: ``name`` may hold the value assigned at
    ``site``.  The variable name is rebound as the definition crosses
    parameter and return-value assignments."""

    name: str
    site: Instruction

    def __repr__(self) -> str:
        return f"{self.name}@{self.site.location}"
