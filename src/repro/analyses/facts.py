"""Fact abstractions shared by the client analyses.

Facts must be hashable values; the IFDS framework is oblivious to their
structure (Section 2.1 of the paper).  Locals are naturally method-scoped
(Jimple locals), fields are abstracted by their declaring class and name —
i.e. receiver objects are merged, matching the paper's treatment of field
assignments "in a field-sensitive manner, abstracting from receiver
objects through their context-insensitive points-to sets".

Facts are immutable value objects with their hash computed once at
construction: the solvers key path edges, jump tables and memo caches on
(statement, fact) tuples, so fact hashing sits on the tabulation hot path.
"""

from __future__ import annotations

from repro.ir.instructions import Instruction

__all__ = ["LocalFact", "FieldFact", "TypedLocal", "TypedField", "DefFact"]


class LocalFact:
    """A property (e.g. tainted, uninitialized) of one local variable."""

    __slots__ = ("name", "_hash")

    def __init__(self, name: str) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash((LocalFact, name)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, LocalFact) and other.name == self.name

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return self.name


class FieldFact:
    """A property of a field, merged over all receiver objects."""

    __slots__ = ("class_name", "field_name", "_hash")

    def __init__(self, class_name: str, field_name: str) -> None:
        object.__setattr__(self, "class_name", class_name)
        object.__setattr__(self, "field_name", field_name)
        object.__setattr__(
            self, "_hash", hash((FieldFact, class_name, field_name))
        )

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, FieldFact)
            and other.class_name == self.class_name
            and other.field_name == self.field_name
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.class_name}.{self.field_name}"


class TypedLocal:
    """Possible-types fact: local ``name`` may refer to a ``class_name``."""

    __slots__ = ("name", "class_name", "_hash")

    def __init__(self, name: str, class_name: str) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "class_name", class_name)
        object.__setattr__(self, "_hash", hash((TypedLocal, name, class_name)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, TypedLocal)
            and other.name == self.name
            and other.class_name == self.class_name
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.name}:{self.class_name}"


class TypedField:
    """Possible-types fact for a field (receivers merged)."""

    __slots__ = ("declaring_class", "field_name", "class_name", "_hash")

    def __init__(
        self, declaring_class: str, field_name: str, class_name: str
    ) -> None:
        object.__setattr__(self, "declaring_class", declaring_class)
        object.__setattr__(self, "field_name", field_name)
        object.__setattr__(self, "class_name", class_name)
        object.__setattr__(
            self,
            "_hash",
            hash((TypedField, declaring_class, field_name, class_name)),
        )

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, TypedField)
            and other.declaring_class == self.declaring_class
            and other.field_name == self.field_name
            and other.class_name == self.class_name
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.declaring_class}.{self.field_name}:{self.class_name}"


class DefFact:
    """Reaching-definitions fact: ``name`` may hold the value assigned at
    ``site``.  The variable name is rebound as the definition crosses
    parameter and return-value assignments."""

    __slots__ = ("name", "site", "_hash")

    def __init__(self, name: str, site: Instruction) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "site", site)
        object.__setattr__(self, "_hash", hash((DefFact, name, site)))

    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} is immutable")

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return (
            isinstance(other, DefFact)
            and other.name == self.name
            and other.site == self.site
        )

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"{self.name}@{self.site.location}"
