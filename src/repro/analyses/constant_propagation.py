"""Linear constant propagation — a *native* IDE analysis.

The IDE framework's flagship application (Sagiv, Reps, Horwitz,
TAPSOFT'96: "Precise interprocedural dataflow analysis with applications
to constant propagation").  Unlike the IFDS clients, this analysis uses a
non-trivial value domain directly: the environment maps each local to

    ⊤ (unreached)  ⊐  constants c ∈ Z  ⊐  ⊥ (non-constant),

and edge functions are *affine* transformers ``λv. a·v + b`` (plus the
absorbing all-⊥), which are closed under composition and — conservatively
— under join (unequal transformers join to all-⊥; the textbook refinement
with pointwise meets is not needed for the reproduction's purposes).

Included for two reasons: it exercises the IDE solver with a genuinely
different edge-function algebra than SPLLIFT's constraints, and it shows
where SPLLIFT's transparent lifting stops — an analysis that already
*uses* the IDE value domain cannot also carry feature constraints there
(the paper lifts IFDS, not IDE, problems).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple, Union

from repro.analyses.facts import LocalFact
from repro.ide.edgefunctions import AllTop, EdgeFunction
from repro.ide.problem import IDEProblem
from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import ZERO
from repro.ir.instructions import (
    Assign,
    BinOp,
    Const,
    Instruction,
    Invoke,
    LocalRef,
    Return,
    RValue,
    UnOp,
)
from repro.ir.program import IRMethod

__all__ = ["ConstantPropagation", "TOP", "BOTTOM", "CPValue", "AffineEdge", "AllBottomEdge"]


class _Sentinel:
    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: Unreached / no information.
TOP = _Sentinel("⊤")
#: Reached with more than one possible value (non-constant).
BOTTOM = _Sentinel("⊥")

CPValue = Union[_Sentinel, int]


class AffineEdge(EdgeFunction[CPValue]):
    """``λv. a·v + b`` with ⊥ absorbing unless the function is constant."""

    __slots__ = ("a", "b")

    def __init__(self, a: int, b: int) -> None:
        self.a = a
        self.b = b

    @property
    def is_constant(self) -> bool:
        return self.a == 0

    def compute_target(self, source: CPValue) -> CPValue:
        if self.is_constant:
            return self.b
        if source is BOTTOM or source is TOP:
            return source
        return self.a * source + self.b

    def compose_with(self, second: EdgeFunction[CPValue]) -> EdgeFunction[CPValue]:
        if isinstance(second, AffineEdge):
            # second(self(v)) = a2(a1 v + b1) + b2
            return AffineEdge(second.a * self.a, second.a * self.b + second.b)
        if isinstance(second, AllBottomEdge):
            return second
        if isinstance(second, AllTop):
            return second
        raise TypeError(f"cannot compose AffineEdge with {second!r}")

    def join_with(self, other: EdgeFunction[CPValue]) -> EdgeFunction[CPValue]:
        if isinstance(other, AllTop):
            return self
        if self.equal_to(other):
            return self
        # Two different transformers along merged paths: non-constant.
        return AllBottomEdge()

    def equal_to(self, other: EdgeFunction[CPValue]) -> bool:
        return (
            isinstance(other, AffineEdge)
            and other.a == self.a
            and other.b == self.b
        )

    def __repr__(self) -> str:
        if self.is_constant:
            return f"λv.{self.b}"
        if self.a == 1 and self.b == 0:
            return "λv.v"
        return f"λv.{self.a}v+{self.b}"


class AllBottomEdge(EdgeFunction[CPValue]):
    """Maps everything (reached) to ⊥ — value present but unknown."""

    def compute_target(self, source: CPValue) -> CPValue:
        return BOTTOM

    def compose_with(self, second: EdgeFunction[CPValue]) -> EdgeFunction[CPValue]:
        if isinstance(second, AffineEdge) and second.is_constant:
            return second  # a constant function forgets its input
        if isinstance(second, AllTop):
            return second
        return self

    def join_with(self, other: EdgeFunction[CPValue]) -> EdgeFunction[CPValue]:
        if isinstance(other, AllTop):
            return self
        return self  # ⊥ absorbs every join

    def equal_to(self, other: EdgeFunction[CPValue]) -> bool:
        return isinstance(other, AllBottomEdge)

    def __repr__(self) -> str:
        return "λv.⊥"


_IDENTITY_EDGE = AffineEdge(1, 0)


def _join_values(left: CPValue, right: CPValue) -> CPValue:
    if left is TOP:
        return right
    if right is TOP:
        return left
    if left is BOTTOM or right is BOTTOM:
        return BOTTOM
    return left if left == right else BOTTOM


def _linear_of(rvalue: RValue) -> Optional[Tuple[Optional[str], int, int]]:
    """Decompose a flat right-hand side as ``a·source + b``.

    Returns ``(source_local_or_None, a, b)``; source ``None`` means the
    value is the constant ``b``.  ``None`` (no tuple) means not linear —
    the target becomes ⊥.
    """
    if isinstance(rvalue, Const):
        if isinstance(rvalue.value, bool) or rvalue.value is None:
            return None
        return (None, 0, rvalue.value)
    if isinstance(rvalue, LocalRef):
        return (rvalue.name, 1, 0)
    if isinstance(rvalue, UnOp) and rvalue.op == "-":
        inner = _linear_of(rvalue.operand)
        if inner is None:
            return None
        source, a, b = inner
        return (source, -a, -b)
    if isinstance(rvalue, BinOp):
        left, right = rvalue.left, rvalue.right
        if rvalue.op in ("+", "-"):
            sign = 1 if rvalue.op == "+" else -1
            if isinstance(left, LocalRef) and isinstance(right, Const):
                if isinstance(right.value, int) and not isinstance(right.value, bool):
                    return (left.name, 1, sign * right.value)
            if (
                rvalue.op == "+"
                and isinstance(left, Const)
                and isinstance(right, LocalRef)
            ):
                if isinstance(left.value, int) and not isinstance(left.value, bool):
                    return (right.name, 1, left.value)
            if isinstance(left, Const) and isinstance(right, Const):
                if all(
                    isinstance(c.value, int) and not isinstance(c.value, bool)
                    for c in (left, right)
                ):
                    return (None, 0, left.value + sign * right.value)
        if rvalue.op == "*":
            if isinstance(left, LocalRef) and isinstance(right, Const):
                if isinstance(right.value, int) and not isinstance(right.value, bool):
                    return (left.name, right.value, 0)
            if isinstance(left, Const) and isinstance(right, LocalRef):
                if isinstance(left.value, int) and not isinstance(left.value, bool):
                    return (right.name, left.value, 0)
            if isinstance(left, Const) and isinstance(right, Const):
                if all(
                    isinstance(c.value, int) and not isinstance(c.value, bool)
                    for c in (left, right)
                ):
                    return (None, 0, left.value * right.value)
    return None


class ConstantPropagation(IDEProblem):
    """Inter-procedural linear constant propagation over locals."""

    # ------------------------------------------------------------------
    # Value lattice
    # ------------------------------------------------------------------

    def top_value(self) -> CPValue:
        return TOP

    def bottom_value(self) -> CPValue:
        return BOTTOM

    def join_values(self, left: CPValue, right: CPValue) -> CPValue:
        return _join_values(left, right)

    def seed_edge_function(self) -> EdgeFunction[CPValue]:
        return _IDENTITY_EDGE

    def initial_seed_values(self):
        # The zero fact carries ⊥ ("reached"); constants are generated
        # from it by constant edge functions.
        return {
            stmt: {fact: BOTTOM for fact in facts}
            for stmt, facts in self.initial_seeds().items()
        }

    # ------------------------------------------------------------------
    # Flow functions (which facts exist)
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if not isinstance(stmt, Assign):
            return Identity()
        target = LocalFact(stmt.target)
        linear = _linear_of(stmt.rvalue)

        def flow(fact) -> Iterable:
            if fact is ZERO:
                # The target is tracked from the zero fact whenever its
                # new value does not come from another tracked local.
                if linear is None or linear[0] is None:
                    return (ZERO, target)
                return (ZERO,)
            if fact == target:
                if linear is not None and linear[0] == stmt.target:
                    return (fact,)  # x = a·x + b keeps tracking x
                return ()
            if linear is not None and linear[0] == fact.name:
                return (fact, target)
            return (fact,)

        return Lambda(flow)

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        args = call.args
        params = callee.params

        def flow(fact) -> Iterable:
            if fact is ZERO:
                constants = [
                    LocalFact(param)
                    for arg, param in zip(args, params)
                    if isinstance(arg, Const)
                ]
                return (ZERO, *constants)
            targets = []
            for arg, param in zip(args, params):
                if isinstance(arg, LocalRef) and fact == LocalFact(arg.name):
                    targets.append(LocalFact(param))
            return targets

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None

        def flow(fact) -> Iterable:
            if fact is ZERO:
                if result is not None and not isinstance(returned, LocalRef):
                    return (ZERO, LocalFact(result))
                return (ZERO,)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and fact == LocalFact(returned.name)
            ):
                return (LocalFact(result),)
            return ()

        return Lambda(flow)

    def call_to_return_flow(self, call: Invoke, return_site: Instruction) -> FlowFunction:
        result = call.result

        def flow(fact) -> Iterable:
            if fact is ZERO:
                return (ZERO,)
            if result is not None and fact == LocalFact(result):
                return ()
            return (fact,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Edge functions (what the edges compute)
    # ------------------------------------------------------------------

    def edge_normal(
        self, stmt: Instruction, stmt_fact, succ: Instruction, succ_fact
    ) -> EdgeFunction[CPValue]:
        if not isinstance(stmt, Assign):
            return _IDENTITY_EDGE
        target = LocalFact(stmt.target)
        if succ_fact != target or stmt_fact == succ_fact == target:
            # Either an untouched fact flowing through, or x = a·x + b.
            if succ_fact == target and stmt_fact == target:
                linear = _linear_of(stmt.rvalue)
                if linear is not None and linear[0] == stmt.target:
                    return AffineEdge(linear[1], linear[2])
            return _IDENTITY_EDGE
        linear = _linear_of(stmt.rvalue)
        if linear is None:
            return AllBottomEdge()
        source, a, b = linear
        if source is None:
            return AffineEdge(0, b)  # constant, generated from zero
        return AffineEdge(a, b)  # linear in the source fact

    def edge_call(
        self, call: Invoke, call_fact, callee: IRMethod, entry_fact
    ) -> EdgeFunction[CPValue]:
        if call_fact is ZERO and entry_fact != ZERO:
            # A constant actual generated the formal's fact.
            for arg, param in zip(call.args, callee.params):
                if LocalFact(param) == entry_fact and isinstance(arg, Const):
                    if isinstance(arg.value, int) and not isinstance(arg.value, bool):
                        return AffineEdge(0, arg.value)
            return AllBottomEdge()
        return _IDENTITY_EDGE

    def edge_return(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        exit_fact,
        return_site: Instruction,
        return_fact,
    ) -> EdgeFunction[CPValue]:
        if exit_fact is ZERO and return_fact != ZERO:
            returned = exit_stmt.value if isinstance(exit_stmt, Return) else None
            if (
                isinstance(returned, Const)
                and isinstance(returned.value, int)
                and not isinstance(returned.value, bool)
            ):
                return AffineEdge(0, returned.value)
            return AllBottomEdge()
        return _IDENTITY_EDGE

    def edge_call_to_return(
        self, call: Invoke, call_fact, return_site: Instruction, return_fact
    ) -> EdgeFunction[CPValue]:
        return _IDENTITY_EDGE

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    @staticmethod
    def constant_at(results, stmt: Instruction, local: str) -> CPValue:
        """The solved lattice value of ``local`` just before ``stmt``."""
        return results.value_at(stmt, LocalFact(local))
