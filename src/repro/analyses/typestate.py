"""Typestate analysis: protocol conformance as an IFDS problem.

Typestate verification is one of the flagship IFDS applications the paper
cites (Fink et al.; Naeem & Lhoták; Bodden).  A *protocol* is a small DFA
over the methods called on objects of tracked classes; the analysis tracks
``(local, state)`` facts and reports reaching the error state.

Lifted with SPLLIFT, the analysis answers *under which feature
combinations* a protocol can be violated — e.g. "the stream may be read
after close exactly when ¬Buffering ∧ Logging".

Aliasing note: copies create independently-tracked facts (no alias
analysis), the standard simplification for IFDS typestate demos; the
paper's cited systems add access-path abstractions on top of the same
framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Tuple

from repro.ifds.flowfunctions import FlowFunction, Identity, Lambda
from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.icfg import ICFG
from repro.ir.instructions import (
    Assign,
    Instruction,
    Invoke,
    LocalRef,
    NewObject,
    Return,
)
from repro.ir.program import IRMethod

__all__ = ["TypestateProtocol", "TypestateFact", "TypestateAnalysis", "FILE_PROTOCOL"]


@dataclass(frozen=True)
class TypestateProtocol:
    """A DFA over method names, applied to objects of tracked classes.

    ``transitions`` maps ``(state, method)`` to the next state; calling a
    relevant method with no transition from the current state moves to
    ``error_state``.  Methods not in ``relevant_methods`` are ignored.
    """

    name: str
    tracked_classes: FrozenSet[str]
    initial_state: str
    error_state: str
    transitions: Dict[Tuple[str, str], str]

    @property
    def relevant_methods(self) -> FrozenSet[str]:
        return frozenset(method for _, method in self.transitions)

    def step(self, state: str, method: str) -> str:
        if method not in self.relevant_methods:
            return state
        if state == self.error_state:
            return state
        return self.transitions.get((state, method), self.error_state)


#: The classic stream protocol: must open before read, no read after close.
FILE_PROTOCOL = TypestateProtocol(
    name="file",
    tracked_classes=frozenset(("File",)),
    initial_state="closed",
    error_state="error",
    transitions={
        ("closed", "open"): "opened",
        ("opened", "read"): "opened",
        ("opened", "write"): "opened",
        ("opened", "close"): "closed",
    },
)


@dataclass(frozen=True)
class TypestateFact:
    """Object referenced by ``local`` may be in protocol ``state``."""

    local: str
    state: str

    def __repr__(self) -> str:
        return f"{self.local}@{self.state}"


class TypestateAnalysis(IFDSProblem):
    """IFDS typestate checking for one protocol."""

    def __init__(self, icfg: ICFG, protocol: TypestateProtocol = FILE_PROTOCOL) -> None:
        super().__init__(icfg)
        self.protocol = protocol
        self._tracked_with_subclasses = self._expand_tracked()

    def _expand_tracked(self) -> FrozenSet[str]:
        expanded = set()
        for class_name in self.protocol.tracked_classes:
            if class_name in self.icfg.program.classes:
                expanded.update(self.icfg.program.subtypes(class_name))
        return frozenset(expanded)

    # ------------------------------------------------------------------
    # Normal flow
    # ------------------------------------------------------------------

    def normal_flow(self, stmt: Instruction, succ: Instruction) -> FlowFunction:
        if isinstance(stmt, Assign):
            target = stmt.target
            rvalue = stmt.rvalue
            protocol = self.protocol
            tracked = self._tracked_with_subclasses

            def flow(fact) -> Iterable:
                if fact is ZERO:
                    if isinstance(rvalue, NewObject) and rvalue.class_name in tracked:
                        return (ZERO, TypestateFact(target, protocol.initial_state))
                    return (ZERO,)
                if fact.local == target:
                    return ()  # rebinding drops tracking of the old object
                if isinstance(rvalue, LocalRef) and fact.local == rvalue.name:
                    return (fact, TypestateFact(target, fact.state))
                return (fact,)

            return Lambda(flow)
        return Identity()

    # ------------------------------------------------------------------
    # Calls: protocol steps happen at call-to-return edges
    # ------------------------------------------------------------------

    def call_flow(self, call: Invoke, callee: IRMethod) -> FlowFunction:
        args = call.args
        params = callee.params
        receiver = call.receiver

        def flow(fact) -> Iterable:
            if fact is ZERO:
                return (ZERO,)
            targets: List[TypestateFact] = []
            if receiver is not None and fact.local == receiver.name:
                targets.append(TypestateFact("this", fact.state))
            for arg, param in zip(args, params):
                if isinstance(arg, LocalRef) and fact.local == arg.name:
                    targets.append(TypestateFact(param, fact.state))
            return targets

        return Lambda(flow)

    def return_flow(
        self,
        call: Invoke,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction:
        result = call.result
        returned = exit_stmt.value if isinstance(exit_stmt, Return) else None

        def flow(fact) -> Iterable:
            if fact is ZERO:
                return (ZERO,)
            if (
                result is not None
                and isinstance(returned, LocalRef)
                and fact.local == returned.name
            ):
                return (TypestateFact(result, fact.state),)
            return ()

        return Lambda(flow)

    def call_to_return_flow(
        self, call: Invoke, return_site: Instruction
    ) -> FlowFunction:
        result = call.result
        receiver = call.receiver
        method_name = call.method_name
        protocol = self.protocol
        relevant = (
            method_name in protocol.relevant_methods
            and call.static_type in self._tracked_with_subclasses
        )

        def flow(fact) -> Iterable:
            if fact is ZERO:
                return (ZERO,)
            if result is not None and fact.local == result:
                return ()
            if relevant and receiver is not None and fact.local == receiver.name:
                return (TypestateFact(fact.local, protocol.step(fact.state, method_name)),)
            return (fact,)

        return Lambda(flow)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def violation_queries(self) -> Tuple[Tuple[Instruction, TypestateFact], ...]:
        """(call statement, error fact) pairs: a hit means the protocol
        may be violated *by* that call."""
        queries = []
        protocol = self.protocol
        for stmt in self.icfg.reachable_instructions():
            if not isinstance(stmt, Invoke):
                continue
            if stmt.method_name not in protocol.relevant_methods:
                continue
            if stmt.static_type not in self._tracked_with_subclasses:
                continue
            return_sites = self.icfg.return_sites_of(stmt)
            for site in return_sites:
                queries.append(
                    (site, TypestateFact(stmt.receiver.name, protocol.error_state))
                )
        return tuple(queries)
