"""From-scratch reduced ordered BDD engine (substitute for JavaBDD/BuDDy).

See :mod:`repro.bdd.manager` for the engine itself.
"""

from repro.bdd.manager import BDDError, BDDManager

__all__ = ["BDDManager", "BDDError"]
