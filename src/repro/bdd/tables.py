"""Data-oriented node storage for the ROBDD engine.

The :class:`NodeStore` keeps every BDD node in three flat parallel
columns (``level``/``low``/``high``, indexed by node id) and interns
nodes through a unique table keyed by **packed 64-bit integers** instead
of ``(level, low, high)`` tuples::

    key = ((level << shift) | low) << shift | high

Packing removes the per-probe tuple allocation and tuple hash that
dominated the old unique-table probes: the key is a small int computed
with two shifts and two ors, and CPython's dict — itself an
open-addressed, power-of-two hash table — probes it through the C
fast path for int keys.  A pure-Python open-addressed table over
``array('q')`` columns was implemented and benchmarked during the
rewrite; it lost by ~2x because every slot inspection costs a boxed
index and an interpreted compare, while the packed-key dict probe stays
entirely in C.  (See DESIGN.md "Performance architecture" for the
measurements.)

``shift`` bounds the node ids and levels a key can encode, so the store
grows it geometrically — an **amortized-doubling rebuild**: when a
freshly appended id reaches ``1 << shift`` the shift is raised and every
unique-table key is re-packed in place (O(live nodes), amortized O(1)
per insert, like vector doubling).  Caches whose keys embed the shift
(registered via :attr:`grow_clears`) are flushed on rebuild — they are
pure memoization, so flushing only costs re-computation.

Retired node ids (from sifting's refcounted retirement) go on a
**free list** and are reused by :meth:`mk` before the columns are
extended, so repeated reorders no longer leak column growth.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["FALSE", "TRUE", "TERMINAL_LEVEL", "NodeStore"]

# Terminal node ids.  They occupy the two first slots of the node columns.
FALSE = 0
TRUE = 1

# Level assigned to terminal nodes; larger than any variable level.
TERMINAL_LEVEL = 1 << 60


class NodeStore:
    """Flat-column node storage plus the packed-key unique table.

    The hot apply kernels in :mod:`repro.bdd.manager` bind these fields
    to locals and inline the find-or-create sequence; :meth:`mk` is the
    method-call form for the cold paths.  Both must follow the same
    protocol:

    1. pack the key with the *current* :attr:`shift`;
    2. on a miss, reuse a free-list id if one exists, else append;
    3. insert into :attr:`unique` **before** checking for growth;
    4. if the appended id was the last one the packing can encode, call
       :meth:`grow` — and re-read :attr:`shift`/:attr:`limit` into any
       locals, since every packed key changed width.

    Inserting before growing is what keeps step 3 safe: the key was
    packed with the old shift, and :meth:`grow` re-packs every entry
    from the columns, the new one included.
    """

    __slots__ = (
        "level",
        "low",
        "high",
        "unique",
        "shift",
        "limit",
        "free",
        "rebuilds",
        "grow_clears",
    )

    #: Initial key width: ids/levels up to 2**18 before the first rebuild.
    INITIAL_SHIFT = 18

    #: Shift increment per rebuild (8x id capacity — geometric growth
    #: keeps rebuild work amortized-constant while flushing the packed
    #: caches as rarely as possible).
    GROWTH_STEP = 3

    def __init__(self) -> None:
        self.level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self.low: List[int] = [FALSE, TRUE]  # unused for terminals
        self.high: List[int] = [FALSE, TRUE]
        # packed (level, low, high) -> node id
        self.unique: Dict[int, int] = {}
        self.shift = self.INITIAL_SHIFT
        self.limit = 1 << self.INITIAL_SHIFT
        # Retired node ids available for reuse (filled by sifting).
        self.free: List[int] = []
        self.rebuilds = 0
        # Caches keyed by shift-packed ints; cleared in place on grow()
        # so kernel locals aliasing them stay valid.
        self.grow_clears: Tuple[Dict[int, int], ...] = ()

    # ------------------------------------------------------------------

    def key(self, level: int, low: int, high: int) -> int:
        """Pack a node triple with the current shift."""
        s = self.shift
        return ((level << s) | low) << s | high

    def mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduced form)."""
        if low == high:
            return low
        s = self.shift
        key = ((level << s) | low) << s | high
        node = self.unique.get(key)
        if node is None:
            free = self.free
            if free:
                node = free.pop()
                self.level[node] = level
                self.low[node] = low
                self.high[node] = high
            else:
                node = len(self.level)
                self.level.append(level)
                self.low.append(low)
                self.high.append(high)
            self.unique[key] = node
            if node + 1 >= self.limit:
                self.grow()
        return node

    def grow(self) -> None:
        """Amortized-doubling rebuild: widen the packing and re-key.

        Every unique-table entry is re-packed from the columns (entries
        are always column-consistent at the instant of a rebuild), and
        the shift-keyed operation caches registered in
        :attr:`grow_clears` are flushed.  Both the unique table and the
        caches are mutated *in place*, never replaced, because the apply
        kernels hold direct references to them across the rebuild.
        """
        self.shift += self.GROWTH_STEP
        self.limit = 1 << self.shift
        s = self.shift
        level_, low_, high_ = self.level, self.low, self.high
        fresh = {
            ((level_[n] << s) | low_[n]) << s | high_[n]: n
            for n in self.unique.values()
        }
        self.unique.clear()
        self.unique.update(fresh)
        for cache in self.grow_clears:
            cache.clear()
        self.rebuilds += 1

    # ------------------------------------------------------------------

    def retire(self, node: int) -> None:
        """Put a dead node id on the free list for reuse by :meth:`mk`.

        The caller must have removed the node's unique-table entry and
        dropped every reference to it (sifting's refcounted retirement).
        """
        self.free.append(node)

    def load_factor(self) -> float:
        """Unique-table entries per encodable id — table-health gauge."""
        return len(self.unique) / self.limit
