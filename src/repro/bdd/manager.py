"""A from-scratch reduced ordered binary decision diagram (ROBDD) engine.

The paper (Section 5) attributes much of SPLLIFT's performance to encoding
feature constraints as reduced BDDs: equality and ``is false`` checks are
constant time on the canonical representation, and conjunction/disjunction
are efficient and memoized.  The original implementation used JavaBDD backed
by BuDDy; this module provides the equivalent engine in pure Python.

Nodes are interned integers managed by a :class:`BDDManager`.  Node ``0`` is
the ``false`` terminal and node ``1`` the ``true`` terminal.  Every internal
node is uniquely identified by its ``(level, low, high)`` triple, which makes
the representation canonical: two BDDs represent the same Boolean function if
and only if they are the same integer.

Example
-------
>>> mgr = BDDManager()
>>> f, g = mgr.var("F"), mgr.var("G")
>>> fn = mgr.and_(f, mgr.not_(g))
>>> mgr.is_false(mgr.and_(fn, g))
True
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["BDDManager", "BDDError"]


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variables, foreign nodes)."""


# Terminal node ids.  They occupy the two first slots of the node arrays.
FALSE = 0
TRUE = 1

# Level assigned to terminal nodes; larger than any variable level.
_TERMINAL_LEVEL = 1 << 60


class BDDManager:
    """Owns the unique table, operation caches and the variable order.

    All BDD nodes live inside a single manager and are plain ``int`` handles.
    Handles from different managers must never be mixed; operations check a
    lightweight invariant (node id must exist in this manager's tables).

    Parameters
    ----------
    ordering:
        Optional initial variable order (first variable = topmost level).
        Variables can also be created on demand with :meth:`var`; new
        variables are appended below all existing ones.
    """

    def __init__(self, ordering: Optional[Sequence[str]] = None) -> None:
        # Node storage: parallel lists indexed by node id.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]  # unused for terminals
        self._high: List[int] = [FALSE, TRUE]
        # (level, low, high) -> node id
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Variable bookkeeping.
        self._var_level: Dict[str, int] = {}
        self._level_var: List[str] = []
        # Memoization caches.
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}
        self._apply_hits = 0
        self._apply_misses = 0
        self._not_cache: Dict[int, int] = {}
        self._restrict_cache: Dict[Tuple[int, int, bool], int] = {}
        self._satcount_cache: Dict[int, int] = {}
        self._support_cache: Dict[int, frozenset] = {}
        if ordering is not None:
            for name in ordering:
                self.var(name)

    # ------------------------------------------------------------------
    # Constants and variables
    # ------------------------------------------------------------------

    @property
    def false(self) -> int:
        """The ``false`` terminal."""
        return FALSE

    @property
    def true(self) -> int:
        """The ``true`` terminal."""
        return TRUE

    def var(self, name: str) -> int:
        """Return the BDD for variable ``name``, declaring it if necessary.

        Newly declared variables are placed below all existing variables in
        the order.
        """
        level = self._var_level.get(name)
        if level is None:
            level = len(self._level_var)
            self._var_level[name] = level
            self._level_var.append(name)
            # Cached counts are normalized against the number of declared
            # variables, so they are invalidated by a new declaration.
            self._satcount_cache.clear()
        return self._mk(level, FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Return the BDD for the negation of variable ``name``."""
        level = self._var_level.get(name)
        if level is None:
            self.var(name)
            level = self._var_level[name]
        return self._mk(level, TRUE, FALSE)

    @property
    def variables(self) -> Tuple[str, ...]:
        """All declared variable names in order (topmost first)."""
        return tuple(self._level_var)

    def has_var(self, name: str) -> bool:
        """True if ``name`` has been declared in this manager."""
        return name in self._var_level

    def level_of(self, name: str) -> int:
        """The order level of variable ``name`` (0 = topmost)."""
        try:
            return self._var_level[name]
        except KeyError:
            raise BDDError(f"unknown BDD variable: {name!r}") from None

    def var_at_level(self, level: int) -> str:
        """The variable name sitting at ``level``."""
        return self._level_var[level]

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduced form)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._level):
            raise BDDError(f"node {node} does not belong to this manager")

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def is_terminal(self, node: int) -> bool:
        """True for the two terminal nodes."""
        return node <= TRUE

    def is_true(self, node: int) -> bool:
        """Constant-time check: is this the ``true`` function?"""
        return node == TRUE

    def is_false(self, node: int) -> bool:
        """Constant-time check: is this the ``false`` function?

        Because the representation is canonical, a contradictory constraint
        always reduces to the ``false`` terminal; this check is what enables
        SPLLIFT's early termination (Section 4.2 of the paper).
        """
        return node == FALSE

    def top_var(self, node: int) -> str:
        """Name of the decision variable at the root of ``node``."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no decision variable")
        return self._level_var[self._level[node]]

    def low(self, node: int) -> int:
        """The ``else`` (variable = false) child."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no children")
        return self._low[node]

    def high(self, node: int) -> int:
        """The ``then`` (variable = true) child."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no children")
        return self._high[node]

    def node_count(self, node: int) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        self._check(node)
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            stack.append(self._low[current])
            stack.append(self._high[current])
        return len(seen)

    def total_nodes(self) -> int:
        """Total number of nodes ever interned (terminals included)."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def not_(self, node: int) -> int:
        """Negation."""
        self._check(node)
        cached = self._not_cache.get(node)
        if cached is not None:
            return cached
        if node == FALSE:
            result = TRUE
        elif node == TRUE:
            result = FALSE
        else:
            result = self._mk(
                self._level[node],
                self.not_(self._low[node]),
                self.not_(self._high[node]),
            )
        self._not_cache[node] = result
        return result

    def _apply(
        self,
        op_name: str,
        op: Callable[[int, int], Optional[int]],
        f: int,
        g: int,
    ) -> int:
        """Generic memoized apply.  ``op`` returns a terminal for decided
        operand pairs and ``None`` when recursion must continue."""
        decided = op(f, g)
        if decided is not None:
            return decided
        key = (op_name, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            self._apply_hits += 1
            return cached
        self._apply_misses += 1
        level_f, level_g = self._level[f], self._level[g]
        level = min(level_f, level_g)
        f_low, f_high = (self._low[f], self._high[f]) if level_f == level else (f, f)
        g_low, g_high = (self._low[g], self._high[g]) if level_g == level else (g, g)
        result = self._mk(
            level,
            self._apply(op_name, op, f_low, g_low),
            self._apply(op_name, op, f_high, g_high),
        )
        self._apply_cache[key] = result
        return result

    @staticmethod
    def _and_op(f: int, g: int) -> Optional[int]:
        if f == FALSE or g == FALSE:
            return FALSE
        if f == TRUE:
            return g
        if g == TRUE:
            return f
        if f == g:
            return f
        return None

    @staticmethod
    def _or_op(f: int, g: int) -> Optional[int]:
        if f == TRUE or g == TRUE:
            return TRUE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        if f == g:
            return f
        return None

    @staticmethod
    def _xor_op(f: int, g: int) -> Optional[int]:
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        if g == FALSE:
            return f
        return None

    def and_(self, f: int, g: int) -> int:
        """Conjunction (commutative; arguments normalized for the cache)."""
        self._check(f)
        self._check(g)
        if g < f:
            f, g = g, f
        return self._apply("and", self._and_op, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction (commutative; arguments normalized for the cache)."""
        self._check(f)
        self._check(g)
        if g < f:
            f, g = g, f
        return self._apply("or", self._or_op, f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        self._check(f)
        self._check(g)
        if g < f:
            f, g = g, f
        return self._apply("xor", self._xor_op, f, g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g`` as ``not f or g``."""
        return self.or_(self.not_(f), g)

    def iff(self, f: int, g: int) -> int:
        """Bi-implication ``f <-> g``."""
        return self.not_(self.xor(f, g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``."""
        return self.or_(self.and_(f, g), self.and_(self.not_(f), h))

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of all ``nodes`` (``true`` if empty)."""
        result = TRUE
        for node in nodes:
            result = self.and_(result, node)
            if result == FALSE:
                return FALSE
        return result

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of all ``nodes`` (``false`` if empty)."""
        result = FALSE
        for node in nodes:
            result = self.or_(result, node)
            if result == TRUE:
                return TRUE
        return result

    def entails(self, f: int, g: int) -> bool:
        """True if ``f`` implies ``g`` for all assignments."""
        return self.implies(f, g) == TRUE

    def equiv(self, f: int, g: int) -> bool:
        """True if ``f`` and ``g`` denote the same function.

        On a canonical representation this is pointer equality.
        """
        self._check(f)
        self._check(g)
        return f == g

    # ------------------------------------------------------------------
    # Cofactors, evaluation, support
    # ------------------------------------------------------------------

    def restrict(self, node: int, name: str, value: bool) -> int:
        """Cofactor of ``node`` with variable ``name`` fixed to ``value``."""
        self._check(node)
        level = self.level_of(name)
        return self._restrict(node, level, value)

    def _restrict(self, node: int, level: int, value: bool) -> int:
        if self._level[node] > level:
            # Terminal, or node entirely below the restricted variable on a
            # branch where the variable was skipped.
            return node
        key = (node, level, value)
        cached = self._restrict_cache.get(key)
        if cached is not None:
            return cached
        node_level = self._level[node]
        if node_level == level:
            result = self._high[node] if value else self._low[node]
        else:
            result = self._mk(
                node_level,
                self._restrict(self._low[node], level, value),
                self._restrict(self._high[node], level, value),
            )
        self._restrict_cache[key] = result
        return result

    def exists(self, node: int, names: Iterable[str]) -> int:
        """Existential quantification of ``names`` out of ``node``."""
        self._check(node)
        result = node
        for name in names:
            if name not in self._var_level:
                continue
            level = self._var_level[name]
            result = self.or_(
                self._restrict(result, level, False),
                self._restrict(result, level, True),
            )
        return result

    def forall(self, node: int, names: Iterable[str]) -> int:
        """Universal quantification of ``names`` out of ``node``."""
        self._check(node)
        result = node
        for name in names:
            if name not in self._var_level:
                continue
            level = self._var_level[name]
            result = self.and_(
                self._restrict(result, level, False),
                self._restrict(result, level, True),
            )
        return result

    def evaluate(self, node: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the node's support.

        Variables missing from ``assignment`` raise :class:`BDDError` when
        the evaluation actually branches on them.
        """
        self._check(node)
        while node > TRUE:
            name = self._level_var[self._level[node]]
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(
                    f"assignment does not cover variable {name!r}"
                ) from None
            node = self._high[node] if value else self._low[node]
        return node == TRUE

    def support(self, node: int) -> frozenset:
        """The set of variable names the function actually depends on."""
        self._check(node)
        cached = self._support_cache.get(node)
        if cached is not None:
            return cached
        if node <= TRUE:
            result: frozenset = frozenset()
        else:
            result = (
                frozenset((self._level_var[self._level[node]],))
                | self.support(self._low[node])
                | self.support(self._high[node])
            )
        self._support_cache[node] = result
        return result

    # ------------------------------------------------------------------
    # Model counting and enumeration
    # ------------------------------------------------------------------

    def satcount(self, node: int, over: Optional[Iterable[str]] = None) -> int:
        """Number of satisfying assignments.

        By default counts over *all* declared variables.  Pass ``over`` to
        count over a specific variable set (it must be a superset of the
        node's support).
        """
        self._check(node)
        if over is None:
            names = set(self._level_var)
        else:
            names = set(over)
            missing = self.support(node) - names
            if missing:
                raise BDDError(
                    f"satcount variable set misses support variables: "
                    f"{sorted(missing)}"
                )
        raw = self._satcount_raw(node)
        # _satcount_raw counts over all declared variables below the root;
        # rescale to the requested variable set.
        total_declared = len(self._level_var)
        scale_down = total_declared - len(names & set(self._level_var))
        extra = len(names - set(self._level_var))
        count = raw >> scale_down if scale_down >= 0 else raw
        return count << extra

    def _satcount_raw(self, node: int) -> int:
        """Satisfying assignments over all declared variables."""
        total = len(self._level_var)
        cached = self._satcount_cache.get(node)
        if cached is not None:
            return cached

        def rec(current: int) -> int:
            # Returns count over variables at levels >= level of current,
            # normalized as if current sat at level `self._level[current]`.
            if current == FALSE:
                return 0
            if current == TRUE:
                return 1
            memo = self._satcount_cache.get(current)
            if memo is not None:
                return memo
            level = self._level[current]
            low, high = self._low[current], self._high[current]
            low_level = total if low <= TRUE else self._level[low]
            high_level = total if high <= TRUE else self._level[high]
            count = rec(low) * (1 << (low_level - level - 1)) + rec(high) * (
                1 << (high_level - level - 1)
            )
            self._satcount_cache[current] = count
            return count

        root_level = total if node <= TRUE else self._level[node]
        result = rec(node) * (1 << root_level)
        return result

    def iter_models(
        self, node: int, over: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """Yield every satisfying total assignment over ``over``.

        ``over`` defaults to all declared variables; it must cover the
        node's support.  Deterministic order (variable order, false first).
        """
        self._check(node)
        if over is None:
            names: Tuple[str, ...] = tuple(self._level_var)
        else:
            names = tuple(over)
            missing = self.support(node) - set(names)
            if missing:
                raise BDDError(
                    f"model variable set misses support variables: "
                    f"{sorted(missing)}"
                )

        def rec(index: int, current: int, partial: Dict[str, bool]) -> Iterator[Dict[str, bool]]:
            if index == len(names):
                if current == TRUE:
                    yield dict(partial)
                return
            name = names[index]
            level = self._var_level.get(name, _TERMINAL_LEVEL)
            at_this_var = current > TRUE and self._level[current] == level
            for value in (False, True):
                if at_this_var:
                    child = self._high[current] if value else self._low[current]
                else:
                    child = current
                if child == FALSE:
                    continue
                partial[name] = value
                yield from rec(index + 1, child, partial)
                del partial[name]

        # If `over` is not in manager order, fall back to evaluate-based
        # enumeration to keep the requested variable order in the output.
        levels = [self._var_level.get(n, _TERMINAL_LEVEL) for n in names]
        if levels != sorted(levels):
            # Reorder internally but emit dicts keyed by all names anyway;
            # dict key order does not affect semantics.
            ordered = sorted(names, key=lambda n: self._var_level.get(n, _TERMINAL_LEVEL))
            for model in self.iter_models(node, ordered):
                yield {name: model[name] for name in names}
            return
        yield from rec(0, node, {})

    def any_model(self, node: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment of the node's support, or ``None``.

        Variables outside the support are omitted (free to take any value).
        """
        self._check(node)
        if node == FALSE:
            return None
        model: Dict[str, bool] = {}
        current = node
        while current > TRUE:
            name = self._level_var[self._level[current]]
            if self._low[current] != FALSE:
                model[name] = False
                current = self._low[current]
            else:
                model[name] = True
                current = self._high[current]
        return model

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_expr_string(self, node: int) -> str:
        """A human-readable sum-of-products rendering (for small BDDs)."""
        if node == FALSE:
            return "false"
        if node == TRUE:
            return "true"
        cubes: List[str] = []
        for cube in self._iter_cubes(node):
            literals = [
                name if positive else f"!{name}" for name, positive in cube
            ]
            cubes.append(" & ".join(literals))
        return " | ".join(cubes)

    def _iter_cubes(self, node: int) -> Iterator[Tuple[Tuple[str, bool], ...]]:
        """Yield the BDD's paths to ``true`` as cubes of literals."""
        path: List[Tuple[str, bool]] = []

        def rec(current: int) -> Iterator[Tuple[Tuple[str, bool], ...]]:
            if current == FALSE:
                return
            if current == TRUE:
                yield tuple(path)
                return
            name = self._level_var[self._level[current]]
            path.append((name, False))
            yield from rec(self._low[current])
            path.pop()
            path.append((name, True))
            yield from rec(self._high[current])
            path.pop()

        yield from rec(node)

    def to_dot(self, node: int, name: str = "bdd") -> str:
        """Graphviz DOT rendering of the BDD rooted at ``node``."""
        self._check(node)
        lines = [f"digraph {name} {{", "  rankdir=TB;"]
        lines.append('  n0 [shape=box, label="0"];')
        lines.append('  n1 [shape=box, label="1"];')
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            label = self._level_var[self._level[current]]
            lines.append(f'  n{current} [shape=circle, label="{label}"];')
            low, high = self._low[current], self._high[current]
            lines.append(f"  n{current} -> n{low} [style=dashed];")
            lines.append(f"  n{current} -> n{high} [style=solid];")
            stack.extend((low, high))
        lines.append("}")
        return "\n".join(lines)

    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the internal caches (for diagnostics and benchmarks)."""
        return {
            "nodes": len(self._level),
            "unique_entries": len(self._unique),
            "apply_cache": len(self._apply_cache),
            "apply_cache_hits": self._apply_hits,
            "apply_cache_misses": self._apply_misses,
            "not_cache": len(self._not_cache),
            "restrict_cache": len(self._restrict_cache),
        }
