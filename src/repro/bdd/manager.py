"""A from-scratch reduced ordered binary decision diagram (ROBDD) engine.

The paper (Section 5) attributes much of SPLLIFT's performance to encoding
feature constraints as reduced BDDs: equality and ``is false`` checks are
constant time on the canonical representation, and conjunction/disjunction
are efficient and memoized.  The original implementation used JavaBDD backed
by BuDDy; this module provides the equivalent engine in pure Python.

Nodes are interned integers managed by a :class:`BDDManager`.  Node ``0`` is
the ``false`` terminal and node ``1`` the ``true`` terminal.  Every internal
node is uniquely identified by its ``(level, low, high)`` triple, which makes
the representation canonical: two BDDs represent the same Boolean function if
and only if they are the same integer.

Storage is data-oriented (:mod:`repro.bdd.tables`): nodes live in flat
parallel columns, the unique table and all operation caches are keyed by
packed integers instead of tuples, and the binary apply kernels are
per-opcode "frame machines" — one mutable frame per expanded operand
pair, with child resolution, cache probes and node construction all
inlined on locals-bound columns, so the hot loop allocates one list per
cache miss and nothing per probe.  All traversals (``apply``, negation,
cofactors, model counting, support, cube/model enumeration) run on
explicit work stacks rather than Python recursion, so the engine handles
orderings thousands of variables deep without tripping
``sys.getrecursionlimit()``.  The manager also implements Rudell-style
sifting (:meth:`sift`) for dynamic variable reordering; the paper's
Section 5 leaves ordering as future work.

Example
-------
>>> mgr = BDDManager()
>>> f, g = mgr.var("F"), mgr.var("G")
>>> fn = mgr.and_(f, mgr.not_(g))
>>> mgr.is_false(mgr.and_(fn, g))
True
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.bdd.tables import FALSE, TRUE, TERMINAL_LEVEL, NodeStore
from repro.obs import runtime as obs

__all__ = ["BDDManager", "BDDError"]


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variables, foreign nodes)."""


# Backwards-compatible alias; the canonical definition lives in tables.py.
_TERMINAL_LEVEL = TERMINAL_LEVEL

# Integer opcodes for the apply dispatch (`_reduce_balanced` and friends).
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2

# Soft per-opcode computed-table capacity.  The apply/restrict caches are
# lossy: when one crosses this many entries at kernel entry it is flushed
# wholesale (the BuDDy/CUDD computed table is likewise lossy, overwriting
# on collision).  Flushing is always sound — the caches are pure
# memoization — and bounds cache memory on adversarial workloads.
_CACHE_CAPACITY = 1 << 18


class BDDManager:
    """Owns the unique table, operation caches and the variable order.

    All BDD nodes live inside a single manager and are plain ``int`` handles.
    Handles from different managers must never be mixed; operations check a
    lightweight invariant (node id must exist in this manager's tables).

    Parameters
    ----------
    ordering:
        Optional initial variable order (first variable = topmost level).
        Variables can also be created on demand with :meth:`var`; new
        variables are appended below all existing ones.
    """

    def __init__(self, ordering: Optional[Sequence[str]] = None) -> None:
        # Node columns + packed-key unique table (see repro.bdd.tables).
        self._store = NodeStore()
        # Variable bookkeeping.
        self._var_level: Dict[str, int] = {}
        self._level_var: List[str] = []
        # Memoization caches.  The binary-op caches are per opcode, keyed
        # by the packed operand pair `(a << shift) | b`; they and the
        # restrict cache embed the store's shift in their keys, so the
        # store flushes them on an amortized-doubling rebuild.
        self._and_cache: Dict[int, int] = {}
        self._or_cache: Dict[int, int] = {}
        self._xor_cache: Dict[int, int] = {}
        self._restrict_cache: Dict[int, int] = {}
        self._store.grow_clears = (
            self._and_cache,
            self._or_cache,
            self._xor_cache,
            self._restrict_cache,
        )
        self._not_cache: Dict[int, int] = {}
        self._satcount_cache: Dict[int, int] = {}
        self._support_cache: Dict[int, frozenset] = {}
        # Unified apply accounting: one (hit or miss) tick per cache
        # probe, wherever the probe happens — top-level fast path and
        # in-kernel probes share the same counters.
        self._apply_hits = 0
        self._apply_misses = 0
        self._apply_calls = 0
        self._cache_flushes = 0
        # Reordering counters.
        self._reorders = 0
        self._reorder_swaps = 0
        if ordering is not None:
            for name in ordering:
                self.var(name)

    # ------------------------------------------------------------------
    # Constants and variables
    # ------------------------------------------------------------------

    @property
    def false(self) -> int:
        """The ``false`` terminal."""
        return FALSE

    @property
    def true(self) -> int:
        """The ``true`` terminal."""
        return TRUE

    def var(self, name: str) -> int:
        """Return the BDD for variable ``name``, declaring it if necessary.

        Newly declared variables are placed below all existing variables in
        the order.
        """
        level = self._var_level.get(name)
        if level is None:
            level = len(self._level_var)
            self._var_level[name] = level
            self._level_var.append(name)
            # Cached counts are normalized against the number of declared
            # variables, so they are invalidated by a new declaration.
            self._satcount_cache.clear()
        return self._store.mk(level, FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Return the BDD for the negation of variable ``name``."""
        level = self._var_level.get(name)
        if level is None:
            self.var(name)
            level = self._var_level[name]
        return self._store.mk(level, TRUE, FALSE)

    @property
    def variables(self) -> Tuple[str, ...]:
        """All declared variable names in order (topmost first)."""
        return tuple(self._level_var)

    def has_var(self, name: str) -> bool:
        """True if ``name`` has been declared in this manager."""
        return name in self._var_level

    def level_of(self, name: str) -> int:
        """The order level of variable ``name`` (0 = topmost)."""
        try:
            return self._var_level[name]
        except KeyError:
            raise BDDError(f"unknown BDD variable: {name!r}") from None

    def var_at_level(self, level: int) -> str:
        """The variable name sitting at ``level``."""
        return self._level_var[level]

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduced form)."""
        return self._store.mk(level, low, high)

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._store.level):
            raise BDDError(f"node {node} does not belong to this manager")

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def is_terminal(self, node: int) -> bool:
        """True for the two terminal nodes."""
        return node <= TRUE

    def is_true(self, node: int) -> bool:
        """Constant-time check: is this the ``true`` function?"""
        return node == TRUE

    def is_false(self, node: int) -> bool:
        """Constant-time check: is this the ``false`` function?

        Because the representation is canonical, a contradictory constraint
        always reduces to the ``false`` terminal; this check is what enables
        SPLLIFT's early termination (Section 4.2 of the paper).
        """
        return node == FALSE

    def top_var(self, node: int) -> str:
        """Name of the decision variable at the root of ``node``."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no decision variable")
        return self._level_var[self._store.level[node]]

    def low(self, node: int) -> int:
        """The ``else`` (variable = false) child."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no children")
        return self._store.low[node]

    def high(self, node: int) -> int:
        """The ``then`` (variable = true) child."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no children")
        return self._store.high[node]

    def node_count(self, node: int) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        self._check(node)
        seen = set()
        add = seen.add
        stack = [node]
        push = stack.append
        pop = stack.pop
        low_, high_ = self._store.low, self._store.high
        while stack:
            current = pop()
            if current <= TRUE or current in seen:
                continue
            add(current)
            push(low_[current])
            push(high_[current])
        return len(seen)

    def total_nodes(self) -> int:
        """Size of the node columns (terminals included).

        Retired slots awaiting reuse count too; this is the storage
        footprint, not the live-node count (see :meth:`live_nodes`).
        """
        return len(self._store.level)

    def live_nodes(self) -> int:
        """Number of registered (unique-table) internal nodes plus terminals.

        Unlike :meth:`total_nodes` this excludes nodes retired by
        :meth:`sift`; it is the size metric reorder triggers should use.
        """
        return len(self._store.unique) + 2

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def not_(self, node: int) -> int:
        """Negation (iterative; memoized per node)."""
        self._check(node)
        cache = self._not_cache
        cached = cache.get(node)
        if cached is not None:
            return cached
        if node <= TRUE:
            result = TRUE - node
            cache[node] = result
            return result
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        unique = store.unique
        unique_get = unique.get
        free = store.free
        s = store.shift
        limit = store.limit
        stack = [node]
        push = stack.append
        while stack:
            current = stack[-1]
            if current in cache:
                stack.pop()
                continue
            low, high = low_[current], high_[current]
            pending = False
            if low > TRUE and low not in cache:
                push(low)
                pending = True
            if high > TRUE and high not in cache:
                push(high)
                pending = True
            if pending:
                continue
            stack.pop()
            nlow = TRUE - low if low <= TRUE else cache[low]
            nhigh = TRUE - high if high <= TRUE else cache[high]
            # Negation never merges children (nlow == nhigh would imply
            # low == high), so the node is created unconditionally.
            level = level_[current]
            mkey = ((level << s) | nlow) << s | nhigh
            res = unique_get(mkey)
            if res is None:
                if free:
                    res = free.pop()
                    level_[res] = level
                    low_[res] = nlow
                    high_[res] = nhigh
                    unique[mkey] = res
                else:
                    res = len(level_)
                    level_.append(level)
                    low_.append(nlow)
                    high_.append(nhigh)
                    unique[mkey] = res
                    if res + 1 >= limit:
                        store.grow()
                        s = store.shift
                        limit = store.limit
            cache[current] = res
        return cache[node]

    def and_(self, f: int, g: int) -> int:
        """Conjunction (commutative; arguments normalized for the cache).

        Terminal cases and the single computed-table probe happen here —
        a hit returns without entering the kernel at all; a miss drops
        straight into the frame machine, which expands the root pair
        without re-probing it.
        """
        store = self._store
        n = len(store.level)
        if not (0 <= f < n and 0 <= g < n):
            self._check(f)
            self._check(g)
        if g < f:
            f, g = g, f
        if f == FALSE:
            return FALSE
        if f == TRUE or f == g:
            return g if f == TRUE else f
        self._apply_calls += 1
        res = self._and_cache.get((f << store.shift) | g)
        if res is not None:
            self._apply_hits += 1
            return res
        return self._apply_and(f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction (commutative; arguments normalized for the cache)."""
        store = self._store
        n = len(store.level)
        if not (0 <= f < n and 0 <= g < n):
            self._check(f)
            self._check(g)
        if g < f:
            f, g = g, f
        if f == TRUE:
            return TRUE
        if f == FALSE or f == g:
            return g if f == FALSE else f
        self._apply_calls += 1
        res = self._or_cache.get((f << store.shift) | g)
        if res is not None:
            self._apply_hits += 1
            return res
        return self._apply_or(f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        store = self._store
        n = len(store.level)
        if not (0 <= f < n and 0 <= g < n):
            self._check(f)
            self._check(g)
        if g < f:
            f, g = g, f
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        self._apply_calls += 1
        res = self._xor_cache.get((f << store.shift) | g)
        if res is not None:
            self._apply_hits += 1
            return res
        return self._apply_xor(f, g)

    # Each binary operation has its own frame-machine kernel.  The three
    # kernels are structurally identical (only the inline terminal
    # decisions differ — compare the `res =` blocks at the top of the
    # resolve loop); keeping them specialized avoids a per-step opcode
    # dispatch and lets each probe its own single-opcode cache with a
    # two-int packed key.
    #
    # Kernel shape: the public wrapper already probed the computed table,
    # so entry means the root pair is a guaranteed miss.  The outer loop
    # expands one missed pair, resolving both child pairs *in place*
    # (terminal rules, then the cache) before a frame is ever allocated.
    # A pair whose children both resolve costs no frame at all; otherwise
    # one mutable frame [key, level, low_result, a_high, b_high] parks
    # the resolved half while the missed child expands — `key` is the
    # pair's packed cache key, computed once at probe time, so the
    # combine step never re-packs (store growth re-shifts packing, so the
    # mk path repacks every in-flight frame key when it triggers a grow).
    # The combine loop interns the node (free-list reuse, then append
    # with amortized-doubling growth), caches the pair's result and feeds
    # it into the parent frame — probing the parent's high pair inline so
    # a frame is popped the moment its second half arrives.  At most one
    # frame and zero tuples per cache miss.

    def _apply_and(self, a: int, b: int, FALSE=FALSE, TRUE=TRUE) -> int:
        """AND kernel; operands are internal, normalized ``a < b``, and
        already known to miss the computed table (the wrapper probed).

        The terminal ids ride in as default arguments so the hot loop
        reads them with ``LOAD_FAST`` instead of a global lookup.
        """
        store = self._store
        cache = self._and_cache
        if len(cache) >= _CACHE_CAPACITY:
            cache.clear()
            self._cache_flushes += 1
        s = store.shift
        key = (a << s) | b
        hits = 0
        misses = 1
        limit = store.limit
        level_, low_, high_ = store.level, store.low, store.high
        unique = store.unique
        unique_get = unique.get
        free = store.free
        cache_get = cache.get
        stack: List[list] = []
        push = stack.append
        while True:
            # Expand the missed pair (a, b) whose cache key is `key`;
            # child keys are packed once at probe time and travel with
            # the frame, so the combine step never re-packs.
            la = level_[a]
            lb = level_[b]
            if la < lb:
                level = la
                a0, a1 = low_[a], high_[a]
                b0 = b1 = b
            elif lb < la:
                level = lb
                a0 = a1 = a
                b0, b1 = low_[b], high_[b]
            else:
                level = la
                a0, a1 = low_[a], high_[a]
                b0, b1 = low_[b], high_[b]
            # Resolve the low pair in place: terminal rules, then cache.
            if b0 < a0:
                a0, b0 = b0, a0
            if a0 == FALSE:
                r0 = FALSE
            elif a0 == TRUE or a0 == b0:
                r0 = b0 if a0 == TRUE else a0
            else:
                ck = (a0 << s) | b0
                r0 = cache_get(ck)
                if r0 is None:
                    misses += 1
                    push([key, level, None, a1, b1])
                    a, b, key = a0, b0, ck
                    continue
                hits += 1
            # Low half resolved: try the high pair the same way.
            if b1 < a1:
                a1, b1 = b1, a1
            if a1 == FALSE:
                res = FALSE
            elif a1 == TRUE or a1 == b1:
                res = b1 if a1 == TRUE else a1
            else:
                ck = (a1 << s) | b1
                res = cache_get(ck)
                if res is None:
                    misses += 1
                    push([key, level, r0, a1, b1])
                    a, b, key = a1, b1, ck
                    continue
                hits += 1
            # Both halves in hand, no frame needed: combine and unwind.
            while True:
                if r0 != res:
                    mkey = ((level << s) | r0) << s | res
                    node = unique_get(mkey)
                    if node is None:
                        if free:
                            node = free.pop()
                            level_[node] = level
                            low_[node] = r0
                            high_[node] = res
                            unique[mkey] = node
                        else:
                            node = len(level_)
                            level_.append(level)
                            low_.append(r0)
                            high_.append(res)
                            unique[mkey] = node
                            if node + 1 >= limit:
                                # Growth re-shifts key packing: repack
                                # the in-flight pair keys (store.grow()
                                # already re-keyed the unique table and
                                # cleared the caches in place).
                                old = s
                                store.grow()
                                s = store.shift
                                limit = store.limit
                                mask = (1 << old) - 1
                                key = ((key >> old) << s) | (key & mask)
                                for fr in stack:
                                    k = fr[0]
                                    fr[0] = ((k >> old) << s) | (k & mask)
                    res = node
                cache[key] = res
                if not stack:
                    self._apply_hits += hits
                    self._apply_misses += misses
                    return res
                frame = stack.pop()
                low_r = frame[2]
                if low_r is None:
                    # `res` is the parent's low half; probe its high pair.
                    a1, b1 = frame[3], frame[4]
                    if b1 < a1:
                        a1, b1 = b1, a1
                    if a1 == FALSE:
                        r1 = FALSE
                    elif a1 == TRUE or a1 == b1:
                        r1 = b1 if a1 == TRUE else a1
                    else:
                        ck = (a1 << s) | b1
                        r1 = cache_get(ck)
                        if r1 is None:
                            misses += 1
                            frame[2] = res
                            push(frame)
                            a, b, key = a1, b1, ck
                            break
                        hits += 1
                    key, level, r0 = frame[0], frame[1], res
                    res = r1
                    continue
                # `res` is the parent's high half: combine it.
                key, level, r0 = frame[0], frame[1], low_r

    def _apply_or(self, a: int, b: int, FALSE=FALSE, TRUE=TRUE) -> int:
        """OR kernel; operands are internal, normalized ``a < b``, and
        already known to miss the computed table (the wrapper probed)."""
        store = self._store
        cache = self._or_cache
        if len(cache) >= _CACHE_CAPACITY:
            cache.clear()
            self._cache_flushes += 1
        s = store.shift
        key = (a << s) | b
        hits = 0
        misses = 1
        limit = store.limit
        level_, low_, high_ = store.level, store.low, store.high
        unique = store.unique
        unique_get = unique.get
        free = store.free
        cache_get = cache.get
        stack: List[list] = []
        push = stack.append
        while True:
            la = level_[a]
            lb = level_[b]
            if la < lb:
                level = la
                a0, a1 = low_[a], high_[a]
                b0 = b1 = b
            elif lb < la:
                level = lb
                a0 = a1 = a
                b0, b1 = low_[b], high_[b]
            else:
                level = la
                a0, a1 = low_[a], high_[a]
                b0, b1 = low_[b], high_[b]
            if b0 < a0:
                a0, b0 = b0, a0
            if a0 == TRUE:
                r0 = TRUE
            elif a0 == FALSE or a0 == b0:
                r0 = b0 if a0 == FALSE else a0
            else:
                ck = (a0 << s) | b0
                r0 = cache_get(ck)
                if r0 is None:
                    misses += 1
                    push([key, level, None, a1, b1])
                    a, b, key = a0, b0, ck
                    continue
                hits += 1
            if b1 < a1:
                a1, b1 = b1, a1
            if a1 == TRUE:
                res = TRUE
            elif a1 == FALSE or a1 == b1:
                res = b1 if a1 == FALSE else a1
            else:
                ck = (a1 << s) | b1
                res = cache_get(ck)
                if res is None:
                    misses += 1
                    push([key, level, r0, a1, b1])
                    a, b, key = a1, b1, ck
                    continue
                hits += 1
            while True:
                if r0 != res:
                    mkey = ((level << s) | r0) << s | res
                    node = unique_get(mkey)
                    if node is None:
                        if free:
                            node = free.pop()
                            level_[node] = level
                            low_[node] = r0
                            high_[node] = res
                            unique[mkey] = node
                        else:
                            node = len(level_)
                            level_.append(level)
                            low_.append(r0)
                            high_.append(res)
                            unique[mkey] = node
                            if node + 1 >= limit:
                                old = s
                                store.grow()
                                s = store.shift
                                limit = store.limit
                                mask = (1 << old) - 1
                                key = ((key >> old) << s) | (key & mask)
                                for fr in stack:
                                    k = fr[0]
                                    fr[0] = ((k >> old) << s) | (k & mask)
                    res = node
                cache[key] = res
                if not stack:
                    self._apply_hits += hits
                    self._apply_misses += misses
                    return res
                frame = stack.pop()
                low_r = frame[2]
                if low_r is None:
                    a1, b1 = frame[3], frame[4]
                    if b1 < a1:
                        a1, b1 = b1, a1
                    if a1 == TRUE:
                        r1 = TRUE
                    elif a1 == FALSE or a1 == b1:
                        r1 = b1 if a1 == FALSE else a1
                    else:
                        ck = (a1 << s) | b1
                        r1 = cache_get(ck)
                        if r1 is None:
                            misses += 1
                            frame[2] = res
                            push(frame)
                            a, b, key = a1, b1, ck
                            break
                        hits += 1
                    key, level, r0 = frame[0], frame[1], res
                    res = r1
                    continue
                key, level, r0 = frame[0], frame[1], low_r

    def _apply_xor(self, a: int, b: int, FALSE=FALSE, TRUE=TRUE) -> int:
        """XOR kernel; operands are internal, normalized ``a < b``, and
        already known to miss the computed table (the wrapper probed)."""
        store = self._store
        cache = self._xor_cache
        if len(cache) >= _CACHE_CAPACITY:
            cache.clear()
            self._cache_flushes += 1
        s = store.shift
        key = (a << s) | b
        hits = 0
        misses = 1
        limit = store.limit
        level_, low_, high_ = store.level, store.low, store.high
        unique = store.unique
        unique_get = unique.get
        free = store.free
        cache_get = cache.get
        stack: List[list] = []
        push = stack.append
        while True:
            la = level_[a]
            lb = level_[b]
            if la < lb:
                level = la
                a0, a1 = low_[a], high_[a]
                b0 = b1 = b
            elif lb < la:
                level = lb
                a0 = a1 = a
                b0, b1 = low_[b], high_[b]
            else:
                level = la
                a0, a1 = low_[a], high_[a]
                b0, b1 = low_[b], high_[b]
            if b0 < a0:
                a0, b0 = b0, a0
            if a0 == b0:
                r0 = FALSE
            elif a0 == FALSE:
                r0 = b0
            else:
                ck = (a0 << s) | b0
                r0 = cache_get(ck)
                if r0 is None:
                    misses += 1
                    push([key, level, None, a1, b1])
                    a, b, key = a0, b0, ck
                    continue
                hits += 1
            if b1 < a1:
                a1, b1 = b1, a1
            if a1 == b1:
                res = FALSE
            elif a1 == FALSE:
                res = b1
            else:
                ck = (a1 << s) | b1
                res = cache_get(ck)
                if res is None:
                    misses += 1
                    push([key, level, r0, a1, b1])
                    a, b, key = a1, b1, ck
                    continue
                hits += 1
            while True:
                if r0 != res:
                    mkey = ((level << s) | r0) << s | res
                    node = unique_get(mkey)
                    if node is None:
                        if free:
                            node = free.pop()
                            level_[node] = level
                            low_[node] = r0
                            high_[node] = res
                            unique[mkey] = node
                        else:
                            node = len(level_)
                            level_.append(level)
                            low_.append(r0)
                            high_.append(res)
                            unique[mkey] = node
                            if node + 1 >= limit:
                                old = s
                                store.grow()
                                s = store.shift
                                limit = store.limit
                                mask = (1 << old) - 1
                                key = ((key >> old) << s) | (key & mask)
                                for fr in stack:
                                    k = fr[0]
                                    fr[0] = ((k >> old) << s) | (k & mask)
                    res = node
                cache[key] = res
                if not stack:
                    self._apply_hits += hits
                    self._apply_misses += misses
                    return res
                frame = stack.pop()
                low_r = frame[2]
                if low_r is None:
                    a1, b1 = frame[3], frame[4]
                    if b1 < a1:
                        a1, b1 = b1, a1
                    if a1 == b1:
                        r1 = FALSE
                    elif a1 == FALSE:
                        r1 = b1
                    else:
                        ck = (a1 << s) | b1
                        r1 = cache_get(ck)
                        if r1 is None:
                            misses += 1
                            frame[2] = res
                            push(frame)
                            a, b, key = a1, b1, ck
                            break
                        hits += 1
                    key, level, r0 = frame[0], frame[1], res
                    res = r1
                    continue
                key, level, r0 = frame[0], frame[1], low_r

    def _apply(self, opcode: int, f: int, g: int) -> int:
        """Opcode-dispatched apply for pre-checked operands.

        Internal callers (balanced reductions) come through here; the
        terminal rules mirror the public wrappers so accounting and
        results are identical either way.
        """
        if g < f:
            f, g = g, f
        if opcode == _OP_AND:
            if f == FALSE:
                return FALSE
            if f == TRUE or f == g:
                return g if f == TRUE else f
            cache = self._and_cache
            kernel = self._apply_and
        elif opcode == _OP_OR:
            if f == TRUE:
                return TRUE
            if f == FALSE or f == g:
                return g if f == FALSE else f
            cache = self._or_cache
            kernel = self._apply_or
        else:
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            cache = self._xor_cache
            kernel = self._apply_xor
        self._apply_calls += 1
        res = cache.get((f << self._store.shift) | g)
        if res is not None:
            self._apply_hits += 1
            return res
        return kernel(f, g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g`` as ``not f or g``."""
        return self.or_(self.not_(f), g)

    def iff(self, f: int, g: int) -> int:
        """Bi-implication ``f <-> g``."""
        return self.not_(self.xor(f, g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``."""
        return self.or_(self.and_(f, g), self.and_(self.not_(f), h))

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of all ``nodes`` (``true`` if empty).

        Reduced as a balanced tree: on a canonical representation the result
        is identical to a left fold, but wide conjunctions (e.g. thousands of
        variables) cost O(n log n) apply pairs instead of O(n^2).
        """
        return self._reduce_balanced(list(nodes), _OP_AND, TRUE, FALSE)

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of all ``nodes`` (``false`` if empty).

        Balanced-tree reduction; see :meth:`and_all`.
        """
        return self._reduce_balanced(list(nodes), _OP_OR, FALSE, TRUE)

    def _reduce_balanced(
        self, pending: List[int], opcode: int, unit: int, absorbing: int
    ) -> int:
        if not pending:
            return unit
        for node in pending:
            self._check(node)
        while len(pending) > 1:
            paired: List[int] = []
            it = iter(pending)
            for a in it:
                b = next(it, None)
                if b is None:
                    paired.append(a)
                    break
                res = self._apply(opcode, a, b)
                if res == absorbing:
                    return absorbing
                paired.append(res)
            pending = paired
        return pending[0]

    def entails(self, f: int, g: int) -> bool:
        """True if ``f`` implies ``g`` for all assignments."""
        return self.implies(f, g) == TRUE

    def equiv(self, f: int, g: int) -> bool:
        """True if ``f`` and ``g`` denote the same function.

        On a canonical representation this is pointer equality.
        """
        self._check(f)
        self._check(g)
        return f == g

    # ------------------------------------------------------------------
    # Cofactors, evaluation, support
    # ------------------------------------------------------------------

    def restrict(self, node: int, name: str, value: bool) -> int:
        """Cofactor of ``node`` with variable ``name`` fixed to ``value``."""
        self._check(node)
        level = self.level_of(name)
        return self._restrict(node, level, value)

    def _restrict(self, node: int, level: int, value: bool) -> int:
        store = self._store
        cache = self._restrict_cache
        if len(cache) >= _CACHE_CAPACITY:
            cache.clear()
            self._cache_flushes += 1
        s = store.shift
        limit = store.limit
        level_, low_, high_ = store.level, store.low, store.high
        unique = store.unique
        unique_get = unique.get
        free = store.free
        vbit = 1 if value else 0
        results: List[int] = []
        rpush = results.append
        # Frames: (0, node) expands, (1, node) combines.  The cache key
        # is re-packed from the frame's node at combine time, because an
        # amortized-doubling rebuild inside this walk changes the shift.
        stack: List[Tuple[int, int]] = [(0, node)]
        push = stack.append
        while stack:
            tag, current = stack.pop()
            if tag:
                high_r = results.pop()
                low_r = results[-1]
                if low_r == high_r:
                    res = low_r
                else:
                    lvl = level_[current]
                    mkey = ((lvl << s) | low_r) << s | high_r
                    res = unique_get(mkey)
                    if res is None:
                        if free:
                            res = free.pop()
                            level_[res] = lvl
                            low_[res] = low_r
                            high_[res] = high_r
                            unique[mkey] = res
                        else:
                            res = len(level_)
                            level_.append(lvl)
                            low_.append(low_r)
                            high_.append(high_r)
                            unique[mkey] = res
                            if res + 1 >= limit:
                                store.grow()
                                s = store.shift
                                limit = store.limit
                results[-1] = res
                cache[((current << s) | level) << 1 | vbit] = res
                continue
            node_level = level_[current]
            if node_level > level:
                # Terminal, or node entirely below the restricted variable on
                # a branch where the variable was skipped.
                rpush(current)
                continue
            ckey = ((current << s) | level) << 1 | vbit
            cached = cache.get(ckey)
            if cached is not None:
                rpush(cached)
                continue
            if node_level == level:
                res = high_[current] if value else low_[current]
                cache[ckey] = res
                rpush(res)
                continue
            push((1, current))
            push((0, high_[current]))
            push((0, low_[current]))
        return results[0]

    def exists(self, node: int, names: Iterable[str]) -> int:
        """Existential quantification of ``names`` out of ``node``."""
        self._check(node)
        result = node
        for name in names:
            if name not in self._var_level:
                continue
            level = self._var_level[name]
            result = self.or_(
                self._restrict(result, level, False),
                self._restrict(result, level, True),
            )
        return result

    def forall(self, node: int, names: Iterable[str]) -> int:
        """Universal quantification of ``names`` out of ``node``."""
        self._check(node)
        result = node
        for name in names:
            if name not in self._var_level:
                continue
            level = self._var_level[name]
            result = self.and_(
                self._restrict(result, level, False),
                self._restrict(result, level, True),
            )
        return result

    def evaluate(self, node: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the node's support.

        Variables missing from ``assignment`` raise :class:`BDDError` when
        the evaluation actually branches on them.
        """
        self._check(node)
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        while node > TRUE:
            name = self._level_var[level_[node]]
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(
                    f"assignment does not cover variable {name!r}"
                ) from None
            node = high_[node] if value else low_[node]
        return node == TRUE

    def support(self, node: int) -> frozenset:
        """The set of variable names the function actually depends on.

        In a reduced BDD every reachable internal node tests an essential
        variable, so the support is exactly the set of decision variables in
        the DAG — a single iterative walk, no per-node set unions.
        """
        self._check(node)
        cached = self._support_cache.get(node)
        if cached is not None:
            return cached
        levels: Set[int] = set()
        seen: Set[int] = set()
        stack = [node]
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            levels.add(level_[current])
            stack.append(low_[current])
            stack.append(high_[current])
        result = frozenset(self._level_var[lvl] for lvl in levels)
        self._support_cache[node] = result
        return result

    # ------------------------------------------------------------------
    # Model counting and enumeration
    # ------------------------------------------------------------------

    def satcount(self, node: int, over: Optional[Iterable[str]] = None) -> int:
        """Number of satisfying assignments.

        By default counts over *all* declared variables.  Pass ``over`` to
        count over a specific variable set (it must be a superset of the
        node's support).
        """
        self._check(node)
        if over is None:
            names = set(self._level_var)
        else:
            names = set(over)
            missing = self.support(node) - names
            if missing:
                raise BDDError(
                    f"satcount variable set misses support variables: "
                    f"{sorted(missing)}"
                )
        raw = self._satcount_raw(node)
        # _satcount_raw counts over all declared variables below the root;
        # rescale to the requested variable set.
        total_declared = len(self._level_var)
        scale_down = total_declared - len(names & set(self._level_var))
        extra = len(names - set(self._level_var))
        count = raw >> scale_down if scale_down >= 0 else raw
        return count << extra

    def _satcount_raw(self, node: int) -> int:
        """Satisfying assignments over all declared variables.

        The memo stores per-node counts normalized to the node's own level;
        the root-level rescale happens on every call (the old recursive
        version returned the unscaled memo verbatim on repeat calls, so a
        second ``satcount`` of a root below level 0 came back too small).
        """
        total = len(self._level_var)
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        cache = self._satcount_cache
        if node > TRUE and node not in cache:
            stack = [node]
            push = stack.append
            while stack:
                current = stack[-1]
                if current in cache:
                    stack.pop()
                    continue
                low, high = low_[current], high_[current]
                pending = False
                if low > TRUE and low not in cache:
                    push(low)
                    pending = True
                if high > TRUE and high not in cache:
                    push(high)
                    pending = True
                if pending:
                    continue
                stack.pop()
                level = level_[current]
                low_count = low if low <= TRUE else cache[low]
                high_count = high if high <= TRUE else cache[high]
                low_level = total if low <= TRUE else level_[low]
                high_level = total if high <= TRUE else level_[high]
                cache[current] = (low_count << (low_level - level - 1)) + (
                    high_count << (high_level - level - 1)
                )
        if node == FALSE:
            return 0
        base = 1 if node == TRUE else cache[node]
        root_level = total if node <= TRUE else level_[node]
        return base << root_level

    def iter_models(
        self, node: int, over: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """Yield every satisfying total assignment over ``over``.

        ``over`` defaults to all declared variables; it must cover the
        node's support.  Deterministic order (variable order, false first).
        """
        self._check(node)
        if over is None:
            names: Tuple[str, ...] = tuple(self._level_var)
        else:
            names = tuple(over)
            missing = self.support(node) - set(names)
            if missing:
                raise BDDError(
                    f"model variable set misses support variables: "
                    f"{sorted(missing)}"
                )
        # If `over` is not in manager order, reorder internally but emit
        # dicts keyed by all names anyway; dict key order does not affect
        # semantics.
        levels = [self._var_level.get(n, _TERMINAL_LEVEL) for n in names]
        if levels != sorted(levels):
            ordered = tuple(
                sorted(names, key=lambda n: self._var_level.get(n, _TERMINAL_LEVEL))
            )
            for model in self._iter_models_ordered(node, ordered):
                yield {name: model[name] for name in names}
            return
        yield from self._iter_models_ordered(node, names)

    def _iter_models_ordered(
        self, node: int, names: Tuple[str, ...]
    ) -> Iterator[Dict[str, bool]]:
        nvars = len(names)
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        var_level = self._var_level
        partial: Dict[str, bool] = {}
        # Frames: (index, node, (name, value)) descends after recording the
        # assignment; (-1, 0, (name, value)) undoes it once the subtree is
        # exhausted (the undo frame sits below the subtree on the stack).
        stack: List[Tuple[int, int, Optional[Tuple[str, bool]]]] = [(0, node, None)]
        while stack:
            index, current, assign = stack.pop()
            if index < 0:
                del partial[assign[0]]
                continue
            if assign is not None:
                partial[assign[0]] = assign[1]
                stack.append((-1, 0, assign))
            if index == nvars:
                if current == TRUE:
                    yield dict(partial)
                continue
            name = names[index]
            level = var_level.get(name, _TERMINAL_LEVEL)
            at_this_var = current > TRUE and level_[current] == level
            # Push the True branch first so False pops (and yields) first.
            for value in (True, False):
                if at_this_var:
                    child = high_[current] if value else low_[current]
                else:
                    child = current
                if child == FALSE:
                    continue
                stack.append((index + 1, child, (name, value)))

    def any_model(self, node: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment of the node's support, or ``None``.

        Variables outside the support are omitted (free to take any value).
        """
        self._check(node)
        if node == FALSE:
            return None
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        model: Dict[str, bool] = {}
        current = node
        while current > TRUE:
            name = self._level_var[level_[current]]
            if low_[current] != FALSE:
                model[name] = False
                current = low_[current]
            else:
                model[name] = True
                current = high_[current]
        return model

    # ------------------------------------------------------------------
    # Dynamic variable reordering (Rudell sifting)
    # ------------------------------------------------------------------

    def sift(
        self,
        roots: Iterable[int],
        first: Sequence[str] = (),
        max_growth: float = 1.2,
    ) -> int:
        """Rudell-style sifting over the nodes reachable from ``roots``.

        Every externally held node handle **must** be listed in ``roots``;
        handles in ``roots`` keep their ids and keep denoting the same
        Boolean function across the reorder (levels of their internal nodes
        change, unreferenced nodes are retired from the unique table and
        their column slots recycled through the store's free list).
        Operation caches are cleared afterwards, since cached results may
        reference retired nodes.

        Parameters
        ----------
        roots:
            All live node handles (duplicates and terminals are fine).
        first:
            Variable names to sift before all others (e.g. feature-model
            variables, which dominate the lifted constraint BDDs).
        max_growth:
            Abort a sift direction once the live size exceeds
            ``max_growth *`` the best size seen for the variable.

        Returns
        -------
        The live node count (internal nodes reachable from ``roots``) after
        reordering.
        """
        nvars = len(self._level_var)
        root_set = {r for r in roots if r > TRUE}
        for r in root_set:
            self._check(r)
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        # Session liveness: reachable set, per-level live sets, refcounts.
        live: Set[int] = set()
        stack = list(root_set)
        while stack:
            n = stack.pop()
            if n <= TRUE or n in live:
                continue
            live.add(n)
            stack.append(low_[n])
            stack.append(high_[n])
        size = len(live)
        if nvars < 2 or not live:
            self._reorders += 1
            obs.tracer().instant("bdd/reorder", before=size, after=size)
            return size
        live_at: List[Set[int]] = [set() for _ in range(nvars)]
        ref: Dict[int, int] = {}
        for n in live:
            live_at[level_[n]].add(n)
            for child in (low_[n], high_[n]):
                if child > TRUE:
                    ref[child] = ref.get(child, 0) + 1
        for r in root_set:
            ref[r] = ref.get(r, 0) + 1

        # Sift order: `first` names (in the given order), then the remaining
        # variables by descending live-node count, name as tiebreak.
        first_names = [n for n in first if n in self._var_level]
        rest = sorted(
            (n for n in self._level_var if n not in set(first_names)),
            key=lambda n: (-len(live_at[self._var_level[n]]), n),
        )
        session = _SiftSession(self, ref, live_at, size)
        for name in first_names + rest:
            session.sift_var(name, max_growth)

        # Cached op results may reference retired nodes or depend on levels,
        # and retired slots are about to be recycled by the free list.
        self._and_cache.clear()
        self._or_cache.clear()
        self._xor_cache.clear()
        self._not_cache.clear()
        self._restrict_cache.clear()
        self._satcount_cache.clear()
        self._support_cache.clear()
        self._reorders += 1
        obs.tracer().instant(
            "bdd/reorder",
            before=size,
            after=session.size,
            swaps=self._reorder_swaps,
        )
        return session.size

    def cache_stats(self) -> Dict[str, object]:
        """Sizes and health of the internal tables (diagnostics, benches).

        ``unique_load_factor`` and ``apply_cache_occupancy`` are floats in
        ``[0, 1]`` — table fill relative to the current packed-key
        capacity and the computed-table soft capacity; everything else is
        a plain counter.
        """
        store = self._store
        apply_entries = (
            len(self._and_cache) + len(self._or_cache) + len(self._xor_cache)
        )
        return {
            "nodes": len(store.level),
            "unique_entries": len(store.unique),
            "unique_shift": store.shift,
            "unique_rebuilds": store.rebuilds,
            "unique_load_factor": store.load_factor(),
            "free_nodes": len(store.free),
            "apply_cache": apply_entries,
            "apply_cache_hits": self._apply_hits,
            "apply_cache_misses": self._apply_misses,
            "apply_calls": self._apply_calls,
            "apply_cache_flushes": self._cache_flushes,
            "apply_cache_occupancy": apply_entries / (3 * _CACHE_CAPACITY),
            "not_cache": len(self._not_cache),
            "restrict_cache": len(self._restrict_cache),
            "reorders": self._reorders,
            "reorder_swaps": self._reorder_swaps,
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_expr_string(self, node: int) -> str:
        """A human-readable sum-of-products rendering (for small BDDs)."""
        if node == FALSE:
            return "false"
        if node == TRUE:
            return "true"
        cubes: List[str] = []
        for cube in self._iter_cubes(node):
            literals = [
                name if positive else f"!{name}" for name, positive in cube
            ]
            cubes.append(" & ".join(literals))
        return " | ".join(cubes)

    def _iter_cubes(self, node: int) -> Iterator[Tuple[Tuple[str, bool], ...]]:
        """Yield the BDD's paths to ``true`` as cubes of literals."""
        if node == FALSE:
            return
        if node == TRUE:
            yield ()
            return
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        level_var = self._level_var
        path: List[Tuple[str, bool]] = []
        # Frames: (node, literal) appends the literal (if any) then visits
        # the node; (-1, None) pops the literal once the subtree is done.
        stack: List[Tuple[int, Optional[Tuple[str, bool]]]] = [(node, None)]
        while stack:
            current, literal = stack.pop()
            if current < 0:
                path.pop()
                continue
            if literal is not None:
                path.append(literal)
                stack.append((-1, None))
            if current == FALSE:
                continue
            if current == TRUE:
                yield tuple(path)
                continue
            name = level_var[level_[current]]
            stack.append((high_[current], (name, True)))
            stack.append((low_[current], (name, False)))

    def to_dot(self, node: int, name: str = "bdd") -> str:
        """Graphviz DOT rendering of the BDD rooted at ``node``."""
        self._check(node)
        store = self._store
        level_, low_, high_ = store.level, store.low, store.high
        lines = [f"digraph {name} {{", "  rankdir=TB;"]
        lines.append('  n0 [shape=box, label="0"];')
        lines.append('  n1 [shape=box, label="1"];')
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            label = self._level_var[level_[current]]
            lines.append(f'  n{current} [shape=circle, label="{label}"];')
            low, high = low_[current], high_[current]
            lines.append(f"  n{current} -> n{low} [style=dashed];")
            lines.append(f"  n{current} -> n{high} [style=solid];")
            stack.extend((low, high))
        lines.append("}")
        return "\n".join(lines)


class _SiftSession:
    """Mutable state for one :meth:`BDDManager.sift` invocation.

    Tracks per-level live sets, refcounts for the reachable sub-DAG, and the
    live size, and implements the adjacent-level swap primitive that keeps
    node ids denoting the same function (nodes are relabeled or rebuilt in
    place; retired nodes are removed from the unique table and their column
    slots handed to the store's free list for reuse).
    """

    __slots__ = ("mgr", "ref", "live_at", "size")

    def __init__(
        self,
        mgr: BDDManager,
        ref: Dict[int, int],
        live_at: List[Set[int]],
        size: int,
    ) -> None:
        self.mgr = mgr
        self.ref = ref
        self.live_at = live_at
        self.size = size

    def sift_var(self, name: str, max_growth: float) -> None:
        """Sift variable ``name`` to its locally best level."""
        mgr = self.mgr
        nvars = len(mgr._level_var)
        pos = mgr._var_level[name]
        best_size, best_pos = self.size, pos
        # Sweep down to the bottom, then up to the top, tracking the best
        # (size, position); abort a direction on max_growth blowup.
        p = pos
        while p < nvars - 1 and self.size <= max_growth * best_size:
            self._swap(p)
            p += 1
            if self.size < best_size:
                best_size, best_pos = self.size, p
        while p > 0 and self.size <= max_growth * best_size:
            self._swap(p - 1)
            p -= 1
            if self.size < best_size:
                best_size, best_pos = self.size, p
        while p < best_pos:
            self._swap(p)
            p += 1
        while p > best_pos:
            self._swap(p - 1)
            p -= 1

    def _swap(self, x: int) -> None:
        """Swap the variables at adjacent levels ``x`` and ``x + 1``.

        Live nodes at ``x`` without a child at ``x + 1`` are relabeled down;
        the rest are rebuilt in place from their four cofactors.  Surviving
        nodes at ``x + 1`` are relabeled up.  Node ids in either group keep
        denoting the same Boolean function.
        """
        mgr = self.mgr
        store = mgr._store
        y = x + 1
        level_, low_, high_ = store.level, store.low, store.high
        unique = store.unique
        store_key = store.key
        free = store.free
        ref = self.ref
        live_at = self.live_at
        old_y = frozenset(live_at[y])
        old_x = sorted(live_at[x])
        # Unregister every live entry at both levels; they are re-registered
        # as they are relabeled or rebuilt.  (Entries of untracked garbage
        # nodes at these levels are overwritten on re-registration.)
        for n in old_x:
            key = store_key(x, low_[n], high_[n])
            if unique.get(key) == n:
                del unique[key]
        for n in old_y:
            key = store_key(y, low_[n], high_[n])
            if unique.get(key) == n:
                del unique[key]
        new_x: Set[int] = set()
        new_y: Set[int] = set()

        rebuilt: List[int] = []
        # Phase 1: relabel independent x-nodes down to y first, so the
        # rebuild phase's mk can share them.
        for n in old_x:
            if low_[n] in old_y or high_[n] in old_y:
                rebuilt.append(n)
            else:
                level_[n] = y
                unique[store_key(y, low_[n], high_[n])] = n
                new_y.add(n)

        def mk_y(low: int, high: int) -> int:
            if low == high:
                return low
            key = store_key(y, low, high)
            hit = unique.get(key)
            if hit is not None and hit in new_y:
                return hit
            if free:
                node = free.pop()
                level_[node] = y
                low_[node] = low
                high_[node] = high
                unique[key] = node
            else:
                node = len(level_)
                level_.append(y)
                low_.append(low)
                high_.append(high)
                unique[key] = node
                if node + 1 >= store.limit:
                    store.grow()
            new_y.add(node)
            ref[node] = 0
            if low > TRUE:
                ref[low] = ref.get(low, 0) + 1
            if high > TRUE:
                ref[high] = ref.get(high, 0) + 1
            self.size += 1
            return node

        def deref(node: int) -> None:
            stack = [node]
            while stack:
                d = stack.pop()
                if d <= TRUE:
                    continue
                ref[d] -= 1
                if ref[d]:
                    continue
                del ref[d]
                self.size -= 1
                lvl = level_[d]
                live_at[lvl].discard(d)
                key = store_key(lvl, low_[d], high_[d])
                if unique.get(key) == d:
                    del unique[key]
                stack.append(low_[d])
                stack.append(high_[d])
                # Safe to recycle immediately: a refcount of zero means no
                # live node (and no pending rebuild — parents hold refs on
                # their children until processed) can still read this row.
                free.append(d)

        # Phase 2: rebuild the dependent x-nodes in place from their four
        # cofactors; fresh children land at level y.
        for n in rebuilt:
            low, high = low_[n], high_[n]
            if low in old_y:
                f00, f01 = low_[low], high_[low]
            else:
                f00 = f01 = low
            if high in old_y:
                f10, f11 = low_[high], high_[high]
            else:
                f10 = f11 = high
            c0 = mk_y(f00, f10)
            c1 = mk_y(f01, f11)
            # A rebuilt node has a child testing the swapped-in variable, so
            # it still depends on it: c0 != c1 and the node stays internal.
            low_[n], high_[n] = c0, c1
            unique[store_key(x, c0, c1)] = n
            new_x.add(n)
            if c0 > TRUE:
                ref[c0] = ref.get(c0, 0) + 1
            if c1 > TRUE:
                ref[c1] = ref.get(c1, 0) + 1
            deref(low)
            deref(high)

        # Phase 3: surviving y-nodes (still referenced) move up to x.
        for survivor in live_at[y]:
            level_[survivor] = x
            unique[store_key(x, low_[survivor], high_[survivor])] = survivor
            new_x.add(survivor)
        live_at[x] = new_x
        live_at[y] = new_y

        u, v = mgr._level_var[x], mgr._level_var[y]
        mgr._level_var[x], mgr._level_var[y] = v, u
        mgr._var_level[u] = y
        mgr._var_level[v] = x
        mgr._reorder_swaps += 1
