"""A from-scratch reduced ordered binary decision diagram (ROBDD) engine.

The paper (Section 5) attributes much of SPLLIFT's performance to encoding
feature constraints as reduced BDDs: equality and ``is false`` checks are
constant time on the canonical representation, and conjunction/disjunction
are efficient and memoized.  The original implementation used JavaBDD backed
by BuDDy; this module provides the equivalent engine in pure Python.

Nodes are interned integers managed by a :class:`BDDManager`.  Node ``0`` is
the ``false`` terminal and node ``1`` the ``true`` terminal.  Every internal
node is uniquely identified by its ``(level, low, high)`` triple, which makes
the representation canonical: two BDDs represent the same Boolean function if
and only if they are the same integer.

All traversals (``apply``, negation, cofactors, model counting, support,
cube/model enumeration) run on explicit work stacks rather than Python
recursion, so the engine handles orderings thousands of variables deep
without tripping ``sys.getrecursionlimit()``.  The manager also implements
Rudell-style sifting (:meth:`sift`) for dynamic variable reordering; the
paper's Section 5 leaves ordering as future work.

Example
-------
>>> mgr = BDDManager()
>>> f, g = mgr.var("F"), mgr.var("G")
>>> fn = mgr.and_(f, mgr.not_(g))
>>> mgr.is_false(mgr.and_(fn, g))
True
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.obs import runtime as obs

__all__ = ["BDDManager", "BDDError"]


class BDDError(Exception):
    """Raised for invalid BDD operations (unknown variables, foreign nodes)."""


# Terminal node ids.  They occupy the two first slots of the node arrays.
FALSE = 0
TRUE = 1

# Level assigned to terminal nodes; larger than any variable level.
_TERMINAL_LEVEL = 1 << 60

# Integer opcodes for the apply kernel.  Ints hash faster than the op-name
# strings previously used in cache keys, and let the kernel dispatch the
# terminal cases inline instead of through a callback per operand pair.
_OP_AND = 0
_OP_OR = 1
_OP_XOR = 2


class BDDManager:
    """Owns the unique table, operation caches and the variable order.

    All BDD nodes live inside a single manager and are plain ``int`` handles.
    Handles from different managers must never be mixed; operations check a
    lightweight invariant (node id must exist in this manager's tables).

    Parameters
    ----------
    ordering:
        Optional initial variable order (first variable = topmost level).
        Variables can also be created on demand with :meth:`var`; new
        variables are appended below all existing ones.
    """

    def __init__(self, ordering: Optional[Sequence[str]] = None) -> None:
        # Node storage: parallel lists indexed by node id.
        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._low: List[int] = [FALSE, TRUE]  # unused for terminals
        self._high: List[int] = [FALSE, TRUE]
        # (level, low, high) -> node id
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # Variable bookkeeping.
        self._var_level: Dict[str, int] = {}
        self._level_var: List[str] = []
        # Memoization caches.
        self._apply_cache: Dict[Tuple[int, int, int], int] = {}
        self._apply_hits = 0
        self._apply_misses = 0
        self._apply_calls = 0
        self._not_cache: Dict[int, int] = {}
        self._restrict_cache: Dict[Tuple[int, int, bool], int] = {}
        self._satcount_cache: Dict[int, int] = {}
        self._support_cache: Dict[int, frozenset] = {}
        # Reordering counters.
        self._reorders = 0
        self._reorder_swaps = 0
        if ordering is not None:
            for name in ordering:
                self.var(name)

    # ------------------------------------------------------------------
    # Constants and variables
    # ------------------------------------------------------------------

    @property
    def false(self) -> int:
        """The ``false`` terminal."""
        return FALSE

    @property
    def true(self) -> int:
        """The ``true`` terminal."""
        return TRUE

    def var(self, name: str) -> int:
        """Return the BDD for variable ``name``, declaring it if necessary.

        Newly declared variables are placed below all existing variables in
        the order.
        """
        level = self._var_level.get(name)
        if level is None:
            level = len(self._level_var)
            self._var_level[name] = level
            self._level_var.append(name)
            # Cached counts are normalized against the number of declared
            # variables, so they are invalidated by a new declaration.
            self._satcount_cache.clear()
        return self._mk(level, FALSE, TRUE)

    def nvar(self, name: str) -> int:
        """Return the BDD for the negation of variable ``name``."""
        level = self._var_level.get(name)
        if level is None:
            self.var(name)
            level = self._var_level[name]
        return self._mk(level, TRUE, FALSE)

    @property
    def variables(self) -> Tuple[str, ...]:
        """All declared variable names in order (topmost first)."""
        return tuple(self._level_var)

    def has_var(self, name: str) -> bool:
        """True if ``name`` has been declared in this manager."""
        return name in self._var_level

    def level_of(self, name: str) -> int:
        """The order level of variable ``name`` (0 = topmost)."""
        try:
            return self._var_level[name]
        except KeyError:
            raise BDDError(f"unknown BDD variable: {name!r}") from None

    def var_at_level(self, level: int) -> str:
        """The variable name sitting at ``level``."""
        return self._level_var[level]

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def _mk(self, level: int, low: int, high: int) -> int:
        """Find-or-create the node ``(level, low, high)`` (reduced form)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    def _check(self, node: int) -> None:
        if not 0 <= node < len(self._level):
            raise BDDError(f"node {node} does not belong to this manager")

    # ------------------------------------------------------------------
    # Structural accessors
    # ------------------------------------------------------------------

    def is_terminal(self, node: int) -> bool:
        """True for the two terminal nodes."""
        return node <= TRUE

    def is_true(self, node: int) -> bool:
        """Constant-time check: is this the ``true`` function?"""
        return node == TRUE

    def is_false(self, node: int) -> bool:
        """Constant-time check: is this the ``false`` function?

        Because the representation is canonical, a contradictory constraint
        always reduces to the ``false`` terminal; this check is what enables
        SPLLIFT's early termination (Section 4.2 of the paper).
        """
        return node == FALSE

    def top_var(self, node: int) -> str:
        """Name of the decision variable at the root of ``node``."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no decision variable")
        return self._level_var[self._level[node]]

    def low(self, node: int) -> int:
        """The ``else`` (variable = false) child."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no children")
        return self._low[node]

    def high(self, node: int) -> int:
        """The ``then`` (variable = true) child."""
        self._check(node)
        if self.is_terminal(node):
            raise BDDError("terminal nodes have no children")
        return self._high[node]

    def node_count(self, node: int) -> int:
        """Number of distinct internal nodes reachable from ``node``."""
        self._check(node)
        seen = set()
        stack = [node]
        low_, high_ = self._low, self._high
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            stack.append(low_[current])
            stack.append(high_[current])
        return len(seen)

    def total_nodes(self) -> int:
        """Total number of nodes ever interned (terminals included)."""
        return len(self._level)

    def live_nodes(self) -> int:
        """Number of registered (unique-table) internal nodes plus terminals.

        Unlike :meth:`total_nodes` this excludes nodes retired by
        :meth:`sift`; it is the size metric reorder triggers should use.
        """
        return len(self._unique) + 2

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def not_(self, node: int) -> int:
        """Negation (iterative; memoized per node)."""
        self._check(node)
        cache = self._not_cache
        cached = cache.get(node)
        if cached is not None:
            return cached
        if node <= TRUE:
            result = TRUE - node
            cache[node] = result
            return result
        level_, low_, high_ = self._level, self._low, self._high
        unique = self._unique
        stack = [node]
        push = stack.append
        while stack:
            current = stack[-1]
            if current in cache:
                stack.pop()
                continue
            low, high = low_[current], high_[current]
            pending = False
            if low > TRUE and low not in cache:
                push(low)
                pending = True
            if high > TRUE and high not in cache:
                push(high)
                pending = True
            if pending:
                continue
            stack.pop()
            nlow = TRUE - low if low <= TRUE else cache[low]
            nhigh = TRUE - high if high <= TRUE else cache[high]
            # Negation never merges children (nlow == nhigh would imply
            # low == high), so the node is created unconditionally.
            key = (level_[current], nlow, nhigh)
            res = unique.get(key)
            if res is None:
                res = len(level_)
                level_.append(key[0])
                low_.append(nlow)
                high_.append(nhigh)
                unique[key] = res
            cache[current] = res
        return cache[node]

    def _apply(self, opcode: int, f: int, g: int) -> int:
        """Memoized binary apply on an explicit work stack.

        The stack holds two kinds of frames: ``(0, f, g)`` expands an operand
        pair and ``(1, level, key)`` combines the two child results sitting
        on ``results``.  Terminal cases are decided inline per opcode; all
        three operations are commutative, so operand pairs are normalized
        ``f <= g`` at every level (not just the public entry point), which
        roughly doubles the apply-cache hit rate of the old recursive kernel.
        """
        self._apply_calls += 1
        level_, low_, high_ = self._level, self._low, self._high
        unique = self._unique
        cache = self._apply_cache
        hits = misses = 0
        results: List[int] = []
        rpush = results.append
        stack: List[Tuple[int, int, int]] = [(0, f, g)]
        push = stack.append
        while stack:
            tag, a, b = stack.pop()
            if tag:
                # Combine: children were expanded low-first, so results holds
                # [..., low_result, high_result].
                high_r = results.pop()
                low_r = results[-1]
                if low_r == high_r:
                    res = low_r
                else:
                    key = (a, low_r, high_r)
                    res = unique.get(key)
                    if res is None:
                        res = len(level_)
                        level_.append(a)
                        low_.append(low_r)
                        high_.append(high_r)
                        unique[key] = res
                results[-1] = res
                cache[b] = res
                continue
            if b < a:
                a, b = b, a
            # Inline terminal decisions (a <= b).
            if opcode == _OP_AND:
                if a == FALSE:
                    rpush(FALSE)
                    continue
                if a == TRUE or a == b:
                    rpush(b if a == TRUE else a)
                    continue
            elif opcode == _OP_OR:
                if a == TRUE:
                    rpush(TRUE)
                    continue
                if a == FALSE or a == b:
                    rpush(b if a == FALSE else a)
                    continue
            else:  # _OP_XOR
                if a == b:
                    rpush(FALSE)
                    continue
                if a == FALSE:
                    rpush(b)
                    continue
            key = (opcode, a, b)
            cached = cache.get(key)
            if cached is not None:
                hits += 1
                rpush(cached)
                continue
            misses += 1
            level_a, level_b = level_[a], level_[b]
            if level_a < level_b:
                level = level_a
                a_low, a_high = low_[a], high_[a]
                b_low = b_high = b
            elif level_b < level_a:
                level = level_b
                a_low = a_high = a
                b_low, b_high = low_[b], high_[b]
            else:
                level = level_a
                a_low, a_high = low_[a], high_[a]
                b_low, b_high = low_[b], high_[b]
            push((1, level, key))
            push((0, a_high, b_high))
            push((0, a_low, b_low))
        self._apply_hits += hits
        self._apply_misses += misses
        return results[0]

    def and_(self, f: int, g: int) -> int:
        """Conjunction (commutative; arguments normalized for the cache).

        Terminal cases and the apply-cache are probed here, before the
        work-stack kernel spins up: after warmup the overwhelming majority
        of calls on the lifted hot path are repeats, and the probe answers
        them with one dict lookup.
        """
        self._check(f)
        self._check(g)
        if g < f:
            f, g = g, f
        if f == FALSE:
            return FALSE
        if f == TRUE or f == g:
            return g if f == TRUE else f
        cached = self._apply_cache.get((_OP_AND, f, g))
        if cached is not None:
            self._apply_calls += 1
            self._apply_hits += 1
            return cached
        return self._apply(_OP_AND, f, g)

    def or_(self, f: int, g: int) -> int:
        """Disjunction (commutative; arguments normalized for the cache)."""
        self._check(f)
        self._check(g)
        if g < f:
            f, g = g, f
        if f == TRUE:
            return TRUE
        if f == FALSE or f == g:
            return g if f == FALSE else f
        cached = self._apply_cache.get((_OP_OR, f, g))
        if cached is not None:
            self._apply_calls += 1
            self._apply_hits += 1
            return cached
        return self._apply(_OP_OR, f, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        self._check(f)
        self._check(g)
        if g < f:
            f, g = g, f
        if f == g:
            return FALSE
        if f == FALSE:
            return g
        cached = self._apply_cache.get((_OP_XOR, f, g))
        if cached is not None:
            self._apply_calls += 1
            self._apply_hits += 1
            return cached
        return self._apply(_OP_XOR, f, g)

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g`` as ``not f or g``."""
        return self.or_(self.not_(f), g)

    def iff(self, f: int, g: int) -> int:
        """Bi-implication ``f <-> g``."""
        return self.not_(self.xor(f, g))

    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``(f and g) or (not f and h)``."""
        return self.or_(self.and_(f, g), self.and_(self.not_(f), h))

    def and_all(self, nodes: Iterable[int]) -> int:
        """Conjunction of all ``nodes`` (``true`` if empty).

        Reduced as a balanced tree: on a canonical representation the result
        is identical to a left fold, but wide conjunctions (e.g. thousands of
        variables) cost O(n log n) apply pairs instead of O(n^2).
        """
        return self._reduce_balanced(list(nodes), _OP_AND, TRUE, FALSE)

    def or_all(self, nodes: Iterable[int]) -> int:
        """Disjunction of all ``nodes`` (``false`` if empty).

        Balanced-tree reduction; see :meth:`and_all`.
        """
        return self._reduce_balanced(list(nodes), _OP_OR, FALSE, TRUE)

    def _reduce_balanced(
        self, pending: List[int], opcode: int, unit: int, absorbing: int
    ) -> int:
        if not pending:
            return unit
        for node in pending:
            self._check(node)
        while len(pending) > 1:
            paired: List[int] = []
            it = iter(pending)
            for a in it:
                b = next(it, None)
                if b is None:
                    paired.append(a)
                    break
                res = self._apply(opcode, a, b)
                if res == absorbing:
                    return absorbing
                paired.append(res)
            pending = paired
        return pending[0]

    def entails(self, f: int, g: int) -> bool:
        """True if ``f`` implies ``g`` for all assignments."""
        return self.implies(f, g) == TRUE

    def equiv(self, f: int, g: int) -> bool:
        """True if ``f`` and ``g`` denote the same function.

        On a canonical representation this is pointer equality.
        """
        self._check(f)
        self._check(g)
        return f == g

    # ------------------------------------------------------------------
    # Cofactors, evaluation, support
    # ------------------------------------------------------------------

    def restrict(self, node: int, name: str, value: bool) -> int:
        """Cofactor of ``node`` with variable ``name`` fixed to ``value``."""
        self._check(node)
        level = self.level_of(name)
        return self._restrict(node, level, value)

    def _restrict(self, node: int, level: int, value: bool) -> int:
        level_, low_, high_ = self._level, self._low, self._high
        unique = self._unique
        cache = self._restrict_cache
        results: List[int] = []
        rpush = results.append
        # Frames: (0, node, 0) expands, (1, node, key) combines.
        stack: List[Tuple[int, int, object]] = [(0, node, 0)]
        push = stack.append
        while stack:
            tag, current, key = stack.pop()
            if tag:
                high_r = results.pop()
                low_r = results[-1]
                if low_r == high_r:
                    res = low_r
                else:
                    mkey = (level_[current], low_r, high_r)
                    res = unique.get(mkey)
                    if res is None:
                        res = len(level_)
                        level_.append(mkey[0])
                        low_.append(low_r)
                        high_.append(high_r)
                        unique[mkey] = res
                results[-1] = res
                cache[key] = res
                continue
            node_level = level_[current]
            if node_level > level:
                # Terminal, or node entirely below the restricted variable on
                # a branch where the variable was skipped.
                rpush(current)
                continue
            ckey = (current, level, value)
            cached = cache.get(ckey)
            if cached is not None:
                rpush(cached)
                continue
            if node_level == level:
                res = high_[current] if value else low_[current]
                cache[ckey] = res
                rpush(res)
                continue
            push((1, current, ckey))
            push((0, high_[current], 0))
            push((0, low_[current], 0))
        return results[0]

    def exists(self, node: int, names: Iterable[str]) -> int:
        """Existential quantification of ``names`` out of ``node``."""
        self._check(node)
        result = node
        for name in names:
            if name not in self._var_level:
                continue
            level = self._var_level[name]
            result = self.or_(
                self._restrict(result, level, False),
                self._restrict(result, level, True),
            )
        return result

    def forall(self, node: int, names: Iterable[str]) -> int:
        """Universal quantification of ``names`` out of ``node``."""
        self._check(node)
        result = node
        for name in names:
            if name not in self._var_level:
                continue
            level = self._var_level[name]
            result = self.and_(
                self._restrict(result, level, False),
                self._restrict(result, level, True),
            )
        return result

    def evaluate(self, node: int, assignment: Dict[str, bool]) -> bool:
        """Evaluate under a total assignment of the node's support.

        Variables missing from ``assignment`` raise :class:`BDDError` when
        the evaluation actually branches on them.
        """
        self._check(node)
        while node > TRUE:
            name = self._level_var[self._level[node]]
            try:
                value = assignment[name]
            except KeyError:
                raise BDDError(
                    f"assignment does not cover variable {name!r}"
                ) from None
            node = self._high[node] if value else self._low[node]
        return node == TRUE

    def support(self, node: int) -> frozenset:
        """The set of variable names the function actually depends on.

        In a reduced BDD every reachable internal node tests an essential
        variable, so the support is exactly the set of decision variables in
        the DAG — a single iterative walk, no per-node set unions.
        """
        self._check(node)
        cached = self._support_cache.get(node)
        if cached is not None:
            return cached
        levels: Set[int] = set()
        seen: Set[int] = set()
        stack = [node]
        level_, low_, high_ = self._level, self._low, self._high
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            levels.add(level_[current])
            stack.append(low_[current])
            stack.append(high_[current])
        result = frozenset(self._level_var[lvl] for lvl in levels)
        self._support_cache[node] = result
        return result

    # ------------------------------------------------------------------
    # Model counting and enumeration
    # ------------------------------------------------------------------

    def satcount(self, node: int, over: Optional[Iterable[str]] = None) -> int:
        """Number of satisfying assignments.

        By default counts over *all* declared variables.  Pass ``over`` to
        count over a specific variable set (it must be a superset of the
        node's support).
        """
        self._check(node)
        if over is None:
            names = set(self._level_var)
        else:
            names = set(over)
            missing = self.support(node) - names
            if missing:
                raise BDDError(
                    f"satcount variable set misses support variables: "
                    f"{sorted(missing)}"
                )
        raw = self._satcount_raw(node)
        # _satcount_raw counts over all declared variables below the root;
        # rescale to the requested variable set.
        total_declared = len(self._level_var)
        scale_down = total_declared - len(names & set(self._level_var))
        extra = len(names - set(self._level_var))
        count = raw >> scale_down if scale_down >= 0 else raw
        return count << extra

    def _satcount_raw(self, node: int) -> int:
        """Satisfying assignments over all declared variables.

        The memo stores per-node counts normalized to the node's own level;
        the root-level rescale happens on every call (the old recursive
        version returned the unscaled memo verbatim on repeat calls, so a
        second ``satcount`` of a root below level 0 came back too small).
        """
        total = len(self._level_var)
        level_, low_, high_ = self._level, self._low, self._high
        cache = self._satcount_cache
        if node > TRUE and node not in cache:
            stack = [node]
            push = stack.append
            while stack:
                current = stack[-1]
                if current in cache:
                    stack.pop()
                    continue
                low, high = low_[current], high_[current]
                pending = False
                if low > TRUE and low not in cache:
                    push(low)
                    pending = True
                if high > TRUE and high not in cache:
                    push(high)
                    pending = True
                if pending:
                    continue
                stack.pop()
                level = level_[current]
                low_count = low if low <= TRUE else cache[low]
                high_count = high if high <= TRUE else cache[high]
                low_level = total if low <= TRUE else level_[low]
                high_level = total if high <= TRUE else level_[high]
                cache[current] = (low_count << (low_level - level - 1)) + (
                    high_count << (high_level - level - 1)
                )
        if node == FALSE:
            return 0
        base = 1 if node == TRUE else cache[node]
        root_level = total if node <= TRUE else level_[node]
        return base << root_level

    def iter_models(
        self, node: int, over: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """Yield every satisfying total assignment over ``over``.

        ``over`` defaults to all declared variables; it must cover the
        node's support.  Deterministic order (variable order, false first).
        """
        self._check(node)
        if over is None:
            names: Tuple[str, ...] = tuple(self._level_var)
        else:
            names = tuple(over)
            missing = self.support(node) - set(names)
            if missing:
                raise BDDError(
                    f"model variable set misses support variables: "
                    f"{sorted(missing)}"
                )
        # If `over` is not in manager order, reorder internally but emit
        # dicts keyed by all names anyway; dict key order does not affect
        # semantics.
        levels = [self._var_level.get(n, _TERMINAL_LEVEL) for n in names]
        if levels != sorted(levels):
            ordered = tuple(
                sorted(names, key=lambda n: self._var_level.get(n, _TERMINAL_LEVEL))
            )
            for model in self._iter_models_ordered(node, ordered):
                yield {name: model[name] for name in names}
            return
        yield from self._iter_models_ordered(node, names)

    def _iter_models_ordered(
        self, node: int, names: Tuple[str, ...]
    ) -> Iterator[Dict[str, bool]]:
        nvars = len(names)
        level_, low_, high_ = self._level, self._low, self._high
        var_level = self._var_level
        partial: Dict[str, bool] = {}
        # Frames: (index, node, (name, value)) descends after recording the
        # assignment; (-1, 0, (name, value)) undoes it once the subtree is
        # exhausted (the undo frame sits below the subtree on the stack).
        stack: List[Tuple[int, int, Optional[Tuple[str, bool]]]] = [(0, node, None)]
        while stack:
            index, current, assign = stack.pop()
            if index < 0:
                del partial[assign[0]]
                continue
            if assign is not None:
                partial[assign[0]] = assign[1]
                stack.append((-1, 0, assign))
            if index == nvars:
                if current == TRUE:
                    yield dict(partial)
                continue
            name = names[index]
            level = var_level.get(name, _TERMINAL_LEVEL)
            at_this_var = current > TRUE and level_[current] == level
            # Push the True branch first so False pops (and yields) first.
            for value in (True, False):
                if at_this_var:
                    child = high_[current] if value else low_[current]
                else:
                    child = current
                if child == FALSE:
                    continue
                stack.append((index + 1, child, (name, value)))

    def any_model(self, node: int) -> Optional[Dict[str, bool]]:
        """One satisfying assignment of the node's support, or ``None``.

        Variables outside the support are omitted (free to take any value).
        """
        self._check(node)
        if node == FALSE:
            return None
        model: Dict[str, bool] = {}
        current = node
        while current > TRUE:
            name = self._level_var[self._level[current]]
            if self._low[current] != FALSE:
                model[name] = False
                current = self._low[current]
            else:
                model[name] = True
                current = self._high[current]
        return model

    # ------------------------------------------------------------------
    # Dynamic variable reordering (Rudell sifting)
    # ------------------------------------------------------------------

    def sift(
        self,
        roots: Iterable[int],
        first: Sequence[str] = (),
        max_growth: float = 1.2,
    ) -> int:
        """Rudell-style sifting over the nodes reachable from ``roots``.

        Every externally held node handle **must** be listed in ``roots``;
        handles in ``roots`` keep their ids and keep denoting the same
        Boolean function across the reorder (levels of their internal nodes
        change, unreferenced nodes are retired from the unique table).
        Operation caches are cleared afterwards, since cached results may
        reference retired nodes.

        Parameters
        ----------
        roots:
            All live node handles (duplicates and terminals are fine).
        first:
            Variable names to sift before all others (e.g. feature-model
            variables, which dominate the lifted constraint BDDs).
        max_growth:
            Abort a sift direction once the live size exceeds
            ``max_growth *`` the best size seen for the variable.

        Returns
        -------
        The live node count (internal nodes reachable from ``roots``) after
        reordering.
        """
        nvars = len(self._level_var)
        root_set = {r for r in roots if r > TRUE}
        for r in root_set:
            self._check(r)
        level_, low_, high_ = self._level, self._low, self._high
        # Session liveness: reachable set, per-level live sets, refcounts.
        live: Set[int] = set()
        stack = list(root_set)
        while stack:
            n = stack.pop()
            if n <= TRUE or n in live:
                continue
            live.add(n)
            stack.append(low_[n])
            stack.append(high_[n])
        size = len(live)
        if nvars < 2 or not live:
            self._reorders += 1
            obs.tracer().instant("bdd/reorder", before=size, after=size)
            return size
        live_at: List[Set[int]] = [set() for _ in range(nvars)]
        ref: Dict[int, int] = {}
        for n in live:
            live_at[level_[n]].add(n)
            for child in (low_[n], high_[n]):
                if child > TRUE:
                    ref[child] = ref.get(child, 0) + 1
        for r in root_set:
            ref[r] = ref.get(r, 0) + 1

        # Sift order: `first` names (in the given order), then the remaining
        # variables by descending live-node count, name as tiebreak.
        first_names = [n for n in first if n in self._var_level]
        rest = sorted(
            (n for n in self._level_var if n not in set(first_names)),
            key=lambda n: (-len(live_at[self._var_level[n]]), n),
        )
        session = _SiftSession(self, ref, live_at, size)
        for name in first_names + rest:
            session.sift_var(name, max_growth)

        # Cached op results may reference retired nodes or depend on levels.
        self._apply_cache.clear()
        self._not_cache.clear()
        self._restrict_cache.clear()
        self._satcount_cache.clear()
        self._support_cache.clear()
        self._reorders += 1
        obs.tracer().instant(
            "bdd/reorder",
            before=size,
            after=session.size,
            swaps=self._reorder_swaps,
        )
        return session.size

    def cache_stats(self) -> Dict[str, int]:
        """Sizes of the internal caches (for diagnostics and benchmarks)."""
        return {
            "nodes": len(self._level),
            "unique_entries": len(self._unique),
            "apply_cache": len(self._apply_cache),
            "apply_cache_hits": self._apply_hits,
            "apply_cache_misses": self._apply_misses,
            "apply_calls": self._apply_calls,
            "not_cache": len(self._not_cache),
            "restrict_cache": len(self._restrict_cache),
            "reorders": self._reorders,
            "reorder_swaps": self._reorder_swaps,
        }

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def to_expr_string(self, node: int) -> str:
        """A human-readable sum-of-products rendering (for small BDDs)."""
        if node == FALSE:
            return "false"
        if node == TRUE:
            return "true"
        cubes: List[str] = []
        for cube in self._iter_cubes(node):
            literals = [
                name if positive else f"!{name}" for name, positive in cube
            ]
            cubes.append(" & ".join(literals))
        return " | ".join(cubes)

    def _iter_cubes(self, node: int) -> Iterator[Tuple[Tuple[str, bool], ...]]:
        """Yield the BDD's paths to ``true`` as cubes of literals."""
        if node == FALSE:
            return
        if node == TRUE:
            yield ()
            return
        level_, low_, high_ = self._level, self._low, self._high
        level_var = self._level_var
        path: List[Tuple[str, bool]] = []
        # Frames: (node, literal) appends the literal (if any) then visits
        # the node; (-1, None) pops the literal once the subtree is done.
        stack: List[Tuple[int, Optional[Tuple[str, bool]]]] = [(node, None)]
        while stack:
            current, literal = stack.pop()
            if current < 0:
                path.pop()
                continue
            if literal is not None:
                path.append(literal)
                stack.append((-1, None))
            if current == FALSE:
                continue
            if current == TRUE:
                yield tuple(path)
                continue
            name = level_var[level_[current]]
            stack.append((high_[current], (name, True)))
            stack.append((low_[current], (name, False)))

    def to_dot(self, node: int, name: str = "bdd") -> str:
        """Graphviz DOT rendering of the BDD rooted at ``node``."""
        self._check(node)
        lines = [f"digraph {name} {{", "  rankdir=TB;"]
        lines.append('  n0 [shape=box, label="0"];')
        lines.append('  n1 [shape=box, label="1"];')
        seen = set()
        stack = [node]
        while stack:
            current = stack.pop()
            if current <= TRUE or current in seen:
                continue
            seen.add(current)
            label = self._level_var[self._level[current]]
            lines.append(f'  n{current} [shape=circle, label="{label}"];')
            low, high = self._low[current], self._high[current]
            lines.append(f"  n{current} -> n{low} [style=dashed];")
            lines.append(f"  n{current} -> n{high} [style=solid];")
            stack.extend((low, high))
        lines.append("}")
        return "\n".join(lines)


class _SiftSession:
    """Mutable state for one :meth:`BDDManager.sift` invocation.

    Tracks per-level live sets, refcounts for the reachable sub-DAG, and the
    live size, and implements the adjacent-level swap primitive that keeps
    node ids denoting the same function (nodes are relabeled or rebuilt in
    place; retired nodes are removed from the unique table, never reused).
    """

    __slots__ = ("mgr", "ref", "live_at", "size")

    def __init__(
        self,
        mgr: BDDManager,
        ref: Dict[int, int],
        live_at: List[Set[int]],
        size: int,
    ) -> None:
        self.mgr = mgr
        self.ref = ref
        self.live_at = live_at
        self.size = size

    def sift_var(self, name: str, max_growth: float) -> None:
        """Sift variable ``name`` to its locally best level."""
        mgr = self.mgr
        nvars = len(mgr._level_var)
        pos = mgr._var_level[name]
        best_size, best_pos = self.size, pos
        # Sweep down to the bottom, then up to the top, tracking the best
        # (size, position); abort a direction on max_growth blowup.
        p = pos
        while p < nvars - 1 and self.size <= max_growth * best_size:
            self._swap(p)
            p += 1
            if self.size < best_size:
                best_size, best_pos = self.size, p
        while p > 0 and self.size <= max_growth * best_size:
            self._swap(p - 1)
            p -= 1
            if self.size < best_size:
                best_size, best_pos = self.size, p
        while p < best_pos:
            self._swap(p)
            p += 1
        while p > best_pos:
            self._swap(p - 1)
            p -= 1

    def _swap(self, x: int) -> None:
        """Swap the variables at adjacent levels ``x`` and ``x + 1``.

        Live nodes at ``x`` without a child at ``x + 1`` are relabeled down;
        the rest are rebuilt in place from their four cofactors.  Surviving
        nodes at ``x + 1`` are relabeled up.  Node ids in either group keep
        denoting the same Boolean function.
        """
        mgr = self.mgr
        y = x + 1
        level_, low_, high_ = mgr._level, mgr._low, mgr._high
        unique = mgr._unique
        ref = self.ref
        live_at = self.live_at
        old_y = frozenset(live_at[y])
        old_x = sorted(live_at[x])
        # Unregister every live entry at both levels; they are re-registered
        # as they are relabeled or rebuilt.  (Entries of untracked garbage
        # nodes at these levels are overwritten on re-registration.)
        for n in old_x:
            key = (x, low_[n], high_[n])
            if unique.get(key) == n:
                del unique[key]
        for n in old_y:
            key = (y, low_[n], high_[n])
            if unique.get(key) == n:
                del unique[key]
        new_x: Set[int] = set()
        new_y: Set[int] = set()

        rebuilt: List[int] = []
        # Phase 1: relabel independent x-nodes down to y first, so the
        # rebuild phase's mk can share them.
        for n in old_x:
            if low_[n] in old_y or high_[n] in old_y:
                rebuilt.append(n)
            else:
                level_[n] = y
                unique[(y, low_[n], high_[n])] = n
                new_y.add(n)

        def mk_y(low: int, high: int) -> int:
            if low == high:
                return low
            key = (y, low, high)
            hit = unique.get(key)
            if hit is not None and hit in new_y:
                return hit
            node = len(level_)
            level_.append(y)
            low_.append(low)
            high_.append(high)
            unique[key] = node
            new_y.add(node)
            ref[node] = 0
            if low > TRUE:
                ref[low] = ref.get(low, 0) + 1
            if high > TRUE:
                ref[high] = ref.get(high, 0) + 1
            self.size += 1
            return node

        def deref(node: int) -> None:
            stack = [node]
            while stack:
                d = stack.pop()
                if d <= TRUE:
                    continue
                ref[d] -= 1
                if ref[d]:
                    continue
                del ref[d]
                self.size -= 1
                lvl = level_[d]
                live_at[lvl].discard(d)
                key = (lvl, low_[d], high_[d])
                if unique.get(key) == d:
                    del unique[key]
                stack.append(low_[d])
                stack.append(high_[d])

        # Phase 2: rebuild the dependent x-nodes in place from their four
        # cofactors; fresh children land at level y.
        for n in rebuilt:
            low, high = low_[n], high_[n]
            if low in old_y:
                f00, f01 = low_[low], high_[low]
            else:
                f00 = f01 = low
            if high in old_y:
                f10, f11 = low_[high], high_[high]
            else:
                f10 = f11 = high
            c0 = mk_y(f00, f10)
            c1 = mk_y(f01, f11)
            # A rebuilt node has a child testing the swapped-in variable, so
            # it still depends on it: c0 != c1 and the node stays internal.
            low_[n], high_[n] = c0, c1
            unique[(x, c0, c1)] = n
            new_x.add(n)
            if c0 > TRUE:
                ref[c0] = ref.get(c0, 0) + 1
            if c1 > TRUE:
                ref[c1] = ref.get(c1, 0) + 1
            deref(low)
            deref(high)

        # Phase 3: surviving y-nodes (still referenced) move up to x.
        for s in live_at[y]:
            level_[s] = x
            unique[(x, low_[s], high_[s])] = s
            new_x.add(s)
        live_at[x] = new_x
        live_at[y] = new_y

        u, v = mgr._level_var[x], mgr._level_var[y]
        mgr._level_var[x], mgr._level_var[y] = v, u
        mgr._var_level[u] = y
        mgr._var_level[v] = x
        mgr._reorder_swaps += 1
