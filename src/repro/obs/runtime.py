"""Process-global telemetry state and the cross-process protocol.

One process holds one :class:`~repro.obs.metrics.MetricsRegistry`
(always on — recording a counter is a dict update, and only at phase
boundaries, store operations and pool events, never per propagation),
one always-on :class:`~repro.obs.flight.FlightRecorder` (the bounded
ring a postmortem reads — <2% overhead, bench-gated), one tracer (a
:class:`~repro.obs.flight.FlightTracer` feeding only the ring until
tracing is explicitly enabled) and optionally one
:class:`~repro.obs.log.EventLog` (``--log FILE`` / ``$SPLLIFT_LOG``).

Cross-process flow (``repro.core.parallel`` workers and scheduler jobs):

1. the parent calls :func:`ensure_run_id` / :func:`enable_tracing` /
   :func:`enable_log`, which pin ``$SPLLIFT_RUN_ID`` (a uuid — workers
   must never mint their own, date-dependent or otherwise),
   ``$SPLLIFT_TELEMETRY`` and ``$SPLLIFT_LOG`` in the environment the
   workers inherit; a pool additionally pins ``$SPLLIFT_FLIGHT_DIR``;
2. each worker's entry point calls :func:`activate_worker`, installing a
   **fresh** registry, flight recorder (spilling to
   ``$SPLLIFT_FLIGHT_DIR/flight-<pid>.jsonl`` so even SIGKILL leaves
   evidence) and tracer — under ``fork`` the child would otherwise
   inherit the parent's buffers and double-report them;
3. the worker ships :func:`worker_payload` (metric snapshot + drained
   span buffer) back over its existing result pipe — and, on an
   unhandled exception, a :func:`flight_dump` beside the error;
4. the parent folds it in with :func:`absorb_payload` — counters add,
   spans interleave on the shared monotonic timeline — so a ``-j 8``
   campaign still yields one registry and one coherent trace.
"""

from __future__ import annotations

import os
import uuid
from typing import Dict, List, Optional

from repro.obs.flight import (
    FLIGHT_DIR_ENV,
    FlightRecorder,
    FlightTracer,
)
from repro.obs.log import LOG_ENV, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.trace import NULL_TRACER, Tracer

__all__ = [
    "RUN_ID_ENV",
    "TELEMETRY_ENV",
    "metrics",
    "tracer",
    "progress",
    "flight",
    "flight_dump",
    "event_log",
    "tracing_enabled",
    "flight_enabled",
    "run_id",
    "ensure_run_id",
    "enable_tracing",
    "disable_tracing",
    "enable_flight",
    "disable_flight",
    "enable_log",
    "disable_log",
    "log_event",
    "set_progress",
    "publish_stats",
    "reset",
    "activate_worker",
    "worker_payload",
    "absorb_payload",
]

#: Campaign-wide run identifier, minted once in the parent and inherited
#: by every worker through the environment.
RUN_ID_ENV = "SPLLIFT_RUN_ID"

#: Set (to "1") while tracing is enabled, so worker processes — forked
#: or spawned — re-activate span collection on their side of the pipe.
TELEMETRY_ENV = "SPLLIFT_TELEMETRY"


class _ObsState:
    __slots__ = (
        "metrics",
        "tracer",
        "progress",
        "flight",
        "flight_on",
        "log",
    )

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.flight = FlightRecorder()
        self.flight_on = True
        self.tracer = FlightTracer(self.flight)
        self.progress: Optional[ProgressReporter] = None
        self.log: Optional[EventLog] = None


_state = _ObsState()


# ----------------------------------------------------------------------
# Accessors
# ----------------------------------------------------------------------


def metrics() -> MetricsRegistry:
    """This process's metrics registry (always available)."""
    return _state.metrics


def tracer():
    """The active tracer — flight-only until tracing is enabled."""
    return _state.tracer


def progress() -> Optional[ProgressReporter]:
    """The live progress reporter, or ``None`` (the default)."""
    return _state.progress


def flight() -> FlightRecorder:
    """This process's flight recorder (always available)."""
    return _state.flight


def event_log() -> Optional[EventLog]:
    """The structured event log, or ``None`` when not configured."""
    return _state.log


def tracing_enabled() -> bool:
    return _state.tracer.enabled


def flight_enabled() -> bool:
    return _state.flight_on


def run_id() -> Optional[str]:
    """The campaign run id, if one has been established."""
    return os.environ.get(RUN_ID_ENV) or None


def ensure_run_id() -> str:
    """The run id, minting one (uuid4) if this process is the first."""
    value = os.environ.get(RUN_ID_ENV)
    if not value:
        value = uuid.uuid4().hex[:16]
        os.environ[RUN_ID_ENV] = value
    return value


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def enable_tracing() -> Tracer:
    """Install a recording tracer (idempotent) and mark the environment
    so worker processes activate tracing too."""
    if not isinstance(_state.tracer, Tracer):
        _state.tracer = Tracer(
            run_id=ensure_run_id(),
            flight=_state.flight if _state.flight_on else None,
        )
        os.environ[TELEMETRY_ENV] = "1"
    return _state.tracer


def disable_tracing() -> None:
    _state.tracer = (
        FlightTracer(_state.flight) if _state.flight_on else NULL_TRACER
    )
    os.environ.pop(TELEMETRY_ENV, None)


def enable_flight() -> FlightRecorder:
    """(Re-)arm the always-on flight ring (the default state)."""
    if not _state.flight_on:
        _state.flight_on = True
        if isinstance(_state.tracer, Tracer):
            _state.tracer.flight = _state.flight
        else:
            _state.tracer = FlightTracer(_state.flight)
    return _state.flight


def disable_flight() -> None:
    """Disarm flight recording (the bench A/B baseline, nothing else)."""
    _state.flight_on = False
    if isinstance(_state.tracer, Tracer):
        _state.tracer.flight = None
    else:
        _state.tracer = NULL_TRACER


def enable_log(path) -> EventLog:
    """Open the structured JSONL event log and export it to workers."""
    if _state.log is not None:
        _state.log.close()
    _state.log = EventLog(path, run_id=ensure_run_id())
    os.environ[LOG_ENV] = str(path)
    return _state.log


def disable_log() -> None:
    if _state.log is not None:
        _state.log.close()
        _state.log = None
    os.environ.pop(LOG_ENV, None)


def log_event(event: str, level: str = "info", **fields) -> None:
    """Emit one structured event — to the log file (when configured)
    and, span-correlated, into the flight ring (always)."""
    span = _state.flight.current_span() if _state.flight_on else None
    if _state.log is not None:
        _state.log.event(event, level=level, span=span, **fields)
    if _state.flight_on:
        _state.flight.record("log", event, level=level, **fields)


def set_progress(reporter: Optional[ProgressReporter]) -> None:
    _state.progress = reporter


def reset() -> None:
    """Fresh registry, flight ring and default tracer, no progress, no
    log (tests, worker startup)."""
    _state.flight.close_spill()
    if _state.log is not None:
        _state.log.close()
    _state.metrics = MetricsRegistry()
    _state.flight = FlightRecorder()
    _state.flight_on = True
    _state.tracer = FlightTracer(_state.flight)
    _state.progress = None
    _state.log = None


def flight_dump(
    reason: str, job: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Package this process's ring as a ``spllift-flight/v1`` dict."""
    return _state.flight.dump(reason, run_id=run_id(), job=job)


def publish_stats(prefix: str, stats: Dict[str, object]) -> None:
    """Mirror a legacy ``stats`` dict into the registry as counters.

    Only plain-int values are counters (booleans and strings — e.g.
    ``worklist_order`` — stay in the dict-only view).  The dict remains
    the per-solve compatibility view; the registry accumulates across
    solves, which is what campaign-level aggregation wants.  The same
    deltas land in the flight ring as one ``counters`` event per call.
    """
    inc = _state.metrics.inc
    for name, value in stats.items():
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        inc(f"{prefix}.{name}", value)
    if _state.flight_on:
        _state.flight.note_counters(prefix, stats)


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------


def activate_worker() -> None:
    """Re-initialize telemetry inside a worker process.

    Installs a fresh registry and flight ring (a forked child inherits
    the parent's — snapshotting those would double-count every merged
    counter and replay the parent's events) and, when
    ``$SPLLIFT_TELEMETRY`` is set, a fresh tracer bound to the worker's
    own pid.  With ``$SPLLIFT_FLIGHT_DIR`` set (pool workers), the new
    ring spills to ``flight-<pid>.jsonl`` so the parent can reconstruct
    this worker's last moments even after SIGKILL.  With
    ``$SPLLIFT_LOG`` set, the worker appends to the shared event log.
    """
    _state.flight.close_spill()
    _state.metrics = MetricsRegistry()
    _state.progress = None
    spill_dir = os.environ.get(FLIGHT_DIR_ENV)
    spill_path = (
        os.path.join(spill_dir, f"flight-{os.getpid()}.jsonl")
        if spill_dir
        else None
    )
    _state.flight = FlightRecorder(spill_path=spill_path)
    _state.flight_on = True
    if os.environ.get(TELEMETRY_ENV) == "1":
        _state.tracer = Tracer(run_id=run_id(), flight=_state.flight)
    else:
        _state.tracer = FlightTracer(_state.flight)
    if _state.log is not None:
        _state.log.close()
    log_path = os.environ.get(LOG_ENV)
    _state.log = EventLog(log_path, run_id=run_id()) if log_path else None


def worker_payload() -> Dict[str, object]:
    """What a worker ships back beside its result: the metric snapshot
    and (when tracing) its drained span buffer."""
    return {
        "metrics": _state.metrics.snapshot(),
        "events": _state.tracer.drain(),
        "run_id": run_id(),
    }


def absorb_payload(payload: Optional[Dict[str, object]]) -> None:
    """Parent side: merge one worker's payload into this process."""
    if not payload:
        return
    snapshot = payload.get("metrics")
    if snapshot:
        _state.metrics.merge(snapshot)
    events: List[dict] = payload.get("events") or []
    if events:
        _state.tracer.absorb(events)
