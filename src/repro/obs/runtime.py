"""Process-global telemetry state and the cross-process protocol.

One process holds one :class:`~repro.obs.metrics.MetricsRegistry`
(always on — recording a counter is a dict update, and only at phase
boundaries, store operations and pool events, never per propagation)
and one tracer (a :class:`~repro.obs.trace.NullTracer` until tracing is
explicitly enabled, so the disabled path is a no-op guard).

Cross-process flow (``repro.core.parallel`` workers and scheduler jobs):

1. the parent calls :func:`ensure_run_id` / :func:`enable_tracing`,
   which pin ``$SPLLIFT_RUN_ID`` (a uuid — workers must never mint their
   own, date-dependent or otherwise) and ``$SPLLIFT_TELEMETRY`` in the
   environment the workers inherit;
2. each worker's entry point calls :func:`activate_worker`, installing a
   **fresh** registry and tracer — under ``fork`` the child would
   otherwise inherit the parent's buffers and double-report them;
3. the worker ships :func:`worker_payload` (metric snapshot + drained
   span buffer) back over its existing result pipe;
4. the parent folds it in with :func:`absorb_payload` — counters add,
   spans interleave on the shared monotonic timeline — so a ``-j 8``
   campaign still yields one registry and one coherent trace.
"""

from __future__ import annotations

import os
import uuid
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "RUN_ID_ENV",
    "TELEMETRY_ENV",
    "metrics",
    "tracer",
    "progress",
    "tracing_enabled",
    "run_id",
    "ensure_run_id",
    "enable_tracing",
    "disable_tracing",
    "set_progress",
    "publish_stats",
    "reset",
    "activate_worker",
    "worker_payload",
    "absorb_payload",
]

#: Campaign-wide run identifier, minted once in the parent and inherited
#: by every worker through the environment.
RUN_ID_ENV = "SPLLIFT_RUN_ID"

#: Set (to "1") while tracing is enabled, so worker processes — forked
#: or spawned — re-activate span collection on their side of the pipe.
TELEMETRY_ENV = "SPLLIFT_TELEMETRY"


class _ObsState:
    __slots__ = ("metrics", "tracer", "progress")

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = NULL_TRACER
        self.progress: Optional[ProgressReporter] = None


_state = _ObsState()


# ----------------------------------------------------------------------
# Accessors
# ----------------------------------------------------------------------


def metrics() -> MetricsRegistry:
    """This process's metrics registry (always available)."""
    return _state.metrics


def tracer():
    """The active tracer — a :class:`NullTracer` unless tracing is on."""
    return _state.tracer


def progress() -> Optional[ProgressReporter]:
    """The live progress reporter, or ``None`` (the default)."""
    return _state.progress


def tracing_enabled() -> bool:
    return _state.tracer.enabled


def run_id() -> Optional[str]:
    """The campaign run id, if one has been established."""
    return os.environ.get(RUN_ID_ENV) or None


def ensure_run_id() -> str:
    """The run id, minting one (uuid4) if this process is the first."""
    value = os.environ.get(RUN_ID_ENV)
    if not value:
        value = uuid.uuid4().hex[:16]
        os.environ[RUN_ID_ENV] = value
    return value


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------


def enable_tracing() -> Tracer:
    """Install a recording tracer (idempotent) and mark the environment
    so worker processes activate tracing too."""
    if not isinstance(_state.tracer, Tracer):
        _state.tracer = Tracer(run_id=ensure_run_id())
        os.environ[TELEMETRY_ENV] = "1"
    return _state.tracer


def disable_tracing() -> None:
    _state.tracer = NULL_TRACER
    os.environ.pop(TELEMETRY_ENV, None)


def set_progress(reporter: Optional[ProgressReporter]) -> None:
    _state.progress = reporter


def reset() -> None:
    """Fresh registry, null tracer, no progress (tests, worker startup)."""
    _state.metrics = MetricsRegistry()
    _state.tracer = NULL_TRACER
    _state.progress = None


def publish_stats(prefix: str, stats: Dict[str, object]) -> None:
    """Mirror a legacy ``stats`` dict into the registry as counters.

    Only plain-int values are counters (booleans and strings — e.g.
    ``worklist_order`` — stay in the dict-only view).  The dict remains
    the per-solve compatibility view; the registry accumulates across
    solves, which is what campaign-level aggregation wants.
    """
    inc = _state.metrics.inc
    for name, value in stats.items():
        if isinstance(value, bool) or not isinstance(value, int):
            continue
        inc(f"{prefix}.{name}", value)


# ----------------------------------------------------------------------
# Worker protocol
# ----------------------------------------------------------------------


def activate_worker() -> None:
    """Re-initialize telemetry inside a worker process.

    Installs a fresh registry (a forked child inherits the parent's —
    snapshotting that would double-count every merged counter) and, when
    ``$SPLLIFT_TELEMETRY`` is set, a fresh tracer bound to the worker's
    own pid.
    """
    _state.metrics = MetricsRegistry()
    _state.progress = None
    if os.environ.get(TELEMETRY_ENV) == "1":
        _state.tracer = Tracer(run_id=run_id())
    else:
        _state.tracer = NULL_TRACER


def worker_payload() -> Dict[str, object]:
    """What a worker ships back beside its result: the metric snapshot
    and (when tracing) its drained span buffer."""
    return {
        "metrics": _state.metrics.snapshot(),
        "events": _state.tracer.drain(),
        "run_id": run_id(),
    }


def absorb_payload(payload: Optional[Dict[str, object]]) -> None:
    """Parent side: merge one worker's payload into this process."""
    if not payload:
        return
    snapshot = payload.get("metrics")
    if snapshot:
        _state.metrics.merge(snapshot)
    events: List[dict] = payload.get("events") or []
    if events:
        _state.tracer.absorb(events)
