"""Cross-run metric regression machinery.

This is the library behind two user surfaces with one contract:

- ``scripts/compare_metrics.py`` — the CI gate that fails the build when
  committed baseline counters drift (``micro/bdd_kernel``,
  ``engine/datalog`` thresholds at 0);
- ``spllift obs diff A B`` — the operator's view of the same question
  between two runs' ``--metrics`` snapshots (summary-reuse-ratio drop,
  ``datalog.*`` drift, store hit-ratio regressions).

Counters and gauges present in both snapshots are compared by relative
drift ``(current - baseline) / baseline``; histograms by their sample
``count``.  A comparison fails when drift exceeds the threshold in
either direction — a large unexplained *drop* usually means work was
silently skipped.  Thresholds are relative fractions (``0.1`` = ±10%);
per-name overrides are fnmatch patterns and the most specific match
wins (longest pattern, ties broken in favor of later flags).
"""

from __future__ import annotations

import fnmatch
import json
from typing import Dict, List, Optional, Tuple

__all__ = [
    "load_snapshot",
    "parse_threshold_overrides",
    "threshold_for",
    "compare",
]

#: Sections of a snapshot's ``metrics`` object and the scalar compared.
_SECTIONS = ("counters", "gauges", "histograms")


def load_snapshot(path: str) -> Dict[str, float]:
    """Flatten a ``--metrics`` file into ``name -> scalar``.

    Counter/gauge values map directly; histograms contribute their
    sample ``count`` under ``<name>.count``.
    """
    with open(path) as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{path}: not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ValueError(f"{path}: no metrics object found")
    metrics = document.get("metrics", document)
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: no metrics object found")
    flat: Dict[str, float] = {}
    for section in _SECTIONS:
        entries = metrics.get(section, {})
        if not isinstance(entries, dict):
            raise ValueError(f"{path}: metrics.{section} is not an object")
        for name, value in entries.items():
            if section == "histograms":
                if isinstance(value, dict) and isinstance(
                    value.get("count"), (int, float)
                ):
                    flat[f"{name}.count"] = float(value["count"])
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                flat[name] = float(value)
    return flat


def parse_threshold_overrides(specs: List[str]) -> List[Tuple[str, float]]:
    """Parse repeated ``PATTERN=FRACTION`` flags (validated)."""
    overrides: List[Tuple[str, float]] = []
    for spec in specs:
        pattern, sep, raw = spec.rpartition("=")
        if not sep or not pattern:
            raise ValueError(f"bad --threshold-for {spec!r}: expected NAME=FRACTION")
        try:
            fraction = float(raw)
        except ValueError:
            raise ValueError(f"bad --threshold-for {spec!r}: {raw!r} is not a number")
        if fraction < 0:
            raise ValueError(f"bad --threshold-for {spec!r}: threshold must be >= 0")
        overrides.append((pattern, fraction))
    return overrides


def threshold_for(
    name: str, default: float, overrides: List[Tuple[str, float]]
) -> float:
    """Most specific matching override (longest pattern, later flags win)."""
    best: Optional[Tuple[int, int]] = None
    chosen = default
    for position, (pattern, fraction) in enumerate(overrides):
        if fnmatch.fnmatchcase(name, pattern):
            rank = (len(pattern), position)
            if best is None or rank >= best:
                best = rank
                chosen = fraction
    return chosen


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    default_threshold: float,
    overrides: List[Tuple[str, float]],
    only: List[str],
    ignore: List[str],
    allow_missing: bool,
) -> Tuple[List[str], List[str]]:
    """Returns ``(violations, report_lines)``."""

    def selected(name: str) -> bool:
        if only and not any(fnmatch.fnmatchcase(name, p) for p in only):
            return False
        return not any(fnmatch.fnmatchcase(name, p) for p in ignore)

    violations: List[str] = []
    report: List[str] = []
    names = sorted(set(baseline) | set(current))
    for name in names:
        if not selected(name):
            continue
        in_base, in_cur = name in baseline, name in current
        if not (in_base and in_cur):
            side = "baseline" if not in_base else "current"
            line = f"{name}: missing from {side}"
            report.append(line + ("" if allow_missing else "  MISSING"))
            if not allow_missing:
                violations.append(line)
            continue
        base, cur = baseline[name], current[name]
        limit = threshold_for(name, default_threshold, overrides)
        if base == cur:
            drift = 0.0
        elif base == 0.0:
            drift = float("inf")
        else:
            drift = (cur - base) / abs(base)
        ok = abs(drift) <= limit
        drift_text = f"{drift:+.1%}" if drift not in (float("inf"),) else "+inf"
        line = (
            f"{name}: {base:g} -> {cur:g} ({drift_text}, limit ±{limit:.1%})"
        )
        report.append(line + ("" if ok else "  DRIFT"))
        if not ok:
            violations.append(line)
    return violations, report
