"""`repro.obs` — zero-dependency telemetry: metrics, tracing, progress,
flight recording and structured logging.

Import discipline: this package must import **only the standard
library** (plus its own submodules), because instrumented modules deep
inside ``repro`` import it during package initialization.  Those
modules use ``from repro.obs import runtime as obs`` — a submodule
import that is safe while ``repro/__init__`` is still executing.
"""

from repro.obs.flight import (
    FLIGHT_CAPACITY_ENV,
    FLIGHT_DIR_ENV,
    FLIGHT_SCHEMA,
    FlightRecorder,
    FlightTracer,
    load_flight_dump,
    load_spill,
    render_postmortem,
)
from repro.obs.log import LOG_ENV, EventLog, format_line, iter_log
from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from repro.obs.progress import ProgressReporter
from repro.obs.runtime import (
    RUN_ID_ENV,
    TELEMETRY_ENV,
    absorb_payload,
    activate_worker,
    disable_flight,
    disable_log,
    disable_tracing,
    enable_flight,
    enable_log,
    enable_tracing,
    ensure_run_id,
    event_log,
    flight,
    flight_dump,
    flight_enabled,
    log_event,
    metrics,
    progress,
    publish_stats,
    reset,
    run_id,
    set_progress,
    tracer,
    tracing_enabled,
    worker_payload,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_trace,
    summarize_trace,
    write_trace,
)

__all__ = [
    "HISTOGRAM_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "ProgressReporter",
    "RUN_ID_ENV",
    "TELEMETRY_ENV",
    "FLIGHT_SCHEMA",
    "FLIGHT_DIR_ENV",
    "FLIGHT_CAPACITY_ENV",
    "LOG_ENV",
    "EventLog",
    "FlightRecorder",
    "FlightTracer",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "read_trace",
    "summarize_trace",
    "write_trace",
    "load_flight_dump",
    "load_spill",
    "render_postmortem",
    "iter_log",
    "format_line",
    "absorb_payload",
    "activate_worker",
    "disable_flight",
    "disable_log",
    "disable_tracing",
    "enable_flight",
    "enable_log",
    "enable_tracing",
    "ensure_run_id",
    "event_log",
    "flight",
    "flight_dump",
    "flight_enabled",
    "log_event",
    "metrics",
    "progress",
    "publish_stats",
    "reset",
    "run_id",
    "set_progress",
    "tracer",
    "tracing_enabled",
    "worker_payload",
]
