"""`repro.obs` — zero-dependency telemetry: metrics, tracing, progress.

Import discipline: this package must import **only the standard
library** (plus its own submodules), because instrumented modules deep
inside ``repro`` import it during package initialization.  Those
modules use ``from repro.obs import runtime as obs`` — a submodule
import that is safe while ``repro/__init__`` is still executing.
"""

from repro.obs.metrics import HISTOGRAM_BOUNDS, Histogram, MetricsRegistry
from repro.obs.progress import ProgressReporter
from repro.obs.runtime import (
    RUN_ID_ENV,
    TELEMETRY_ENV,
    absorb_payload,
    activate_worker,
    disable_tracing,
    enable_tracing,
    ensure_run_id,
    metrics,
    progress,
    publish_stats,
    reset,
    run_id,
    set_progress,
    tracer,
    tracing_enabled,
    worker_payload,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    read_trace,
    summarize_trace,
    write_trace,
)

__all__ = [
    "HISTOGRAM_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "ProgressReporter",
    "RUN_ID_ENV",
    "TELEMETRY_ENV",
    "NULL_TRACER",
    "NullTracer",
    "Tracer",
    "read_trace",
    "summarize_trace",
    "write_trace",
    "absorb_payload",
    "activate_worker",
    "disable_tracing",
    "enable_tracing",
    "ensure_run_id",
    "metrics",
    "progress",
    "publish_stats",
    "reset",
    "run_id",
    "set_progress",
    "tracer",
    "tracing_enabled",
    "worker_payload",
]
