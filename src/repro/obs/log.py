"""Structured JSONL event log — one line per operational event.

Where the tracer answers "where did the time go" and the metrics
registry answers "how much work happened", the event log answers "what
happened, in order, with ids" — the thing an operator greps when a
fleet misbehaves.  One :class:`EventLog` per process appends JSON lines

    {"ts": ..., "level": "info", "event": "job.done", "run_id": "...",
     "pid": 12345, "span": "scheduler.job", ...fields}

to a file opened with ``--log FILE`` or ``$SPLLIFT_LOG``.  Workers
inherit the path through the environment and append to the *same* file
— appends of one ``write()`` under ~4 KiB are atomic on POSIX, and
every line carries its pid, so interleaving is safe and attributable.

``span`` is the innermost open flight-recorder span at emit time, which
is what correlates a log line with the trace/flight view of the same
moment.  Every emitted line is also mirrored into the flight ring (kind
``log``) so a postmortem shows the dead worker's last words even when
no ``--log`` file was configured.

The log is best-effort: a full disk or yanked file never takes the
analysis down (digests must stay bit-identical with logging enabled —
that includes "enabled but failing").
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Optional

__all__ = ["LOG_ENV", "EventLog", "iter_log", "format_line"]

#: Path of the shared JSONL event log; set by ``--log`` in the parent
#: and inherited by every worker.
LOG_ENV = "SPLLIFT_LOG"


class EventLog:
    """Append-only JSONL sink for one process."""

    def __init__(self, path, run_id: Optional[str] = None) -> None:
        self.path = str(path)
        self.run_id = run_id
        try:
            self._handle = open(self.path, "a", encoding="utf-8")
        except OSError:
            self._handle = None
        self._pid = os.getpid()

    @property
    def active(self) -> bool:
        return self._handle is not None

    def event(
        self,
        event: str,
        level: str = "info",
        span: Optional[str] = None,
        **fields,
    ) -> Optional[Dict[str, object]]:
        """Emit one event line; returns the record (or ``None`` if dead)."""
        if self._handle is None:
            return None
        record: Dict[str, object] = {
            "ts": round(time.time(), 6),
            "level": level,
            "event": event,
            "run_id": self.run_id,
            "pid": self._pid,
        }
        if span:
            record["span"] = span
        if fields:
            record.update(fields)
        try:
            self._handle.write(
                json.dumps(record, separators=(",", ":"), sort_keys=True) + "\n"
            )
            self._handle.flush()
        except (OSError, ValueError):
            self.close()
            return None
        return record

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


# ----------------------------------------------------------------------
# Reading (``spllift obs tail``)
# ----------------------------------------------------------------------


def iter_log(path):
    """Yield parsed records from a JSONL event log, skipping torn lines."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # a concurrent writer's torn line
            if isinstance(record, dict):
                yield record


def format_line(record: Dict[str, object]) -> str:
    """One human-readable line per record (``spllift obs tail``)."""
    ts = record.get("ts")
    if isinstance(ts, (int, float)):
        clock = time.strftime("%H:%M:%S", time.localtime(ts))
        clock += f".{int(round((ts % 1) * 1000)):03d}"
    else:
        clock = "--:--:--"
    level = str(record.get("level", "info"))
    event = str(record.get("event", "?"))
    parts = [f"{clock} {level:<5} {event}"]
    pid = record.get("pid")
    if pid is not None:
        parts.append(f"pid={pid}")
    span = record.get("span")
    if span:
        parts.append(f"span={span}")
    skip = {"ts", "level", "event", "run_id", "pid", "span"}
    for key in sorted(record):
        if key in skip:
            continue
        value = record[key]
        if isinstance(value, float):
            value = round(value, 4)
        parts.append(f"{key}={value}")
    return "  ".join(parts)
