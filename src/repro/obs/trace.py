"""Span-based tracing in the Chrome ``trace_event`` format.

A :class:`Tracer` records begin/end span pairs (``ph: "B"``/``"E"``),
instant events (``ph: "i"``) and retrospective complete spans, all
timestamped with the monotonic clock in microseconds — the unit Chrome's
format specifies.  On Linux ``time.perf_counter`` reads the system-wide
``CLOCK_MONOTONIC``, so events recorded in forked worker processes merge
with the parent's on one consistent timeline.

:func:`write_trace` emits a file that is simultaneously

- **valid JSON** (an array, so strict tools can ``json.load`` it),
- **one event per line** (so it greps/diffs like JSONL), and
- **Chrome trace_event compatible** (so it opens directly in Perfetto
  or ``chrome://tracing``), including ``process_name`` metadata rows
  labelling the main process and each worker pid.

:func:`summarize_trace` aggregates a trace into a per-span-name time
breakdown plus a top-level coverage figure — what ``spllift trace
summary`` prints.

The disabled path is :class:`NullTracer`: ``span()`` returns a shared
no-op context manager and ``instant()`` does nothing, so an untraced run
pays one attribute load and a branch per would-be span.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "write_trace",
    "read_trace",
    "summarize_trace",
    "fold_trace",
]


class _Span:
    """Context manager emitting a B event on enter and an E on exit."""

    __slots__ = ("_tracer", "_name", "_args")

    def __init__(self, tracer: "Tracer", name: str, args: Optional[dict]) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args

    def __enter__(self) -> "_Span":
        self._tracer._emit("B", self._name, self._args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._tracer._emit("E", self._name, None)
        return False


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    enabled = False
    run_id: Optional[str] = None

    def span(self, name: str, **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, **args) -> None:
        return None

    def complete(self, name, start_us, end_us, tid=None, **args) -> None:
        return None

    def events(self) -> List[dict]:
        return []

    def drain(self) -> List[dict]:
        return []

    def absorb(self, events: Iterable[dict]) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Buffers trace events for one process.

    Events are plain dicts in the Chrome ``trace_event`` shape; ``ts``
    is ``time.perf_counter()`` in microseconds.  The pid/tid are sampled
    at construction time, which is why worker processes install a fresh
    tracer after fork (:func:`repro.obs.runtime.activate_worker`) — the
    inherited buffer would otherwise replay the parent's events.
    """

    enabled = True

    def __init__(self, run_id: Optional[str] = None, flight=None) -> None:
        self.run_id = run_id
        self._events: List[dict] = []
        self._pid = os.getpid()
        self._tid = threading.get_ident() & 0xFFFF
        #: Optional flight-recorder sink: while real tracing is on, the
        #: always-on ring keeps seeing the same span stream it saw when
        #: the :class:`~repro.obs.flight.FlightTracer` was installed.
        self.flight = flight

    # -- recording -----------------------------------------------------

    def _emit(self, ph: str, name: str, args: Optional[dict]) -> None:
        event = {
            "name": name,
            "ph": ph,
            "ts": time.perf_counter() * 1e6,
            "pid": self._pid,
            "tid": self._tid,
        }
        if args:
            event["args"] = args
        self._events.append(event)
        if self.flight is not None:
            if ph == "B":
                self.flight.span_begin(name, args)
            elif ph == "E":
                self.flight.span_end(name)

    def span(self, name: str, **args) -> _Span:
        """Context manager tracing one nested span."""
        return _Span(self, name, args or None)

    def instant(self, name: str, **args) -> None:
        """A point-in-time event (``ph: "i"``, e.g. a BDD reorder)."""
        event = {
            "name": name,
            "ph": "i",
            "ts": time.perf_counter() * 1e6,
            "pid": self._pid,
            "tid": self._tid,
            "s": "p",  # instant scope: process
        }
        if args:
            event["args"] = args
        self._events.append(event)
        if self.flight is not None:
            self.flight.record("instant", name, **args)

    def complete(
        self,
        name: str,
        start_us: float,
        end_us: float,
        tid: Optional[int] = None,
        **args,
    ) -> None:
        """Record a span retrospectively from captured timestamps.

        Used by the parent process for worker task lifetimes: the B/E
        pair lands on ``tid`` (default: this tracer's thread), letting
        concurrent tasks occupy separate rows instead of producing
        improperly-nested events on one track.
        """
        track = self._tid if tid is None else tid
        begin = {
            "name": name,
            "ph": "B",
            "ts": start_us,
            "pid": self._pid,
            "tid": track,
        }
        if args:
            begin["args"] = args
        self._events.append(begin)
        self._events.append(
            {"name": name, "ph": "E", "ts": end_us, "pid": self._pid, "tid": track}
        )
        if self.flight is not None:
            self.flight.record(
                "complete",
                name,
                duration_us=round(float(end_us) - float(start_us), 1),
                **args,
            )

    # -- aggregation ---------------------------------------------------

    def events(self) -> List[dict]:
        return list(self._events)

    def drain(self) -> List[dict]:
        """Return and clear the buffer (worker → parent shipping)."""
        events, self._events = self._events, []
        return events

    def absorb(self, events: Iterable[dict]) -> None:
        """Append events shipped from another process."""
        self._events.extend(events)


# ----------------------------------------------------------------------
# Trace files
# ----------------------------------------------------------------------


def write_trace(
    events: Iterable[dict], path, run_id: Optional[str] = None
) -> int:
    """Write events as a one-event-per-line Chrome trace; returns count.

    Events are sorted by timestamp (workers ship theirs out of order
    relative to the parent's) and prefixed with ``process_name``
    metadata rows so Perfetto labels the main process and each worker.
    """
    events = sorted(events, key=lambda event: event.get("ts", 0.0))
    pids: List[int] = []
    for event in events:
        pid = event.get("pid")
        if pid is not None and pid not in pids:
            pids.append(pid)
    metadata = []
    for position, pid in enumerate(pids):
        label = "spllift" if position == 0 else f"spllift worker {pid}"
        if run_id:
            label += f" [{run_id}]"
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    lines = [
        json.dumps(event, separators=(",", ":"), sort_keys=True)
        for event in metadata + events
    ]
    with open(path, "w") as handle:
        handle.write("[\n")
        handle.write(",\n".join(lines))
        handle.write("\n]\n")
    return len(events)


def read_trace(path) -> List[dict]:
    """Load a trace written by :func:`write_trace` (or plain JSONL)."""
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
        if isinstance(data, dict):  # {"traceEvents": [...]} object format,
            # or a single-event JSONL line (itself valid JSON)
            data = data.get("traceEvents", [data] if "ph" in data else [])
        return [event for event in data if isinstance(event, dict)]
    except json.JSONDecodeError:
        pass
    events = []
    for line in text.splitlines():
        line = line.strip().rstrip(",")
        if not line or line in ("[", "]"):
            continue
        event = json.loads(line)
        if isinstance(event, dict):
            events.append(event)
    return events


def summarize_trace(events: List[dict]) -> Dict[str, object]:
    """Per-span-name totals plus top-level wall-clock coverage.

    Returns ``wall_us`` (first B/i to last E/i timestamp), ``rows``
    (name, count, total_us, pct-of-wall, max depth) sorted by total
    time, and ``top_level_us`` — time covered by depth-0 spans across
    all tracks, the figure behind "breakdown sums to ≥90% of wall".
    Top-level coverage merges depth-0 intervals across processes, so
    concurrent workers don't count the same wall-clock second twice.
    """
    timestamps = [
        float(event["ts"])
        for event in events
        if event.get("ph") in ("B", "E", "i", "X")
    ]
    wall = (max(timestamps) - min(timestamps)) if timestamps else 0.0

    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    depths: Dict[str, int] = {}
    intervals: List[Tuple[float, float]] = []  # depth-0 spans, any track
    stacks: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}
    for event in sorted(events, key=lambda event: float(event.get("ts", 0.0))):
        ph = event.get("ph")
        if ph not in ("B", "E"):
            continue
        track = (event.get("pid", 0), event.get("tid", 0))
        stack = stacks.setdefault(track, [])
        if ph == "B":
            depth = len(stack)
            name = str(event["name"])
            depths[name] = max(depths.get(name, 0), depth)
            stack.append((name, float(event["ts"])))
        elif stack:
            name, started = stack.pop()
            elapsed = float(event["ts"]) - started
            totals[name] = totals.get(name, 0.0) + elapsed
            counts[name] = counts.get(name, 0) + 1
            if not stack:
                intervals.append((started, float(event["ts"])))

    merged: List[List[float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    top_level = sum(end - start for start, end in merged)

    rows = [
        {
            "name": name,
            "count": counts[name],
            "total_us": total,
            "pct": (100.0 * total / wall) if wall else 0.0,
            "depth": depths.get(name, 0),
        }
        for name, total in sorted(totals.items(), key=lambda item: -item[1])
    ]
    return {
        "wall_us": wall,
        "rows": rows,
        "top_level_us": top_level,
        "coverage_pct": (100.0 * top_level / wall) if wall else 0.0,
    }


def fold_trace(events: List[dict]) -> List[str]:
    """Collapse a span trace into folded-stack lines for flamegraph tools.

    Output is Brendan Gregg's "folded" format — one line per distinct
    call stack, ``frame;frame;...;frame <value>`` — with the value being
    the stack's **self time in integer microseconds** (time inside the
    innermost frame not covered by its child spans), summed over every
    occurrence on any ``(pid, tid)`` track.  Feeding the lines to
    ``flamegraph.pl`` (or any speedscope-style importer) reproduces the
    span hierarchy with correct inclusive widths, because a stack's
    inclusive time is its own self time plus its descendants'.

    Frames containing ``;`` (the stack separator) or whitespace are
    sanitized to ``_``; zero-self-time stacks are dropped.  Lines are
    sorted for deterministic output.
    """
    folded: Dict[str, float] = {}
    # Per-track stack of [name, start_ts, child_time_us].
    stacks: Dict[Tuple[int, int], List[List[object]]] = {}
    for event in sorted(events, key=lambda event: float(event.get("ts", 0.0))):
        ph = event.get("ph")
        if ph not in ("B", "E"):
            continue
        track = (event.get("pid", 0), event.get("tid", 0))
        stack = stacks.setdefault(track, [])
        if ph == "B":
            name = "".join(
                "_" if ch == ";" or ch.isspace() else ch
                for ch in str(event["name"])
            )
            stack.append([name, float(event["ts"]), 0.0])
        elif stack:
            name, started, child_time = stack.pop()
            elapsed = float(event["ts"]) - started
            if stack:
                stack[-1][2] += elapsed
            path = ";".join(frame[0] for frame in stack) if stack else ""
            key = f"{path};{name}" if path else name
            folded[key] = folded.get(key, 0.0) + max(0.0, elapsed - child_time)
    return sorted(
        f"{key} {int(round(value))}"
        for key, value in folded.items()
        if int(round(value)) > 0
    )
