"""Opt-in live progress line for long-running solves.

A :class:`ProgressReporter` renders a single carriage-return-updated
stderr line — worklist depth, jump functions, BDD nodes, elapsed time —
from throttled ``tick`` calls inside the solver loops.  The throttle is
wall-clock based (default 4 updates/second), and the solver additionally
masks its calls to one in ~1k worklist pops, so an enabled progress line
costs the hot loop almost nothing and a disabled one costs a single
``is None`` check.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Dict, Optional, TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Throttled single-line progress display on a terminal stream."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        interval: float = 0.25,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._started = time.perf_counter()
        # -inf, not 0.0: perf_counter's epoch is unspecified (it can start
        # near zero at boot/process start), and the first tick must land.
        self._last_emit = float("-inf")
        self._dirty = False
        self._width = 0
        #: Optional provider of extra fields (e.g. live BDD node count),
        #: set by the layer that knows about them (``SPLLift.solve``).
        self.extra: Optional[Callable[[], Dict[str, object]]] = None
        self.updates = 0

    def tick(self, phase: str, **fields) -> None:
        """Maybe render one update (rate-limited to ``interval``)."""
        now = time.perf_counter()
        if now - self._last_emit < self.interval:
            return
        self._last_emit = now
        if self.extra is not None:
            for name, value in self.extra().items():
                fields.setdefault(name, value)
        parts = [phase]
        parts.extend(
            f"{name} {value:,}" if isinstance(value, int) else f"{name} {value}"
            for name, value in fields.items()
        )
        parts.append(f"{now - self._started:.1f}s")
        line = " | ".join(parts)
        self._width = max(self._width, len(line))
        try:
            self._stream.write("\r" + line.ljust(self._width))
            self._stream.flush()
        except (OSError, ValueError):
            return  # closed/broken stream: progress is best-effort
        self._dirty = True
        self.updates += 1

    def finish(self) -> None:
        """Clear the progress line (call once the work completes)."""
        if not self._dirty:
            return
        try:
            self._stream.write("\r" + " " * self._width + "\r")
            self._stream.flush()
        except (OSError, ValueError):
            pass
        self._dirty = False
