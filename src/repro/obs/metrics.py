"""Named counters, gauges and histograms behind one registry API.

The registry is the single sink for every work counter in the system —
the IDE/IFDS solver counters, the BDD engine's apply-cache statistics,
the process pool's task accounting and the result store's hit/latency
figures all land here (the historical per-component ``stats`` dicts
remain as compatibility views).  Three primitives cover all of them:

- **counters** — monotonically increasing integers (``inc``);
- **gauges** — last-written level samples (``gauge``/``gauge_max``);
- **histograms** — value distributions with exponential buckets,
  tracking count/sum/min/max (``observe``; latencies in seconds).

Everything is plain data: :meth:`MetricsRegistry.snapshot` returns a
JSON- and pickle-friendly dict, and :meth:`MetricsRegistry.merge` folds
such a snapshot back in — which is how worker processes ship their
metrics over the result pipes and the parent aggregates a whole
campaign into one coherent registry (counters and histograms add,
gauges combine via ``max``, the only order-independent choice).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Histogram",
    "MetricsRegistry",
    "HISTOGRAM_BOUNDS",
    "render_prometheus",
]

#: Exponential bucket upper bounds (seconds when observing latencies):
#: 1µs, 4µs, 16µs, … ~4.4min, plus the implicit +inf overflow bucket.
HISTOGRAM_BOUNDS: Tuple[float, ...] = tuple(1e-6 * 4**i for i in range(14))


class Histogram:
    """Count/sum/min/max plus exponential buckets over observed values."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.buckets: List[int] = [0] * (len(HISTOGRAM_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.buckets[bisect_left(HISTOGRAM_BOUNDS, value)] += 1

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def snapshot(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": list(self.buckets),
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        self.count += int(snapshot["count"])
        self.total += float(snapshot["sum"])
        for bound in ("min", "max"):
            other = snapshot.get(bound)
            if other is None:
                continue
            mine = getattr(self, bound)
            if mine is None:
                setattr(self, bound, other)
            elif bound == "min":
                self.min = min(mine, other)
            else:
                self.max = max(mine, other)
        for index, count in enumerate(snapshot.get("buckets", ())):
            if index < len(self.buckets):
                self.buckets[index] += int(count)


class MetricsRegistry:
    """One process's named counters, gauges and histograms."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- write side ----------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at 0)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if higher (high-water mark)."""
        if value > self._gauges.get(name, float("-inf")):
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # -- read side -----------------------------------------------------

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    @property
    def counters(self) -> Dict[str, int]:
        return dict(self._counters)

    @property
    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    def hit_ratio(self, hits: str, misses: str) -> Optional[float]:
        """``hits / (hits + misses)`` over two counters, ``None`` if both 0."""
        hit_count = self._counters.get(hits, 0)
        total = hit_count + self._counters.get(misses, 0)
        return hit_count / total if total else None

    # -- aggregation ---------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-data snapshot, suitable for pipes, pickling and JSON."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            },
        }

    def merge(self, snapshot: Dict[str, object]) -> None:
        """Fold a :meth:`snapshot` from another process into this registry.

        Counters and histogram contents add; gauges combine via ``max``
        (the only merge that is independent of worker arrival order).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge_max(name, float(value))
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge(data)

    def describe(self) -> Dict[str, object]:
        """Human/JSON-facing report: snapshot plus derived histogram stats."""
        histograms: Dict[str, object] = {}
        for name, histogram in sorted(self._histograms.items()):
            row = histogram.snapshot()
            row["mean"] = histogram.mean
            histograms[name] = row
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": histograms,
        }


# ----------------------------------------------------------------------
# Prometheus text exposition (``GET /metrics`` on ``spllift serve``)
# ----------------------------------------------------------------------


def _prom_name(name: str) -> str:
    """Sanitize a dotted registry name into the Prometheus charset."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return "spllift_" + (cleaned or "unnamed")


def _prom_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render a registry in the Prometheus plaintext exposition format.

    Counters become ``counter`` families, gauges ``gauge``, histograms
    ``histogram`` with cumulative ``le`` buckets over
    :data:`HISTOGRAM_BOUNDS` (plus ``+Inf``), ``_sum`` and ``_count``.
    Names are sanitized (dots → underscores) and prefixed ``spllift_``
    so they scrape cleanly next to everyone else's metrics.
    """
    lines: List[str] = []
    for name, value in sorted(registry.counters.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_value(value)}")
    for name, value in sorted(registry.gauges.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}")
    for name in sorted(registry._histograms):
        histogram = registry._histograms[name]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for index, bound in enumerate(HISTOGRAM_BOUNDS):
            cumulative += histogram.buckets[index]
            lines.append(
                f'{prom}_bucket{{le="{_prom_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{prom}_bucket{{le="+Inf"}} {histogram.count}')
        lines.append(f"{prom}_sum {_prom_value(histogram.total)}")
        lines.append(f"{prom}_count {histogram.count}")
    return "\n".join(lines) + "\n" if lines else ""

