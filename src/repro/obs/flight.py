"""The flight recorder: an always-on, bounded ring of recent events.

A :class:`FlightRecorder` is the black box of one process.  Every span
begin/end, instant, counter publication and log line that flows through
``repro.obs`` also lands here — in a fixed-capacity ring buffer whose
append is one deque operation, so the always-on cost rides the same
"phase boundaries only, never per propagation" discipline the tracer
established (bench-gated <2%, ``obs_overhead/.../flight_*`` rows in
``benchmarks/bench_solver.py``).

When something dies, the ring is what's left.  Three exit paths produce
a ``spllift-flight/v1`` **dump**:

- *unhandled exception in a worker* — the worker itself dumps and ships
  the dump beside its error over the result pipe;
- *SIGTERM* (per-job timeout) — the worker's signal handler records the
  signal; the parent reads the worker's spill file after termination;
- *SIGKILL / hard crash* — nothing in the worker runs, which is why
  workers under a :class:`~repro.core.parallel.ProcessTaskPool` also
  **spill**: with ``$SPLLIFT_FLIGHT_DIR`` set, every recorded event is
  appended (and flushed) to ``flight-<pid>.jsonl`` as it happens, so
  the parent can reconstruct the ring of a worker that never got to
  say goodbye.  Spilling is armed only inside pool workers — events
  there are a handful per job, so the write cost is noise.

The dump names the in-flight job (workers note it via :meth:`note_job`),
the stack of open spans at the moment of death, the last events in
recording order, and the most recent counter snapshot.  ``spllift obs
postmortem`` renders it for humans; ``scripts/check_trace.py --flight``
validates it in CI.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs.trace import NullTracer

__all__ = [
    "FLIGHT_SCHEMA",
    "FLIGHT_DIR_ENV",
    "FLIGHT_CAPACITY_ENV",
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "FlightTracer",
    "load_flight_dump",
    "load_spill",
    "render_postmortem",
]

FLIGHT_SCHEMA = "spllift-flight/v1"

#: Directory pool workers spill their ring into (``flight-<pid>.jsonl``);
#: set by the parent pool for the duration of a batch.
FLIGHT_DIR_ENV = "SPLLIFT_FLIGHT_DIR"

#: Override for the ring capacity (events retained per process).
FLIGHT_CAPACITY_ENV = "SPLLIFT_FLIGHT_CAPACITY"

#: Default ring capacity — comfortably above the ≥50 events a postmortem
#: reconstruction promises, small enough to never matter for memory.
DEFAULT_CAPACITY = 256


def _capacity_from_env() -> int:
    raw = os.environ.get(FLIGHT_CAPACITY_ENV, "").strip()
    if raw:
        try:
            return max(50, int(raw))
        except ValueError:
            pass
    return DEFAULT_CAPACITY


class FlightRecorder:
    """Bounded per-process ring of recent observability events.

    Events are small dicts ``{"seq", "ts", "kind", "name", ...fields}``
    with ``ts`` in wall-clock epoch seconds (a postmortem wants "when",
    not a monotonic offset nobody can map back to the incident).  The
    recorder is thread-safe (the HTTP store server records from request
    threads) but optimized for the common single-threaded worker.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        spill_path: Optional[str] = None,
    ) -> None:
        self.capacity = capacity if capacity is not None else _capacity_from_env()
        self._events: deque = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._seq = 0
        self._pid = os.getpid()
        #: Per-thread stacks of (span name, start ts) — open spans.
        self._open: Dict[int, List[List[object]]] = {}
        self._job: Optional[Dict[str, object]] = None
        self._counters: Dict[str, int] = {}
        self._spill = None
        self._spill_path = spill_path
        if spill_path:
            self._open_spill(spill_path)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(self, kind: str, name: str, **fields) -> None:
        """Append one event to the ring (and the spill, when armed)."""
        with self._lock:
            self._seq += 1
            event: Dict[str, object] = {
                "seq": self._seq,
                "ts": round(time.time(), 6),
                "kind": kind,
                "name": name,
            }
            if fields:
                event.update(fields)
            self._events.append(event)
            if self._spill is not None:
                self._spill_write(event)

    def span_begin(self, name: str, args: Optional[dict] = None) -> None:
        self.record("span_begin", name, **(args or {}))
        with self._lock:
            stack = self._open.setdefault(threading.get_ident(), [])
            stack.append([name, time.time()])

    def span_end(self, name: str) -> None:
        with self._lock:
            stack = self._open.get(threading.get_ident())
            if stack and stack[-1][0] == name:
                stack.pop()
        self.record("span_end", name)

    def note_job(self, job: Dict[str, object]) -> None:
        """Remember the in-flight job (what a postmortem must name)."""
        with self._lock:
            self._job = dict(job)
        self.record("job", str(job.get("label", "?")), **job)

    def note_counters(self, prefix: str, stats: Dict[str, object]) -> None:
        """Record a counter-delta event (one per ``publish_stats`` call,
        i.e. per solve — never per increment)."""
        deltas = {
            f"{prefix}.{name}": value
            for name, value in stats.items()
            if isinstance(value, int) and not isinstance(value, bool)
        }
        if not deltas:
            return
        with self._lock:
            for name, value in deltas.items():
                self._counters[name] = self._counters.get(name, 0) + value
        self.record("counters", prefix, counters=deltas)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def current_span(self) -> Optional[str]:
        """The innermost open span on the calling thread, if any."""
        stack = self._open.get(threading.get_ident())
        return stack[-1][0] if stack else None

    def open_spans(self) -> List[Dict[str, object]]:
        """Every open span, outermost first, across all threads."""
        with self._lock:
            spans: List[Dict[str, object]] = []
            for stack in self._open.values():
                for name, started in stack:
                    spans.append({"name": name, "since": round(started, 6)})
            return spans

    def events(self) -> List[dict]:
        with self._lock:
            return [dict(event) for event in self._events]

    # ------------------------------------------------------------------
    # Dumping
    # ------------------------------------------------------------------

    def dump(
        self,
        reason: str,
        run_id: Optional[str] = None,
        job: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Package the ring as a ``spllift-flight/v1`` artifact."""
        with self._lock:
            return {
                "schema": FLIGHT_SCHEMA,
                "run_id": run_id,
                "pid": self._pid,
                "reason": reason,
                "capacity": self.capacity,
                "recorded": self._seq,
                "events": [dict(event) for event in self._events],
                "open_spans": [
                    {"name": name, "since": round(started, 6)}
                    for stack in self._open.values()
                    for name, started in stack
                ],
                "job": dict(job) if job else (
                    dict(self._job) if self._job else None
                ),
                "counters": dict(self._counters),
            }

    # ------------------------------------------------------------------
    # Spill (SIGKILL survival)
    # ------------------------------------------------------------------

    def _open_spill(self, path: str) -> None:
        try:
            self._spill = open(path, "a", encoding="utf-8")
        except OSError:
            self._spill = None  # flight is best-effort, never fatal
            return
        self._spill_write(
            {
                "seq": 0,
                "ts": round(time.time(), 6),
                "kind": "flight_open",
                "name": "flight",
                "pid": self._pid,
                "capacity": self.capacity,
                "run_id": os.environ.get("SPLLIFT_RUN_ID") or None,
            }
        )

    def _spill_write(self, event: Dict[str, object]) -> None:
        try:
            self._spill.write(
                json.dumps(event, separators=(",", ":"), sort_keys=True) + "\n"
            )
            self._spill.flush()  # must hit the file before any SIGKILL
        except (OSError, ValueError):
            self._spill = None

    def close_spill(self) -> None:
        if self._spill is not None:
            try:
                self._spill.close()
            except OSError:
                pass
            self._spill = None


# ----------------------------------------------------------------------
# The always-on tracer facade
# ----------------------------------------------------------------------


class _FlightSpan:
    """Span context manager that records into the flight ring only."""

    __slots__ = ("_flight", "_name", "_args")

    def __init__(self, flight: FlightRecorder, name: str, args) -> None:
        self._flight = flight
        self._name = name
        self._args = args

    def __enter__(self) -> "_FlightSpan":
        self._flight.span_begin(self._name, self._args)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._flight.span_end(self._name)
        return False


class FlightTracer(NullTracer):
    """The default tracer: invisible to trace files, visible to the ring.

    ``enabled`` stays ``False`` so guarded call sites keep skipping
    argument construction, ``events()``/``drain()`` stay empty so no
    trace file grows — but every unguarded span/instant still reaches
    the flight recorder.  When real tracing is enabled the recording
    :class:`~repro.obs.trace.Tracer` takes over and feeds the same ring
    through its ``flight`` sink.
    """

    def __init__(self, flight: FlightRecorder) -> None:
        self._flight = flight

    def span(self, name: str, **args):
        return _FlightSpan(self._flight, name, args or None)

    def instant(self, name: str, **args) -> None:
        self._flight.record("instant", name, **args)

    def complete(self, name, start_us, end_us, tid=None, **args) -> None:
        self._flight.record(
            "complete",
            name,
            duration_us=round(float(end_us) - float(start_us), 1),
            **args,
        )


# ----------------------------------------------------------------------
# Parent-side reconstruction
# ----------------------------------------------------------------------


def load_spill(
    path, reason: str, capacity: Optional[int] = None
) -> Optional[Dict[str, object]]:
    """Reconstruct a dead worker's flight dump from its spill file.

    Replays the JSONL spill: the header carries pid/run_id/capacity, the
    body is the event stream in recording order.  Open spans are
    re-derived by matching ``span_begin``/``span_end``, counters by
    summing ``counters`` events, and the ring bound is re-applied so the
    reconstruction equals what the worker itself would have dumped.
    Returns ``None`` when the spill is missing or empty.
    """
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError:
        return None
    header: Dict[str, object] = {}
    events: List[dict] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            continue  # a torn final line is expected under SIGKILL
        if not isinstance(event, dict):
            continue
        if event.get("kind") == "flight_open":
            header = event
        else:
            events.append(event)
    if not header and not events:
        return None
    ring_capacity = capacity or int(header.get("capacity") or DEFAULT_CAPACITY)
    open_spans: List[Dict[str, object]] = []
    counters: Dict[str, int] = {}
    job: Optional[Dict[str, object]] = None
    for event in events:
        kind = event.get("kind")
        if kind == "span_begin":
            open_spans.append(
                {"name": event.get("name"), "since": event.get("ts")}
            )
        elif kind == "span_end":
            for position in range(len(open_spans) - 1, -1, -1):
                if open_spans[position]["name"] == event.get("name"):
                    del open_spans[position]
                    break
        elif kind == "counters":
            for name, value in (event.get("counters") or {}).items():
                if isinstance(value, int):
                    counters[name] = counters.get(name, 0) + value
        elif kind == "job":
            job = {
                key: value
                for key, value in event.items()
                if key not in ("seq", "ts", "kind")
            }
    return {
        "schema": FLIGHT_SCHEMA,
        "run_id": header.get("run_id"),
        "pid": header.get("pid"),
        "reason": reason,
        "capacity": ring_capacity,
        "recorded": events[-1].get("seq", len(events)) if events else 0,
        "events": events[-ring_capacity:],
        "open_spans": open_spans,
        "job": job,
        "counters": counters,
    }


def load_flight_dump(path) -> Dict[str, object]:
    """Load a flight dump (or extract dumps from a batch report).

    Accepts a ``spllift-flight/v1`` file directly, or a
    ``spllift-batch-report/v1`` file, in which case every job row
    carrying a ``flight`` attachment contributes one dump.  Returns a
    dict ``{"dumps": [...]}``; raises ``ValueError`` for anything else
    (the CLI renders that as the one-line error contract).
    """
    with open(path, encoding="utf-8") as handle:
        try:
            document = json.loads(handle.read())
        except json.JSONDecodeError as error:
            raise ValueError(f"{path} is not valid JSON: {error}") from None
    if not isinstance(document, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    schema = document.get("schema")
    if schema == FLIGHT_SCHEMA:
        return {"dumps": [document]}
    if schema == "spllift-batch-report/v1":
        dumps = []
        for row in document.get("jobs", []):
            flight = row.get("flight") if isinstance(row, dict) else None
            if isinstance(flight, dict):
                flight = dict(flight)
                flight.setdefault("job", {})
                if not flight["job"]:
                    flight["job"] = {
                        "label": row.get("label"),
                        "analysis": row.get("analysis"),
                        "digest": row.get("digest"),
                    }
                flight["outcome"] = row.get("status")
                dumps.append(flight)
        if not dumps:
            raise ValueError(
                f"{path}: batch report carries no flight dumps "
                "(no worker died with flight recording armed)"
            )
        return {"dumps": dumps}
    raise ValueError(
        f"{path}: expected schema {FLIGHT_SCHEMA!r} or "
        f"'spllift-batch-report/v1', got {schema!r}"
    )


def render_postmortem(dump: Dict[str, object], last: int = 50) -> List[str]:
    """Human-readable reconstruction of one flight dump, as lines."""
    lines: List[str] = []
    run_id = dump.get("run_id") or "-"
    reason = dump.get("reason") or "unknown"
    lines.append(
        f"flight: pid {dump.get('pid', '?')}  run {run_id}  reason: {reason}"
    )
    job = dump.get("job")
    if job:
        label = job.get("label", "?")
        analysis = job.get("analysis", "?")
        digest = str(job.get("digest") or "")[:12]
        detail = f"in-flight job: {label}  analysis={analysis}"
        if digest:
            detail += f"  digest={digest}"
        if job.get("fm_mode"):
            detail += f"  fm_mode={job['fm_mode']}"
        lines.append(detail)
    else:
        lines.append("in-flight job: (none recorded)")
    open_spans = dump.get("open_spans") or []
    if open_spans:
        lines.append(f"open spans at death ({len(open_spans)}):")
        for span in open_spans:
            lines.append(f"  {span.get('name')}")
    else:
        lines.append("open spans at death: (none)")
    events = dump.get("events") or []
    recorded = dump.get("recorded", len(events))
    shown = events[-last:] if last else events
    lines.append(
        f"last {len(shown)} of {recorded} event(s) "
        f"(ring capacity {dump.get('capacity', '?')}):"
    )
    base = shown[0].get("ts") if shown else 0.0
    for event in shown:
        offset = float(event.get("ts", base)) - float(base or 0.0)
        kind = event.get("kind", "?")
        name = event.get("name", "?")
        extras = {
            key: value
            for key, value in event.items()
            if key not in ("seq", "ts", "kind", "name")
        }
        suffix = ""
        if extras:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(extras.items())
            )
            suffix = f"  ({rendered})"
        lines.append(f"  +{offset:8.3f}s  {kind:<10} {name}{suffix}")
    counters = dump.get("counters") or {}
    if counters:
        lines.append(f"counters at death ({len(counters)}):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name}: {value}")
    return lines
