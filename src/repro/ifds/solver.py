"""The IFDS tabulation solver (Reps, Horwitz, Sagiv, POPL'95).

Computes the meet-over-all-valid-paths solution of an IFDS problem by
reducing it to reachability in the *exploded super graph*: node ``(s, d)``
is reachable from a seed ``(s0, 0)`` iff fact ``d`` may hold at statement
``s`` (Section 2.1 of the paper).

The implementation follows the worklist formulation with end summaries and
incoming maps also used by Heros:

- *path edges* ``(d1, n, d2)`` record that ``(n, d2)`` is reachable from
  ``(sp, d1)`` where ``sp`` is the start point of ``n``'s method;
- *end summaries* record exit facts per calling context ``d1``;
- the *incoming* map records callers per calling context so summaries can
  be replayed when either side appears first.

Statistics are collected so the experiments can reproduce the paper's
qualitative observation (Section 6.2) that analysis time correlates with
the number of edges constructed.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Generic,
    Hashable,
    List,
    Optional,
    Set,
    Tuple,
    TypeVar,
)

from repro.ifds.problem import IFDSProblem
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod
from repro.ir.rpo import RPORanker
from repro.obs import runtime as obs

__all__ = ["IFDSSolver", "IFDSResults"]

D = TypeVar("D", bound=Hashable)

# (caller call site, caller source fact, fact at call site)
_Incoming = Tuple[Instruction, Hashable, Hashable]
# (exit statement, exit fact)
_Summary = Tuple[Instruction, Hashable]


class IFDSResults(Generic[D]):
    """Facts reachable at each statement."""

    def __init__(self, facts_at: Dict[Instruction, Set[D]], zero: D) -> None:
        self._facts_at = facts_at
        self._zero = zero

    def at(self, stmt: Instruction, include_zero: bool = False) -> FrozenSet[D]:
        """The facts that may hold just *before* executing ``stmt``."""
        facts = self._facts_at.get(stmt, set())
        if include_zero:
            return frozenset(facts)
        return frozenset(fact for fact in facts if fact is not self._zero)

    def statements(self) -> Tuple[Instruction, ...]:
        return tuple(self._facts_at)

    def fact_count(self) -> int:
        """Total number of (statement, non-zero fact) pairs."""
        return sum(len(self.at(stmt)) for stmt in self._facts_at)


class IFDSSolver(Generic[D]):
    """Worklist tabulation solver for :class:`IFDSProblem`.

    ``worklist_order`` mirrors :class:`~repro.ide.solver.IDESolver`:
    ``"fifo"``/``"lifo"``/``"random"``/``"rpo"``, with ``None`` resolving
    to ``$SPLLIFT_WORKLIST_ORDER`` (default ``fifo``).  The reachable-fact
    fixed point is identical for every order.
    """

    def __init__(
        self,
        problem: IFDSProblem[D],
        worklist_order: Optional[str] = None,
        order_seed: int = 0,
    ) -> None:
        # Late import to avoid a module cycle (ide.solver imports nothing
        # from ifds, but keep the single source of truth for the orders
        # and the rpo queue).
        from repro.ide.solver import BucketQueue, resolve_worklist_order

        worklist_order = resolve_worklist_order(worklist_order)
        self._order = worklist_order
        self._use_heap = worklist_order == "rpo"
        if worklist_order == "random":
            import random as _random

            self._rng = _random.Random(order_seed)
        self.problem = problem
        self.icfg = problem.icfg
        if self._use_heap:
            self._ranker = RPORanker(problem.icfg)
        self.stats: Dict[str, int] = {
            "path_edges": 0,
            "flow_applications": 0,
            "summaries": 0,
        }
        # path edges grouped by target statement: n -> {(d1, d2)}
        self._path_edges: Dict[Instruction, Set[Tuple[D, D]]] = {}
        # fifo/lifo/random use a deque; rpo a bucket queue keyed by rank.
        self._worklist = BucketQueue() if self._use_heap else deque()
        # (method, entry fact) -> summaries / incoming callers
        self._end_summaries: Dict[Tuple[IRMethod, D], Set[_Summary]] = {}
        self._incoming: Dict[Tuple[IRMethod, D], Set[_Incoming]] = {}
        # Exploded-successor memos: flow-function targets depend only on
        # (statement, fact), never on the path's source fact d1, so they
        # are computed once per (n, d2) and replayed for every other d1.
        self._normal_cache: Dict[
            Tuple[Instruction, D], Tuple[Tuple[Instruction, D], ...]
        ] = {}
        self._c2r_cache: Dict[
            Tuple[Instruction, D], Tuple[Tuple[Instruction, D], ...]
        ] = {}
        self._call_cache: Dict[
            Tuple[Instruction, D],
            Tuple[Tuple[IRMethod, Instruction, Tuple[D, ...]], ...],
        ] = {}
        self._return_cache: Dict[
            Tuple[Instruction, Instruction, D],
            Tuple[Tuple[Instruction, D], ...],
        ] = {}
        # Statement kind (0 normal, 1 call, 2 exit, 3 exit-with-successors),
        # resolved once per statement instead of per worklist pop.
        self._kind_cache: Dict[Instruction, int] = {}
        # Flow functions are pure per ICFG edge; constructing them (closure
        # allocation in the client analyses) is cached per edge so memo
        # misses for further facts at the same edge skip it.
        self._flow_cache: Dict[tuple, object] = {}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def solve(self) -> IFDSResults[D]:
        """Run the tabulation to a fixed point and collect results."""
        with obs.tracer().span("ifds/tabulation", order=self._order):
            self._tabulate()
        obs.publish_stats("ifds.solver", self.stats)
        progress = obs.progress()
        if progress is not None:
            progress.finish()
        facts_at: Dict[Instruction, Set[D]] = {
            n: {d2 for (_, d2) in edges} for n, edges in self._path_edges.items()
        }
        return IFDSResults(facts_at, self.problem.zero)

    def _tabulate(self) -> None:
        for stmt, facts in self.problem.initial_seeds().items():
            for fact in facts:
                self._propagate(fact, stmt, fact)
        worklist = self._worklist
        kind_cache = self._kind_cache
        fifo = self._order == "fifo"
        use_heap = self._use_heap
        progress = obs.progress()
        tick = 0
        while worklist:
            tick += 1
            if (tick & 1023) == 0 and progress is not None:
                progress.tick(
                    "ifds/tabulation",
                    worklist=len(worklist),
                    path_edges=self.stats["path_edges"],
                )
            if fifo:
                d1, n, d2 = worklist.popleft()
            elif use_heap:
                d1, n, d2 = worklist.pop()
            elif self._order == "lifo":
                d1, n, d2 = worklist.pop()
            else:
                index = self._rng.randrange(len(worklist))
                worklist[index], worklist[-1] = worklist[-1], worklist[index]
                d1, n, d2 = worklist.pop()
            kind = kind_cache.get(n)
            if kind is None:
                if self.icfg.is_call(n):
                    kind = 1
                elif self.icfg.is_exit(n):
                    # In a lifted (SPL-aware) CFG a disabled `return` falls
                    # through to its successor statement (cf. Figure 4b of
                    # the paper applied to exits); plain CFGs have no
                    # successors after a return.
                    kind = 3 if self.icfg.successors_of(n) else 2
                else:
                    kind = 0
                kind_cache[n] = kind
            if kind == 0:
                self._process_normal(d1, n, d2)
            elif kind == 1:
                self._process_call(d1, n, d2)
            else:
                self._process_exit(d1, n, d2)
                if kind == 3:
                    self._process_normal(d1, n, d2)

    def _propagate(self, d1: D, n: Instruction, d2: D) -> None:
        edges = self._path_edges.get(n)
        if edges is None:
            edges = self._path_edges[n] = set()
        key = (d1, d2)
        if key in edges:
            return
        edges.add(key)
        self.stats["path_edges"] += 1
        if self._use_heap:
            self._worklist.push(self._ranker.rank_of(n), (d1, n, d2))
        else:
            self._worklist.append((d1, n, d2))

    # ------------------------------------------------------------------
    # Case: normal statements
    # ------------------------------------------------------------------

    def _process_normal(self, d1: D, n: Instruction, d2: D) -> None:
        key = (n, d2)
        exploded = self._normal_cache.get(key)
        if exploded is None:
            entries: List[Tuple[Instruction, D]] = []
            for succ in self.icfg.successors_of(n):
                fkey = ("normal", n, succ)
                flow = self._flow_cache.get(fkey)
                if flow is None:
                    flow = self._flow_cache[fkey] = self.problem.normal_flow(
                        n, succ
                    )
                self.stats["flow_applications"] += 1
                for d3 in flow.compute_targets(d2):
                    entries.append((succ, d3))
            exploded = self._normal_cache[key] = tuple(entries)
        # _propagate inlined: this loop dominates the tabulation, and the
        # call overhead is measurable at millions of propagations.
        path_edges = self._path_edges
        worklist = self._worklist
        use_heap = self._use_heap
        rank_of = self._ranker.rank_of if use_heap else None
        for succ, d3 in exploded:
            edges = path_edges.get(succ)
            if edges is None:
                edges = path_edges[succ] = set()
            edge = (d1, d3)
            if edge not in edges:
                edges.add(edge)
                self.stats["path_edges"] += 1
                if use_heap:
                    worklist.push(rank_of(succ), (d1, succ, d3))
                else:
                    worklist.append((d1, succ, d3))

    # ------------------------------------------------------------------
    # Case: call statements
    # ------------------------------------------------------------------

    def _call_targets(
        self, n: Instruction, d2: D
    ) -> Tuple[Tuple[IRMethod, Instruction, Tuple[D, ...]], ...]:
        key = (n, d2)
        targets = self._call_cache.get(key)
        if targets is None:
            entries: List[Tuple[IRMethod, Instruction, Tuple[D, ...]]] = []
            for callee in self.icfg.callees_of(n):
                fkey = ("call", n, callee)
                call_flow = self._flow_cache.get(fkey)
                if call_flow is None:
                    call_flow = self._flow_cache[fkey] = self.problem.call_flow(
                        n, callee
                    )
                self.stats["flow_applications"] += 1
                entry_facts = tuple(call_flow.compute_targets(d2))
                if entry_facts:
                    entries.append(
                        (callee, self.icfg.start_point_of(callee), entry_facts)
                    )
            targets = self._call_cache[key] = tuple(entries)
        return targets

    def _process_call(self, d1: D, n: Instruction, d2: D) -> None:
        return_sites = self.icfg.return_sites_of(n)
        for callee, start, entry_facts in self._call_targets(n, d2):
            for d3 in entry_facts:
                self._propagate(d3, start, d3)
                context = (callee, d3)
                self._incoming.setdefault(context, set()).add((n, d1, d2))
                for exit_stmt, d4 in self._end_summaries.get(context, ()):
                    self._apply_summary(
                        n, d1, callee, exit_stmt, d4, return_sites
                    )
        key = (n, d2)
        exploded = self._c2r_cache.get(key)
        if exploded is None:
            entries: List[Tuple[Instruction, D]] = []
            for return_site in return_sites:
                fkey = ("c2r", n, return_site)
                flow = self._flow_cache.get(fkey)
                if flow is None:
                    flow = self._flow_cache[
                        fkey
                    ] = self.problem.call_to_return_flow(n, return_site)
                self.stats["flow_applications"] += 1
                for d3 in flow.compute_targets(d2):
                    entries.append((return_site, d3))
            exploded = self._c2r_cache[key] = tuple(entries)
        for return_site, d3 in exploded:
            self._propagate(d1, return_site, d3)

    def _apply_summary(
        self,
        call: Instruction,
        caller_source: D,
        callee: IRMethod,
        exit_stmt: Instruction,
        exit_fact: D,
        return_sites: Tuple[Instruction, ...],
    ) -> None:
        key = (call, exit_stmt, exit_fact)
        exploded = self._return_cache.get(key)
        if exploded is None:
            entries: List[Tuple[Instruction, D]] = []
            for return_site in return_sites:
                fkey = ("return", call, exit_stmt, return_site)
                flow = self._flow_cache.get(fkey)
                if flow is None:
                    flow = self._flow_cache[fkey] = self.problem.return_flow(
                        call, callee, exit_stmt, return_site
                    )
                self.stats["flow_applications"] += 1
                for d5 in flow.compute_targets(exit_fact):
                    entries.append((return_site, d5))
            exploded = self._return_cache[key] = tuple(entries)
        for return_site, d5 in exploded:
            self._propagate(caller_source, return_site, d5)

    # ------------------------------------------------------------------
    # Case: exit statements
    # ------------------------------------------------------------------

    def _process_exit(self, d1: D, n: Instruction, d2: D) -> None:
        method = self.icfg.method_of(n)
        context = (method, d1)
        summaries = self._end_summaries.setdefault(context, set())
        summary = (n, d2)
        if summary in summaries:
            return
        summaries.add(summary)
        self.stats["summaries"] += 1
        for call, caller_source, _caller_fact in self._incoming.get(context, set()):
            self._apply_summary(
                call,
                caller_source,
                method,
                n,
                d2,
                self.icfg.return_sites_of(call),
            )
