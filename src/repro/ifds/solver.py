"""The IFDS tabulation solver (Reps, Horwitz, Sagiv, POPL'95).

Computes the meet-over-all-valid-paths solution of an IFDS problem by
reducing it to reachability in the *exploded super graph*: node ``(s, d)``
is reachable from a seed ``(s0, 0)`` iff fact ``d`` may hold at statement
``s`` (Section 2.1 of the paper).

The implementation follows the worklist formulation with end summaries and
incoming maps also used by Heros:

- *path edges* ``(d1, n, d2)`` record that ``(n, d2)`` is reachable from
  ``(sp, d1)`` where ``sp`` is the start point of ``n``'s method;
- *end summaries* record exit facts per calling context ``d1``;
- the *incoming* map records callers per calling context so summaries can
  be replayed when either side appears first.

Statistics are collected so the experiments can reproduce the paper's
qualitative observation (Section 6.2) that analysis time correlates with
the number of edges constructed.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, FrozenSet, Generic, Hashable, List, Set, Tuple, TypeVar

from repro.ifds.problem import IFDSProblem
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod

__all__ = ["IFDSSolver", "IFDSResults"]

D = TypeVar("D", bound=Hashable)

# (caller call site, caller source fact, fact at call site)
_Incoming = Tuple[Instruction, Hashable, Hashable]
# (exit statement, exit fact)
_Summary = Tuple[Instruction, Hashable]


class IFDSResults(Generic[D]):
    """Facts reachable at each statement."""

    def __init__(self, facts_at: Dict[Instruction, Set[D]], zero: D) -> None:
        self._facts_at = facts_at
        self._zero = zero

    def at(self, stmt: Instruction, include_zero: bool = False) -> FrozenSet[D]:
        """The facts that may hold just *before* executing ``stmt``."""
        facts = self._facts_at.get(stmt, set())
        if include_zero:
            return frozenset(facts)
        return frozenset(fact for fact in facts if fact is not self._zero)

    def statements(self) -> Tuple[Instruction, ...]:
        return tuple(self._facts_at)

    def fact_count(self) -> int:
        """Total number of (statement, non-zero fact) pairs."""
        return sum(len(self.at(stmt)) for stmt in self._facts_at)


class IFDSSolver(Generic[D]):
    """Worklist tabulation solver for :class:`IFDSProblem`."""

    def __init__(self, problem: IFDSProblem[D]) -> None:
        self.problem = problem
        self.icfg = problem.icfg
        self.stats: Dict[str, int] = {
            "path_edges": 0,
            "flow_applications": 0,
            "summaries": 0,
        }
        # path edges grouped by target statement: n -> {(d1, d2)}
        self._path_edges: Dict[Instruction, Set[Tuple[D, D]]] = {}
        self._worklist: Deque[Tuple[D, Instruction, D]] = deque()
        # (method, entry fact) -> summaries / incoming callers
        self._end_summaries: Dict[Tuple[IRMethod, D], Set[_Summary]] = {}
        self._incoming: Dict[Tuple[IRMethod, D], Set[_Incoming]] = {}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def solve(self) -> IFDSResults[D]:
        """Run the tabulation to a fixed point and collect results."""
        for stmt, facts in self.problem.initial_seeds().items():
            for fact in facts:
                self._propagate(fact, stmt, fact)
        while self._worklist:
            d1, n, d2 = self._worklist.popleft()
            if self.icfg.is_call(n):
                self._process_call(d1, n, d2)
            elif self.icfg.is_exit(n):
                self._process_exit(d1, n, d2)
                # In a lifted (SPL-aware) CFG a disabled `return` falls
                # through to its successor statement (cf. Figure 4b of the
                # paper applied to exits); plain CFGs have no successors
                # after a return, so this is a no-op for them.
                if self.icfg.successors_of(n):
                    self._process_normal(d1, n, d2)
            else:
                self._process_normal(d1, n, d2)
        facts_at: Dict[Instruction, Set[D]] = {
            n: {d2 for (_, d2) in edges} for n, edges in self._path_edges.items()
        }
        return IFDSResults(facts_at, self.problem.zero)

    def _propagate(self, d1: D, n: Instruction, d2: D) -> None:
        edges = self._path_edges.setdefault(n, set())
        key = (d1, d2)
        if key in edges:
            return
        edges.add(key)
        self.stats["path_edges"] += 1
        self._worklist.append((d1, n, d2))

    # ------------------------------------------------------------------
    # Case: normal statements
    # ------------------------------------------------------------------

    def _process_normal(self, d1: D, n: Instruction, d2: D) -> None:
        for succ in self.icfg.successors_of(n):
            flow = self.problem.normal_flow(n, succ)
            self.stats["flow_applications"] += 1
            for d3 in flow.compute_targets(d2):
                self._propagate(d1, succ, d3)

    # ------------------------------------------------------------------
    # Case: call statements
    # ------------------------------------------------------------------

    def _process_call(self, d1: D, n: Instruction, d2: D) -> None:
        return_sites = self.icfg.return_sites_of(n)
        for callee in self.icfg.callees_of(n):
            call_flow = self.problem.call_flow(n, callee)
            self.stats["flow_applications"] += 1
            entry_facts = call_flow.compute_targets(d2)
            if not entry_facts:
                continue
            start = self.icfg.start_point_of(callee)
            for d3 in entry_facts:
                self._propagate(d3, start, d3)
                context = (callee, d3)
                self._incoming.setdefault(context, set()).add((n, d1, d2))
                for exit_stmt, d4 in self._end_summaries.get(context, ()):
                    self._apply_summary(
                        n, d1, callee, exit_stmt, d4, return_sites
                    )
        for return_site in return_sites:
            flow = self.problem.call_to_return_flow(n, return_site)
            self.stats["flow_applications"] += 1
            for d3 in flow.compute_targets(d2):
                self._propagate(d1, return_site, d3)

    def _apply_summary(
        self,
        call: Instruction,
        caller_source: D,
        callee: IRMethod,
        exit_stmt: Instruction,
        exit_fact: D,
        return_sites: Tuple[Instruction, ...],
    ) -> None:
        for return_site in return_sites:
            flow = self.problem.return_flow(call, callee, exit_stmt, return_site)
            self.stats["flow_applications"] += 1
            for d5 in flow.compute_targets(exit_fact):
                self._propagate(caller_source, return_site, d5)

    # ------------------------------------------------------------------
    # Case: exit statements
    # ------------------------------------------------------------------

    def _process_exit(self, d1: D, n: Instruction, d2: D) -> None:
        method = self.icfg.method_of(n)
        context = (method, d1)
        summaries = self._end_summaries.setdefault(context, set())
        summary = (n, d2)
        if summary in summaries:
            return
        summaries.add(summary)
        self.stats["summaries"] += 1
        for call, caller_source, _caller_fact in self._incoming.get(context, set()):
            self._apply_summary(
                call,
                caller_source,
                method,
                n,
                d2,
                self.icfg.return_sites_of(call),
            )
