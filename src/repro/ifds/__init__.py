"""The IFDS framework: problem interface, flow functions, tabulation solver."""

from repro.ifds.flowfunctions import (
    Compose,
    FlowFunction,
    Gen,
    Identity,
    Kill,
    KillAll,
    Lambda,
    Transfer,
    Union,
)
from repro.ifds.explode import (
    ExplodedEdge,
    ExplodedSuperGraph,
    build_exploded_graph,
)
from repro.ifds.problem import IFDSProblem, ZERO, ZeroFact
from repro.ifds.solver import IFDSResults, IFDSSolver

__all__ = [
    "FlowFunction",
    "Identity",
    "KillAll",
    "Gen",
    "Kill",
    "Transfer",
    "Lambda",
    "Compose",
    "Union",
    "IFDSProblem",
    "ZERO",
    "ZeroFact",
    "IFDSSolver",
    "IFDSResults",
    "ExplodedEdge",
    "ExplodedSuperGraph",
    "build_exploded_graph",
]
