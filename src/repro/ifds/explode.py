"""Building and rendering the exploded super graph.

The IFDS framework reduces dataflow to reachability in the *exploded super
graph*: one node per (statement, fact) pair, one edge per pointwise flow
(Section 2.1, Figure 3 of the paper).  This module materializes the graph
reachable from the seeds — for visualization (Graphviz DOT, like the
paper's Figures 3 and 5) and for tests that inspect the structure.

For lifted problems pass ``edge_labels`` to annotate each edge with its
feature-constraint label, reproducing Figure 5's conditional edges.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Set, Tuple, TypeVar

from repro.ifds.problem import IFDSProblem, ZERO
from repro.ir.instructions import Instruction

__all__ = ["ExplodedEdge", "ExplodedSuperGraph", "build_exploded_graph"]

D = TypeVar("D", bound=Hashable)

Node = Tuple[Instruction, Hashable]


class ExplodedEdge:
    """One edge of the exploded super graph."""

    __slots__ = ("source", "target", "kind", "label")

    def __init__(
        self, source: Node, target: Node, kind: str, label: str = ""
    ) -> None:
        self.source = source
        self.target = target
        self.kind = kind  # "normal" | "call" | "return" | "call-to-return"
        self.label = label

    def __repr__(self) -> str:
        suffix = f" [{self.label}]" if self.label else ""
        return f"{self.source} -{self.kind}-> {self.target}{suffix}"


class ExplodedSuperGraph:
    """The materialized exploded super graph (reachable part)."""

    def __init__(self) -> None:
        self.nodes: Set[Node] = set()
        self.edges: List[ExplodedEdge] = []

    def add_edge(self, edge: ExplodedEdge) -> None:
        self.nodes.add(edge.source)
        self.nodes.add(edge.target)
        self.edges.append(edge)

    def successors(self, node: Node) -> List[Node]:
        return [edge.target for edge in self.edges if edge.source == node]

    def to_dot(self, name: str = "exploded") -> str:
        """Graphviz DOT like the paper's Figure 3/5 rendering."""
        ids: Dict[Node, str] = {}

        def node_id(node: Node) -> str:
            if node not in ids:
                ids[node] = f"n{len(ids)}"
            return ids[node]

        def node_label(node: Node) -> str:
            stmt, fact = node
            fact_text = "0" if fact is ZERO else str(fact)
            return f"{stmt.location}\\n{fact_text}"

        lines = [f"digraph {name} {{", "  rankdir=TB;", "  node [shape=circle];"]
        # Cluster nodes per statement so the layout resembles the paper.
        by_stmt: Dict[Instruction, List[Node]] = {}
        for node in sorted(
            self.nodes, key=lambda n: (n[0].location, str(n[1]))
        ):
            by_stmt.setdefault(node[0], []).append(node)
        for index, (stmt, nodes) in enumerate(by_stmt.items()):
            lines.append(f"  subgraph cluster_{index} {{")
            lines.append(f'    label="{stmt}";')
            for node in nodes:
                lines.append(
                    f'    {node_id(node)} [label="'
                    f'{"0" if node[1] is ZERO else node[1]}"];'
                )
            lines.append("  }")
        styles = {
            "normal": "solid",
            "call": "bold",
            "return": "bold",
            "call-to-return": "solid",
        }
        for edge in self.edges:
            attributes = [f"style={styles.get(edge.kind, 'solid')}"]
            if edge.label:
                attributes.append(f'label="{edge.label}"')
            lines.append(
                f"  {node_id(edge.source)} -> {node_id(edge.target)} "
                f"[{', '.join(attributes)}];"
            )
        lines.append("}")
        return "\n".join(lines)


def build_exploded_graph(
    problem: IFDSProblem[D],
    edge_labels: Optional[Callable[[str, Instruction, D, Instruction, D], str]] = None,
) -> ExplodedSuperGraph:
    """Materialize the exploded super graph reachable from the seeds.

    ``edge_labels(kind, stmt, fact, succ, succ_fact)`` may supply a label
    per edge (used by the lifted problems to show constraints).
    """
    icfg = problem.icfg
    graph = ExplodedSuperGraph()
    worklist: List[Node] = []
    seen: Set[Node] = set()

    def visit(node: Node) -> None:
        if node not in seen:
            seen.add(node)
            worklist.append(node)

    def label(kind: str, stmt, fact, succ, succ_fact) -> str:
        if edge_labels is None:
            return ""
        return edge_labels(kind, stmt, fact, succ, succ_fact)

    for stmt, facts in problem.initial_seeds().items():
        for fact in facts:
            visit((stmt, fact))

    while worklist:
        node = worklist.pop()
        stmt, fact = node
        if icfg.is_call(stmt):
            for callee in icfg.callees_of(stmt):
                flow = problem.call_flow(stmt, callee)
                start = icfg.start_point_of(callee)
                for target_fact in flow.compute_targets(fact):
                    edge = ExplodedEdge(
                        node,
                        (start, target_fact),
                        "call",
                        label("call", stmt, fact, start, target_fact),
                    )
                    graph.add_edge(edge)
                    visit(edge.target)
            for return_site in icfg.return_sites_of(stmt):
                flow = problem.call_to_return_flow(stmt, return_site)
                for target_fact in flow.compute_targets(fact):
                    edge = ExplodedEdge(
                        node,
                        (return_site, target_fact),
                        "call-to-return",
                        label("call-to-return", stmt, fact, return_site, target_fact),
                    )
                    graph.add_edge(edge)
                    visit(edge.target)
            continue
        if icfg.is_exit(stmt):
            method = icfg.method_of(stmt)
            for call in icfg.callers_of(method):
                for return_site in icfg.return_sites_of(call):
                    flow = problem.return_flow(call, method, stmt, return_site)
                    for target_fact in flow.compute_targets(fact):
                        edge = ExplodedEdge(
                            node,
                            (return_site, target_fact),
                            "return",
                            label("return", stmt, fact, return_site, target_fact),
                        )
                        graph.add_edge(edge)
                        visit(edge.target)
            # fall through (annotated returns in lifted graphs)
        for succ in icfg.successors_of(stmt):
            flow = problem.normal_flow(stmt, succ)
            for target_fact in flow.compute_targets(fact):
                edge = ExplodedEdge(
                    node,
                    (succ, target_fact),
                    "normal",
                    label("normal", stmt, fact, succ, target_fact),
                )
                graph.add_edge(edge)
                visit(edge.target)
    return graph
