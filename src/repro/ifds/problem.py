"""The IFDS problem interface (Reps, Horwitz, Sagiv, POPL'95).

Analyses implement the four flow-function classes of Section 2.2 of the
paper — normal, call, return, and call-to-return — against the ICFG, plus
initial seeds.  Facts can be anything hashable; the framework is oblivious
to the abstraction (Section 2.1).

The same interface is consumed by three solvers:

- :class:`repro.ifds.solver.IFDSSolver` — direct tabulation,
- :class:`repro.ide.solver.IDESolver` via the binary-domain encoding
  (:func:`repro.ide.binary.ifds_as_ide`), and
- :class:`repro.core.solver.SPLLift` — the lifted, feature-sensitive
  version (the point of the paper: not a single line of the analysis
  changes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generic, Hashable, Set, TypeVar

from repro.ifds.flowfunctions import FlowFunction, Identity
from repro.ir.icfg import ICFG
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod

__all__ = ["ZERO", "ZeroFact", "IFDSProblem"]

D = TypeVar("D", bound=Hashable)


class ZeroFact:
    """The special ``0`` fact: the tautology that unconditionally holds.

    Two nodes representing 0 at different statements are always connected
    (Section 2.1) — except in SPLLIFT, which conditionalizes 0-edges to
    compute reachability as a side effect (Section 3.3).
    """

    _instance: "ZeroFact" = None

    def __new__(cls) -> "ZeroFact":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "0"


ZERO = ZeroFact()


class IFDSProblem(Generic[D]):
    """Base class for IFDS analyses over an :class:`~repro.ir.icfg.ICFG`."""

    def __init__(self, icfg: ICFG) -> None:
        self.icfg = icfg

    # ------------------------------------------------------------------
    # Facts and seeds
    # ------------------------------------------------------------------

    @property
    def zero(self) -> ZeroFact:
        return ZERO

    def initial_seeds(self) -> Dict[Instruction, Set[D]]:
        """Facts seeded at statements; defaults to zero at every entry."""
        return {
            entry.start_point: {self.zero}
            for entry in self.icfg.entry_points
        }

    # ------------------------------------------------------------------
    # The four flow-function classes (Section 2.2)
    # ------------------------------------------------------------------

    def normal_flow(
        self, stmt: Instruction, succ: Instruction
    ) -> FlowFunction[D]:
        """Flow through a non-call statement to a given successor."""
        return Identity()

    def call_flow(self, call: Instruction, callee: IRMethod) -> FlowFunction[D]:
        """Flow from a call site into a possible callee (actual→formal)."""
        return Identity()

    def return_flow(
        self,
        call: Instruction,
        callee: IRMethod,
        exit_stmt: Instruction,
        return_site: Instruction,
    ) -> FlowFunction[D]:
        """Flow from a callee exit back to a return site of the call."""
        return Identity()

    def call_to_return_flow(
        self, call: Instruction, return_site: Instruction
    ) -> FlowFunction[D]:
        """Intra-procedural flow across a call site (locals not passed)."""
        return Identity()
