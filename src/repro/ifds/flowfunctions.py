"""Flow functions: distributive functions over sets of data-flow facts.

IFDS flow functions are represented by their action on a *single* fact
(including the special zero fact): ``compute_targets(fact)`` returns the
facts that ``fact`` flows to across a statement.  This is the standard
pointwise representation (Figure 2 of the paper): a gen function maps the
zero fact to the generated facts, a kill function maps the killed fact to
the empty set, and identity maps each fact to itself.

The combinators here cover the common shapes; analyses can also implement
:class:`FlowFunction` directly.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Generic, Hashable, Iterable, TypeVar

__all__ = [
    "FlowFunction",
    "Identity",
    "KillAll",
    "Gen",
    "Kill",
    "Transfer",
    "Lambda",
    "Compose",
    "Union",
]

D = TypeVar("D", bound=Hashable)


class FlowFunction(Generic[D]):
    """A distributive flow function, given pointwise."""

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        """The facts that ``fact`` flows to across this statement."""
        raise NotImplementedError


class Identity(FlowFunction[D]):
    """Maps every fact to itself (Figure 2's ``id``)."""

    _instance: "Identity" = None

    def __new__(cls) -> "Identity":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        return frozenset((fact,))

    def __repr__(self) -> str:
        return "Identity"


class KillAll(FlowFunction[D]):
    """Maps every fact to the empty set.

    This is the disabled-case flow function for call and return edges in
    SPLLIFT (Figure 4d): if the invoke statement is disabled, no flow
    between caller and callee occurs.
    """

    _instance: "KillAll" = None

    def __new__(cls) -> "KillAll":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        return frozenset()

    def __repr__(self) -> str:
        return "KillAll"


class Gen(FlowFunction[D]):
    """Generates facts from the zero fact; everything else flows through.

    ``Gen({a}, zero)`` is Figure 2's function ``α`` restricted to its gen
    half; combine with :class:`Kill` via :class:`Compose` for kill-and-gen.
    """

    def __init__(self, gen_facts: Iterable[D], zero: D) -> None:
        self.gen_facts = frozenset(gen_facts)
        self.zero = zero

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        if fact == self.zero:
            return self.gen_facts | {self.zero}
        return frozenset((fact,))

    def __repr__(self) -> str:
        return f"Gen({set(self.gen_facts)!r})"


class Kill(FlowFunction[D]):
    """Kills the given facts; everything else flows through."""

    def __init__(self, kill_facts: Iterable[D]) -> None:
        self.kill_facts = frozenset(kill_facts)

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        if fact in self.kill_facts:
            return frozenset()
        return frozenset((fact,))

    def __repr__(self) -> str:
        return f"Kill({set(self.kill_facts)!r})"


class Transfer(FlowFunction[D]):
    """``target = source``-style transfer: ``source`` additionally flows to
    ``target``; ``target``'s previous value is killed (the non-locally-
    separable function of Section 2.1)."""

    def __init__(self, target: D, source: D) -> None:
        self.target = target
        self.source = source

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        if fact == self.target:
            return frozenset()
        if fact == self.source:
            return frozenset((self.source, self.target))
        return frozenset((fact,))

    def __repr__(self) -> str:
        return f"Transfer({self.target!r} <- {self.source!r})"


class Lambda(FlowFunction[D]):
    """Wraps a plain callable ``fact -> iterable of facts``."""

    def __init__(self, function: Callable[[D], Iterable[D]]) -> None:
        self.function = function

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        return frozenset(self.function(fact))

    def __repr__(self) -> str:
        return f"Lambda({self.function!r})"


class Compose(FlowFunction[D]):
    """Sequential composition: apply ``first``, then ``second`` pointwise."""

    def __init__(self, first: FlowFunction[D], second: FlowFunction[D]) -> None:
        self.first = first
        self.second = second

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        result: FrozenSet[D] = frozenset()
        for intermediate in self.first.compute_targets(fact):
            result |= self.second.compute_targets(intermediate)
        return result

    def __repr__(self) -> str:
        return f"Compose({self.first!r}, {self.second!r})"


class Union(FlowFunction[D]):
    """Pointwise union of several flow functions."""

    def __init__(self, *functions: FlowFunction[D]) -> None:
        self.functions = functions

    def compute_targets(self, fact: D) -> FrozenSet[D]:
        result: FrozenSet[D] = frozenset()
        for function in self.functions:
            result |= function.compute_targets(fact)
        return result

    def __repr__(self) -> str:
        return f"Union({', '.join(map(repr, self.functions))})"
