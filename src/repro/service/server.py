"""The ``spllift serve`` daemon: a result store over stdlib HTTP.

Wraps any *local* store backend (directory or sqlite) and serves the
wire protocol consumed by
:class:`~repro.service.backends.http.HttpStore` — GET/HEAD/PUT on
``/objects/<digest>`` plus the admin endpoints (``/stats``, ``/clear``,
``/prune``, ``/health``) and a Prometheus-style plaintext ``/metrics``
exposition of this process's :mod:`repro.obs` registry.  Zero
dependencies: ``http.server``'s
:class:`~http.server.ThreadingHTTPServer` handles each request on its
own thread, a server-wide lock serializes store access (record bodies
are small; correctness beats parallel file I/O here), and the sqlite
backend's WAL mode means *other processes* on the host can still use
the same database file directly while it is being served.  ``/metrics``
deliberately never takes the store lock — it reads only the in-process
registry, so a scrape can never block (or be blocked by) store traffic.

Trace context propagates in: a client that sends ``X-SPLLIFT-Run-Id``
(and optionally ``X-SPLLIFT-Parent-Span``, see
:class:`~repro.service.backends.http.HttpStore`) gets a correlated
server-side ``server/request`` span carrying both ids, so one campaign's
client and server timelines join on the run id.

The server never trusts the client: a PUT whose body is not a JSON
object, or whose ``digest`` field disagrees with the URL, is a 400 —
mis-keyed records must not enter the store, because every reader
validates digests and would treat them as misses forever.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro.obs import runtime as obs
from repro.obs.metrics import render_prometheus

__all__ = ["StoreRequestHandler", "make_server", "serve_store"]

_OBJECTS_PREFIX = "/objects/"

#: Trace-context request headers (sent by the HTTP store client).
RUN_ID_HEADER = "X-SPLLIFT-Run-Id"
PARENT_SPAN_HEADER = "X-SPLLIFT-Parent-Span"


class StoreRequestHandler(BaseHTTPRequestHandler):
    """One request against the served store."""

    protocol_version = "HTTP/1.1"
    server_version = "spllift-store/1"

    # The bound store and its lock live on the server object
    # (set by :func:`make_server`).

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _send_json(self, status: int, document: Dict[str, object]) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_empty(self, status: int) -> None:
        self.send_response(status)
        self.send_header("Content-Length", "0")
        self.end_headers()

    def _digest_from_path(self) -> Optional[str]:
        if not self.path.startswith(_OBJECTS_PREFIX):
            return None
        digest = self.path[len(_OBJECTS_PREFIX):]
        if len(digest) < 8 or not all(
            c in "0123456789abcdef" for c in digest
        ):
            return None
        return digest

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _store(self):
        return self.server.store

    def _locked(self):
        return self.server.store_lock

    def _request_span(self, verb: str):
        """A server-side span correlated with the client's trace context.

        The client's run id and innermost span arrive as request headers;
        recording them as span args is what lets ``spllift obs
        postmortem`` / trace tooling join the two timelines.
        """
        args: Dict[str, object] = {"verb": verb, "path": self.path}
        client_run = self.headers.get(RUN_ID_HEADER)
        if client_run:
            args["client_run_id"] = client_run
        parent = self.headers.get(PARENT_SPAN_HEADER)
        if parent:
            args["parent_span"] = parent
        return obs.tracer().span("server/request", **args)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        with self._request_span("GET"):
            self._handle_get()

    def _handle_get(self) -> None:
        obs.metrics().inc("server.requests")
        if self.path == "/metrics":
            # Registry only — never the store lock.  A scrape must not
            # queue behind (or ahead of) store traffic.
            obs.metrics().inc("server.metrics_requests")
            body = render_prometheus(obs.metrics()).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        if self.path == "/health":
            store = self._store()
            self._send_json(
                200,
                {
                    "ok": True,
                    "backend": store.kind,
                    "root": str(getattr(store, "root", getattr(store, "path", ""))),
                },
            )
            return
        if self.path == "/stats":
            with self._locked():
                stats = self._store().stats()
            self._send_json(200, stats)
            return
        digest = self._digest_from_path()
        if digest is None:
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        with self._locked():
            record = self._store().get(digest)
        if record is None:
            self._send_json(404, {"error": "miss"})
            return
        self._send_json(200, record)

    def do_HEAD(self) -> None:  # noqa: N802
        with self._request_span("HEAD"):
            self._handle_head()

    def _handle_head(self) -> None:
        obs.metrics().inc("server.requests")
        digest = self._digest_from_path()
        if digest is None:
            self._send_empty(404)
            return
        with self._locked():
            present = self._store().contains(digest)
        self._send_empty(200 if present else 404)

    def do_PUT(self) -> None:  # noqa: N802
        with self._request_span("PUT"):
            self._handle_put()

    def _handle_put(self) -> None:
        obs.metrics().inc("server.requests")
        digest = self._digest_from_path()
        if digest is None:
            self._send_json(404, {"error": f"unknown path {self.path}"})
            return
        try:
            record = json.loads(self._read_body())
        except json.JSONDecodeError:
            self._send_json(400, {"error": "body is not valid JSON"})
            return
        if not isinstance(record, dict) or record.get("digest") != digest:
            self._send_json(
                400, {"error": "record digest must match the URL digest"}
            )
            return
        with self._locked():
            self._store().put(record)
        self._send_empty(204)

    def do_POST(self) -> None:  # noqa: N802
        with self._request_span("POST"):
            self._handle_post()

    def _handle_post(self) -> None:
        obs.metrics().inc("server.requests")
        if self.path == "/clear":
            with self._locked():
                removed = self._store().clear()
            self._send_json(200, {"removed": removed})
            return
        if self.path == "/prune":
            try:
                document = json.loads(self._read_body() or b"{}")
                max_bytes = int(document["max_bytes"])
                if max_bytes < 0:
                    raise ValueError(max_bytes)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                self._send_json(
                    400, {"error": 'prune needs a JSON body {"max_bytes": n >= 0}'}
                )
                return
            with self._locked():
                summary = self._store().prune(max_bytes)
            self._send_json(200, summary)
            return
        self._send_json(404, {"error": f"unknown path {self.path}"})


def make_server(
    store,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """A ready-to-run store server (``port=0`` picks a free port).

    The caller owns the lifecycle: ``serve_forever()`` to block,
    ``shutdown()``/``server_close()`` to stop (tests run it on a
    daemon thread).
    """
    server = ThreadingHTTPServer((host, port), StoreRequestHandler)
    server.daemon_threads = True
    server.store = store
    server.store_lock = threading.Lock()
    server.verbose = verbose
    return server


def serve_store(
    store,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    ready_callback=None,
) -> Tuple[str, int]:
    """Serve ``store`` until interrupted; returns the bound address.

    ``ready_callback(host, port)`` fires after the socket is bound —
    the CLI uses it to print the URL clients should point at.
    """
    server = make_server(store, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    if ready_callback is not None:
        ready_callback(bound_host, bound_port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return bound_host, bound_port
