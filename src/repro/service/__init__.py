"""The analysis service: batch scheduling, worker pool, result store.

The production layer over the single-shot :class:`~repro.core.SPLLift`
facade (see DESIGN.md §"Service architecture"):

- :mod:`repro.service.jobs` — content-addressed job model + manifests;
- :mod:`repro.service.store` — on-disk content-addressed result store;
- :mod:`repro.service.worker` — per-job execution and serialization;
- :mod:`repro.service.scheduler` — process-pool fan-out with per-job
  timeout, bounded crash retry, and in-process fallback.
"""

from repro.service.jobs import (
    AnalysisJob,
    ServiceError,
    canonical_analysis_name,
    canonical_feature_model_text,
    known_analyses,
    load_manifest,
    paper_campaign_jobs,
    parse_manifest,
    resolve_analysis,
)
from repro.service.scheduler import (
    BatchReport,
    BatchScheduler,
    JobOutcome,
    run_batch,
)
from repro.service.store import ResultStore, default_cache_dir
from repro.service.worker import build_record, execute_job

__all__ = [
    "AnalysisJob",
    "ServiceError",
    "BatchReport",
    "BatchScheduler",
    "JobOutcome",
    "ResultStore",
    "run_batch",
    "build_record",
    "execute_job",
    "canonical_analysis_name",
    "canonical_feature_model_text",
    "default_cache_dir",
    "known_analyses",
    "load_manifest",
    "paper_campaign_jobs",
    "parse_manifest",
    "resolve_analysis",
]
