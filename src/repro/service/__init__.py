"""The analysis service: batch scheduling, worker pool, result store.

The production layer over the single-shot :class:`~repro.core.SPLLift`
facade (see DESIGN.md §"Service architecture"):

- :mod:`repro.service.jobs` — content-addressed job model + manifests
  (flat job lists or dependency DAGs via :class:`BatchPlan`);
- :mod:`repro.service.backends` — pluggable result-store backends
  behind one protocol: directory (:mod:`repro.service.store`), sqlite,
  and HTTP, selected by URL-style spec (:func:`open_store`);
- :mod:`repro.service.server` — the ``spllift serve`` daemon sharing
  one store with a fleet of schedulers;
- :mod:`repro.service.worker` — per-job execution and serialization;
- :mod:`repro.service.scheduler` — process-pool fan-out with per-job
  timeout, bounded crash retry, in-process fallback, and topological
  DAG dispatch with store-first edges.
"""

from repro.service.backends import (
    BACKEND_KINDS,
    HttpStore,
    RemoteStoreError,
    SqliteStore,
    StoreBackend,
    open_store,
)
from repro.service.jobs import (
    AnalysisJob,
    BatchPlan,
    ServiceError,
    canonical_analysis_name,
    canonical_feature_model_text,
    known_analyses,
    load_manifest,
    load_manifest_plan,
    paper_campaign_jobs,
    parse_manifest,
    parse_manifest_plan,
    resolve_analysis,
)
from repro.service.scheduler import (
    BatchReport,
    BatchScheduler,
    JobOutcome,
    run_batch,
)
from repro.service.server import make_server, serve_store
from repro.service.store import ResultStore, default_cache_dir
from repro.service.worker import build_record, execute_job

__all__ = [
    "AnalysisJob",
    "BACKEND_KINDS",
    "BatchPlan",
    "ServiceError",
    "BatchReport",
    "BatchScheduler",
    "HttpStore",
    "JobOutcome",
    "RemoteStoreError",
    "ResultStore",
    "SqliteStore",
    "StoreBackend",
    "run_batch",
    "build_record",
    "execute_job",
    "canonical_analysis_name",
    "canonical_feature_model_text",
    "default_cache_dir",
    "known_analyses",
    "load_manifest",
    "load_manifest_plan",
    "make_server",
    "open_store",
    "paper_campaign_jobs",
    "parse_manifest",
    "parse_manifest_plan",
    "resolve_analysis",
    "serve_store",
]
