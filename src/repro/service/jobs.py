"""The analysis-service job model: content-addressed analysis requests.

An analysis request is the tuple *(program digest, analysis name,
feature-model digest, fm_mode, solver options)*.  Two requests with the
same canonical content hash are the same job — no matter whether the
program arrived as a file path, inline source, or a generated benchmark
subject — which is what lets the result store serve warm re-runs without
touching the solver.

Canonical hashing:

- the **program digest** is the sha256 of the MiniJava source bytes
  (UTF-8, exactly as written — the parser is whitespace-sensitive enough
  that normalizing would risk aliasing distinct programs);
- the **feature-model digest** is the sha256 of the model's canonical
  textual rendering (:func:`canonical_feature_model_text`), so a model
  parsed from a file and the structurally identical model built
  programmatically hash the same;
- the **job digest** is the sha256 of a canonical JSON document over both
  digests plus analysis name, fm_mode, entry point and the *public*
  solver options (keys starting with ``_`` are test/debug hooks and do
  not change the result, so they are excluded).

Batch manifests (``spllift batch <manifest>``) are JSON::

    {"jobs": [
        {"file": "shop.mj", "feature_model": "shop.fm",
         "analysis": "taint", "fm_mode": "edge"},
        {"subject": "GPL-like", "analysis": "possible_types"}
    ]}

or, for the paper's Table 2/3 campaign, simply ``{"campaign": "paper"}``
(the 12 subject×analysis jobs).

Manifests may also be dependency **DAGs**: a job entry can carry an
``id`` (any unique string) and ``after`` (a list of predecessor ids)::

    {"jobs": [
        {"id": "rd",    "subject": "GPL-like", "analysis": "rd"},
        {"id": "types", "subject": "GPL-like", "analysis": "types"},
        {"id": "uninit", "subject": "GPL-like", "analysis": "uninit",
         "after": ["rd", "types"]}
    ]}

:func:`parse_manifest_plan` returns the :class:`BatchPlan` (jobs +
dependency edges, validated acyclic with every id resolved); the
scheduler dispatches jobs in topological order as their predecessors
complete.  Edges are *ordering* constraints — results stay
content-addressed per job, so a dependency already present in the
result store satisfies its edges without running ("store-first edges").
Unknown ids, duplicate ids, self-edges and cycles are
:class:`ServiceError`\\ s (CLI exit 2).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.featuremodel.model import FeatureModel
from repro.featuremodel.printer import render_feature_model
from repro.ifds.problem import IFDSProblem
from repro.ir.icfg import ICFG

__all__ = [
    "ServiceError",
    "AnalysisJob",
    "ANALYSIS_ALIASES",
    "BatchPlan",
    "canonical_analysis_name",
    "resolve_analysis",
    "known_analyses",
    "canonical_feature_model_text",
    "load_manifest",
    "load_manifest_plan",
    "parse_manifest",
    "parse_manifest_plan",
    "paper_campaign_jobs",
]

JOB_SCHEMA = "spllift-job/v1"


class ServiceError(ValueError):
    """A user-facing analysis-service error (bad manifest, unknown
    analysis, unreadable input) — rendered as a clean one-line message by
    the CLI, never as a traceback."""


# ----------------------------------------------------------------------
# Analysis registry
# ----------------------------------------------------------------------

#: alias -> canonical snake_case analysis name.
ANALYSIS_ALIASES: Dict[str, str] = {
    "taint": "taint",
    "uninit": "uninitialized_variables",
    "uninitialized_variables": "uninitialized_variables",
    "uninitialized variables": "uninitialized_variables",
    "nullness": "nullness",
    "types": "possible_types",
    "possible_types": "possible_types",
    "possible types": "possible_types",
    "rd": "reaching_definitions",
    "reaching_definitions": "reaching_definitions",
    "reaching definitions": "reaching_definitions",
    "typestate": "typestate",
}


def _analysis_factories() -> Dict[str, Callable[[ICFG], IFDSProblem]]:
    # Imported lazily so `repro.service.jobs` stays importable from a bare
    # worker bootstrap without dragging every analysis module in up front.
    from repro.analyses import (
        NullnessAnalysis,
        PossibleTypesAnalysis,
        ReachingDefinitionsAnalysis,
        TaintAnalysis,
        UninitializedVariablesAnalysis,
    )
    from repro.analyses.typestate import FILE_PROTOCOL, TypestateAnalysis

    return {
        "taint": TaintAnalysis,
        "uninitialized_variables": UninitializedVariablesAnalysis,
        "nullness": NullnessAnalysis,
        "possible_types": PossibleTypesAnalysis,
        "reaching_definitions": ReachingDefinitionsAnalysis,
        "typestate": lambda icfg: TypestateAnalysis(icfg, FILE_PROTOCOL),
    }


def known_analyses() -> Tuple[str, ...]:
    """The canonical analysis names, sorted."""
    return tuple(sorted(set(ANALYSIS_ALIASES.values())))


def canonical_analysis_name(name: str) -> str:
    """Normalize an analysis name or alias; raise :class:`ServiceError`
    for unknown names."""
    canonical = ANALYSIS_ALIASES.get(str(name).strip().lower())
    if canonical is None:
        raise ServiceError(
            f"unknown analysis {name!r} (known: {', '.join(known_analyses())})"
        )
    return canonical


def resolve_analysis(name: str) -> Callable[[ICFG], IFDSProblem]:
    """The factory building the (unlifted) IFDS problem for ``name``."""
    return _analysis_factories()[canonical_analysis_name(name)]


# ----------------------------------------------------------------------
# Canonical feature-model text
# ----------------------------------------------------------------------


def canonical_feature_model_text(model: Optional[FeatureModel]) -> str:
    """The model's canonical textual form ("" for no/empty model).

    Uses the round-trippable printer; a rootless model (the default
    ``FeatureModel()``, which constrains nothing) canonicalizes to the
    empty string so that "no feature model" hashes identically however it
    was expressed.
    """
    if model is None or model.root is None:
        if model is not None and model.cross_tree:
            # Rootless but constrained: canonicalize the constraints alone.
            return "".join(f"constraint {f};\n" for f in model.cross_tree)
        return ""
    return render_feature_model(model)


def _sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The job itself
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AnalysisJob:
    """One content-addressed analysis request."""

    label: str
    source: str
    analysis: str
    feature_model_text: str = ""
    fm_mode: str = "edge"
    entry: str = "Main.main"
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "analysis", canonical_analysis_name(self.analysis)
        )
        if self.fm_mode not in ("edge", "seed", "ignore"):
            raise ServiceError(
                f"fm_mode must be edge/seed/ignore, got {self.fm_mode!r}"
            )

    # -- digests -------------------------------------------------------

    @property
    def program_digest(self) -> str:
        return _sha256_text(self.source)

    @property
    def feature_model_digest(self) -> str:
        return _sha256_text(self.feature_model_text)

    @property
    def public_options(self) -> Dict[str, object]:
        """Solver options that affect the result (``_``-prefixed keys are
        test/debug hooks, excluded from the identity)."""
        return {
            key: self.options[key]
            for key in sorted(self.options)
            if not key.startswith("_")
        }

    @property
    def digest(self) -> str:
        """The job's content hash — the result store key."""
        document = json.dumps(
            {
                "schema": JOB_SCHEMA,
                "program": self.program_digest,
                "feature_model": self.feature_model_digest,
                "analysis": self.analysis,
                "fm_mode": self.fm_mode,
                "entry": self.entry,
                "options": self.public_options,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return _sha256_text(document)

    def describe(self) -> Dict[str, object]:
        """Job metadata in the shape stored records and reports carry."""
        return {
            "label": self.label,
            "analysis": self.analysis,
            "fm_mode": self.fm_mode,
            "entry": self.entry,
            "program_digest": self.program_digest,
            "feature_model_digest": self.feature_model_digest,
            "options": self.public_options,
        }

    # -- constructors --------------------------------------------------

    @classmethod
    def from_product_line(
        cls,
        product_line,
        analysis: str,
        fm_mode: str = "edge",
        label: Optional[str] = None,
        options: Optional[Mapping[str, object]] = None,
    ) -> "AnalysisJob":
        """Build a job from an in-memory :class:`ProductLine`."""
        return cls(
            label=label if label is not None else product_line.name,
            source=product_line.source,
            analysis=analysis,
            feature_model_text=canonical_feature_model_text(
                product_line.feature_model
            ),
            fm_mode=fm_mode,
            entry=product_line.entry,
            options=dict(options or {}),
        )

    @classmethod
    def from_files(
        cls,
        file: str,
        analysis: str,
        feature_model: Optional[str] = None,
        fm_mode: str = "edge",
        entry: str = "Main.main",
        options: Optional[Mapping[str, object]] = None,
        base_dir: Optional[Path] = None,
    ) -> "AnalysisJob":
        """Build a job from a source file (+ optional feature-model file).

        The feature model is parsed and canonically re-rendered so the
        digest is representation-independent; unreadable or unparseable
        inputs raise :class:`ServiceError`.
        """
        base = Path(base_dir) if base_dir is not None else Path(".")
        source_path = Path(file)
        if not source_path.is_absolute():
            source_path = base / source_path
        source = _read_text(source_path)
        fm_text = ""
        if feature_model:
            fm_path = Path(feature_model)
            if not fm_path.is_absolute():
                fm_path = base / fm_path
            fm_text = canonical_feature_model_text(
                _parse_fm(_read_text(fm_path), fm_path)
            )
        return cls(
            label=str(file),
            source=source,
            analysis=analysis,
            feature_model_text=fm_text,
            fm_mode=fm_mode,
            entry=entry,
            options=dict(options or {}),
        )

    def feature_model(self) -> FeatureModel:
        """The job's feature model, parsed back from canonical text."""
        if not self.feature_model_text:
            return FeatureModel()
        if self.feature_model_text.startswith("constraint "):
            # The rootless canonical form (constraints only) is not part
            # of the textual grammar, which always requires a root.
            from repro.constraints.formula import parse_formula

            formulas = []
            for line in self.feature_model_text.splitlines():
                body = line.strip()[len("constraint "):].rstrip(";")
                formulas.append(parse_formula(body))
            return FeatureModel(cross_tree=formulas)
        return _parse_fm(self.feature_model_text, None)


def _read_text(path: Path) -> str:
    try:
        return path.read_text()
    except OSError as error:
        raise ServiceError(f"cannot read {path}: {error.strerror}") from error


def _parse_fm(text: str, path: Optional[Path]) -> FeatureModel:
    from repro.featuremodel import FeatureModelError, parse_feature_model

    try:
        return parse_feature_model(text)
    except FeatureModelError as error:
        where = f" in {path}" if path is not None else ""
        raise ServiceError(f"bad feature model{where}: {error}") from error


# ----------------------------------------------------------------------
# Campaigns and manifests
# ----------------------------------------------------------------------

_SUBJECT_BUILDERS: Dict[str, str] = {
    # name -> attribute on repro.spl.benchmarks
    "BerkeleyDB-like": "berkeleydb_like",
    "GPL-like": "gpl_like",
    "Lampiro-like": "lampiro_like",
    "MM08-like": "mm08_like",
}

#: The paper's Table 2/3 client lineup, canonical names, table order.
PAPER_CAMPAIGN_ANALYSES = (
    "possible_types",
    "reaching_definitions",
    "uninitialized_variables",
)


def _build_subject(name: str):
    import repro.spl.benchmarks as benchmarks

    attribute = _SUBJECT_BUILDERS.get(name)
    if attribute is None:
        raise ServiceError(
            f"unknown benchmark subject {name!r} "
            f"(known: {', '.join(sorted(_SUBJECT_BUILDERS))})"
        )
    return getattr(benchmarks, attribute)()


def paper_campaign_jobs(
    subjects: Optional[Tuple[str, ...]] = None,
    analyses: Tuple[str, ...] = PAPER_CAMPAIGN_ANALYSES,
    fm_mode: str = "edge",
) -> List[AnalysisJob]:
    """The Table 2/3 batch: 4 subjects × 3 analyses = 12 jobs."""
    names = subjects if subjects is not None else tuple(_SUBJECT_BUILDERS)
    jobs = []
    for name in names:
        product_line = _build_subject(name)
        for analysis in analyses:
            jobs.append(
                AnalysisJob.from_product_line(
                    product_line, analysis, fm_mode=fm_mode, label=name
                )
            )
    return jobs


@dataclass(frozen=True)
class BatchPlan:
    """A validated batch: jobs plus their dependency edges.

    ``dependencies[i]`` holds the indices of the jobs that must complete
    before ``jobs[i]`` may run; ``ids[i]`` is the manifest id (auto-named
    ``#<position>`` when the entry declared none).  Construction via
    :func:`parse_manifest_plan` guarantees the edge list is acyclic and
    every referenced id exists.
    """

    jobs: Tuple[AnalysisJob, ...]
    ids: Tuple[str, ...]
    dependencies: Tuple[Tuple[int, ...], ...]

    @property
    def has_dependencies(self) -> bool:
        return any(self.dependencies)

    def topological_order(self) -> List[int]:
        """Job indices in a dependency-respecting order (Kahn's
        algorithm, stable by position); raises :class:`ServiceError`
        naming the jobs on a cycle."""
        indegree = [len(set(deps)) for deps in self.dependencies]
        dependents: Dict[int, List[int]] = {}
        for index, deps in enumerate(self.dependencies):
            for dep in set(deps):
                dependents.setdefault(dep, []).append(index)
        ready = [index for index, count in enumerate(indegree) if count == 0]
        order: List[int] = []
        while ready:
            index = ready.pop(0)
            order.append(index)
            for dependent in dependents.get(index, ()):
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self.jobs):
            stuck = sorted(
                self.ids[index]
                for index, count in enumerate(indegree)
                if count > 0
            )
            raise ServiceError(
                "dependency cycle in manifest involving: " + ", ".join(stuck)
            )
        return order


def parse_manifest(document: object, base_dir: Path) -> List[AnalysisJob]:
    """Turn a decoded manifest document into jobs (see module docstring)."""
    return list(parse_manifest_plan(document, base_dir).jobs)


def parse_manifest_plan(document: object, base_dir: Path) -> BatchPlan:
    """Turn a decoded manifest document into a validated
    :class:`BatchPlan` (jobs + dependency DAG, see module docstring)."""
    if not isinstance(document, dict):
        raise ServiceError("manifest must be a JSON object")
    campaign = document.get("campaign")
    jobs: List[AnalysisJob] = []
    ids: List[str] = []
    after: List[Tuple[str, ...]] = []
    if campaign is not None:
        if campaign != "paper":
            raise ServiceError(
                f"unknown campaign {campaign!r} (known: paper)"
            )
        for job in paper_campaign_jobs():
            jobs.append(job)
            ids.append(f"#{len(ids)}")
            after.append(())
    entries = document.get("jobs", [])
    if not isinstance(entries, list):
        raise ServiceError('manifest "jobs" must be a list')
    for position, entry in enumerate(entries):
        jobs.append(_job_from_spec(entry, position, base_dir))
        job_id, predecessors = _edges_from_spec(entry, position)
        ids.append(job_id if job_id is not None else f"#{len(ids)}")
        after.append(predecessors)
    if not jobs:
        raise ServiceError("manifest contains no jobs")
    seen: Dict[str, int] = {}
    for index, job_id in enumerate(ids):
        if job_id in seen:
            raise ServiceError(f"duplicate job id {job_id!r} in manifest")
        seen[job_id] = index
    dependencies: List[Tuple[int, ...]] = []
    for index, predecessors in enumerate(after):
        resolved = []
        for predecessor in predecessors:
            target = seen.get(predecessor)
            if target is None:
                raise ServiceError(
                    f"job {ids[index]!r}: unknown dependency id "
                    f"{predecessor!r}"
                )
            if target == index:
                raise ServiceError(
                    f"job {ids[index]!r} cannot depend on itself"
                )
            resolved.append(target)
        dependencies.append(tuple(resolved))
    plan = BatchPlan(
        jobs=tuple(jobs), ids=tuple(ids), dependencies=tuple(dependencies)
    )
    plan.topological_order()  # raises on cycles — validate at parse time
    return plan


def _edges_from_spec(
    entry: object, position: int
) -> Tuple[Optional[str], Tuple[str, ...]]:
    """The (id, after) pair of one manifest entry, type-checked."""
    if not isinstance(entry, dict):
        return None, ()  # _job_from_spec already rejected it
    job_id = entry.get("id")
    if job_id is not None and (not isinstance(job_id, str) or not job_id):
        raise ServiceError(f'job #{position}: "id" must be a non-empty string')
    predecessors = entry.get("after", [])
    if not isinstance(predecessors, list) or not all(
        isinstance(item, str) for item in predecessors
    ):
        raise ServiceError(f'job #{position}: "after" must be a list of job ids')
    return job_id, tuple(predecessors)


def _job_from_spec(entry: object, position: int, base_dir: Path) -> AnalysisJob:
    if not isinstance(entry, dict):
        raise ServiceError(f"job #{position}: each job must be a JSON object")
    analysis = entry.get("analysis")
    if not analysis:
        raise ServiceError(f'job #{position}: missing "analysis"')
    fm_mode = entry.get("fm_mode", "edge")
    options = entry.get("options", {})
    if not isinstance(options, dict):
        raise ServiceError(f'job #{position}: "options" must be an object')
    subject = entry.get("subject")
    if subject is not None:
        product_line = _build_subject(subject)
        return AnalysisJob.from_product_line(
            product_line,
            analysis,
            fm_mode=fm_mode,
            label=entry.get("label", subject),
            options=options,
        )
    file = entry.get("file")
    if file is None and "source" not in entry:
        raise ServiceError(
            f'job #{position}: needs one of "file", "subject" or "source"'
        )
    if file is not None:
        return AnalysisJob.from_files(
            file,
            analysis,
            feature_model=entry.get("feature_model"),
            fm_mode=fm_mode,
            entry=entry.get("entry", "Main.main"),
            options=options,
            base_dir=base_dir,
        )
    fm_text = entry.get("feature_model_text", "")
    if fm_text:
        fm_text = canonical_feature_model_text(_parse_fm(fm_text, None))
    return AnalysisJob(
        label=entry.get("label", f"job-{position}"),
        source=entry["source"],
        analysis=analysis,
        feature_model_text=fm_text,
        fm_mode=fm_mode,
        entry=entry.get("entry", "Main.main"),
        options=options,
    )


def load_manifest(path: str) -> List[AnalysisJob]:
    """Read and parse a batch manifest file (jobs only)."""
    return list(load_manifest_plan(path).jobs)


def load_manifest_plan(path: str) -> BatchPlan:
    """Read and parse a batch manifest file into a :class:`BatchPlan`."""
    manifest_path = Path(path)
    text = _read_text(manifest_path)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ServiceError(f"bad manifest {path}: {error}") from error
    return parse_manifest_plan(document, manifest_path.parent)
