"""Worker side of the analysis service: execute one job, end to end.

:func:`execute_job` is the whole pipeline — parse the MiniJava source,
parse the feature model, lower, build the ICFG, lift, solve, serialize —
run either in-process (inline fallback) or inside a pool worker process
(:func:`worker_main`, which talks to the scheduler over a pipe).

The produced **record** is self-describing and store-ready::

    {"schema": "spllift-result/v1",
     "digest": <job digest>, "job": {…},
     "result_digest": <sha256 over the canonical lines>,
     "lines": ["Main.main:4|print(y);|y|!F & G & !H", …],
     "findings": <satisfiable non-zero facts>,
     "stats": {…solver counters…}, "solve_seconds": …}

Fault injection: the ``_test_crash_marker`` / ``_test_crash_always`` job
options make a *pool worker* die with SIGKILL (before doing any work) so
the scheduler's crash/retry path can be tested deterministically.  They
are inert in-process — a worker hook must never kill the caller — and,
like every ``_``-prefixed option, excluded from the job digest.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Dict

from repro.obs import runtime as obs
from repro.service.jobs import AnalysisJob, resolve_analysis
from repro.service.store import RESULT_SCHEMA

__all__ = ["execute_job", "build_record", "worker_main"]

#: Set in pool worker processes; gates the fault-injection hooks.
_WORKER_ENV = "SPLLIFT_WORKER"


def _maybe_crash(job: AnalysisJob) -> None:
    if os.environ.get(_WORKER_ENV) != "1":
        return
    marker = job.options.get("_test_crash_marker")
    if marker:
        if not os.path.exists(str(marker)):
            with open(str(marker), "w"):
                pass
            os.kill(os.getpid(), signal.SIGKILL)
    if job.options.get("_test_crash_always"):
        os.kill(os.getpid(), signal.SIGKILL)
    sleep = job.options.get("_test_sleep")
    if sleep:
        time.sleep(float(sleep))


def execute_job(job: AnalysisJob) -> Dict[str, object]:
    """Run one analysis job and return its store-ready record."""
    engine = str(job.options.get("engine") or "tabulate")
    # Before any work (and before the fault-injection hooks): a flight
    # postmortem must be able to name the job a dead worker was running.
    obs.flight().note_job(
        {
            "label": job.label,
            "analysis": job.analysis,
            "fm_mode": job.fm_mode,
            "digest": job.digest,
            "engine": engine,
        }
    )
    obs.log_event(
        "job.start",
        label=job.label,
        analysis=job.analysis,
        digest=job.digest[:12],
        engine=engine,
    )
    with obs.tracer().span(
        "service/job",
        label=job.label,
        analysis=job.analysis,
        digest=job.digest[:12],
        run_id=obs.run_id(),
    ):
        record = _execute_job(job)
    obs.log_event(
        "job.done",
        label=job.label,
        digest=job.digest[:12],
        facts=record.get("facts"),
        solve_seconds=record.get("solve_seconds"),
    )
    return record


def _execute_job(job: AnalysisJob) -> Dict[str, object]:
    from repro.core.solver import SPLLift
    from repro.spl.product_line import ProductLine

    _maybe_crash(job)
    product_line = ProductLine(
        name=job.label,
        source=job.source,
        feature_model=job.feature_model(),
        entry=job.entry,
    )
    analysis = resolve_analysis(job.analysis)(product_line.icfg)
    feature_model = (
        product_line.feature_model if job.fm_mode != "ignore" else None
    )
    options = job.public_options
    reorder = options.get("reorder")
    spllift = SPLLift(
        analysis,
        feature_model=feature_model,
        fm_mode=job.fm_mode,
        reorder=str(reorder) if reorder is not None else None,
    )
    engine = options.get("engine")
    started = time.perf_counter()
    results = spllift.solve(
        worklist_order=str(options.get("worklist_order", "fifo")),
        order_seed=int(options.get("order_seed", 0)),
        engine=str(engine) if engine is not None else None,
    )
    elapsed = time.perf_counter() - started
    return build_record(job, results, solve_seconds=elapsed)


def build_record(job: AnalysisJob, results, solve_seconds: float) -> Dict[str, object]:
    """Package solved :class:`SPLLiftResults` as a store record."""
    from repro.ifds.problem import ZERO

    facts = sum(
        1
        for (_, fact), constraint in results.items()
        if fact is not ZERO and not constraint.is_false
    )
    return {
        "schema": RESULT_SCHEMA,
        "digest": job.digest,
        "job": job.describe(),
        "result_digest": results.result_digest(),
        "lines": results.result_lines(),
        "facts": facts,
        "stats": dict(results.stats),
        "solve_seconds": round(solve_seconds, 6),
    }


def worker_main(job: AnalysisJob, connection) -> None:
    """Pool-worker entry point: run the job, ship the outcome back.

    Sends ``("ok", record)`` or ``("error", message)``; a worker that
    dies without sending anything is what the scheduler classifies as a
    crash (and retries).
    """
    os.environ[_WORKER_ENV] = "1"
    try:
        record = execute_job(job)
    except BaseException as error:  # noqa: BLE001 — ship, don't swallow
        try:
            connection.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            connection.close()
        return
    try:
        connection.send(("ok", record))
    finally:
        connection.close()
