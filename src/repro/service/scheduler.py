"""Batch scheduler: fan analysis jobs across a pool of worker processes.

The scheduler is deliberately not a ``ProcessPoolExecutor``: a pool
worker killed mid-job (OOM killer, segfault in a native extension, the
fault-injection tests) takes a ``concurrent.futures`` pool down with a
``BrokenProcessPool`` for *every* in-flight job.  The per-job-process
machinery lives in :class:`repro.core.parallel.ProcessTaskPool` (shared
with the parallel solve layer); this module adds the job semantics:

- **store first** — jobs whose digest is already in the result store are
  served without touching a worker (the warm path);
- **crash → bounded retry** — a worker that dies without reporting is
  re-queued up to ``max_retries`` times; exhausted retries become a
  per-job failure, never a crashed batch;
- **error → terminal** — a worker that *reports* an exception failed
  deterministically; retrying would fail identically, so it does not;
- **timeout → terminal** — a job exceeding ``job_timeout`` seconds is
  terminated and failed (the work is deterministic: it would time out
  again);
- **graceful degradation** — if worker processes cannot be spawned at
  all (restricted environments), the batch falls back to in-process
  execution with identical results.

The pool blocks on ``multiprocessing.connection.wait`` over result pipes
and process sentinels (timeout derived from the nearest job deadline),
so an idle scheduler burns no CPU.  :attr:`BatchReport.workers` reports
the parallelism *actually achieved* — 1 when every cold job degraded to
inline execution, 0 when the whole batch was served from the store —
and :meth:`BatchReport.describe` carries a per-executor breakdown.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.parallel import ProcessTaskPool
from repro.obs import runtime as obs
from repro.service.jobs import AnalysisJob
from repro.service.store import ResultStore
from repro.service.worker import execute_job

__all__ = ["JobOutcome", "BatchReport", "BatchScheduler", "run_batch"]

#: Outcome.status values.
CACHED, COMPUTED, FAILED = "cached", "computed", "failed"


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job: AnalysisJob
    status: str  # cached | computed | failed
    attempts: int = 0
    seconds: float = 0.0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    executor: str = "store"  # store | pool | inline

    @property
    def ok(self) -> bool:
        return self.status in (CACHED, COMPUTED)

    @property
    def result_digest(self) -> Optional[str]:
        if self.record is None:
            return None
        return self.record.get("result_digest")

    def describe(self) -> Dict[str, object]:
        """Report row (the ``spllift batch --report`` JSON shape)."""
        row: Dict[str, object] = {
            "label": self.job.label,
            "analysis": self.job.analysis,
            "fm_mode": self.job.fm_mode,
            "digest": self.job.digest,
            "status": self.status,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "executor": self.executor,
        }
        if self.record is not None:
            row["result_digest"] = self.record.get("result_digest")
            row["facts"] = self.record.get("facts")
        if self.error is not None:
            row["error"] = self.error
        return row


@dataclass
class BatchReport:
    """Outcome of a whole batch, in submission order.

    ``workers`` is the number of worker processes that actually ran
    concurrently at the batch's peak — not the configured maximum.  An
    all-cached batch used none; a batch degraded to inline execution
    used the calling process only.
    """

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == CACHED)

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == COMPUTED)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == FAILED)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    @property
    def executors(self) -> Dict[str, int]:
        """How many jobs each executor kind handled (store/pool/inline)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.executor] = counts.get(outcome.executor, 0) + 1
        return counts

    def describe(self) -> Dict[str, object]:
        return {
            "schema": "spllift-batch-report/v1",
            "jobs": [outcome.describe() for outcome in self.outcomes],
            "cached": self.cached,
            "computed": self.computed,
            "failed": self.failed,
            "wall_seconds": round(self.wall_seconds, 6),
            "workers": self.workers,
            "executors": self.executors,
        }


class BatchScheduler:
    """Schedule a batch of :class:`AnalysisJob` over worker processes."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 1,
        use_pool: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.store = store
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.use_pool = use_pool

    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[AnalysisJob]) -> BatchReport:
        started = time.perf_counter()
        obs.ensure_run_id()
        outcomes: Dict[int, JobOutcome] = {}
        cold: List[Tuple[int, AnalysisJob]] = []
        metrics = obs.metrics()

        with obs.tracer().span(
            "service/batch", jobs=len(jobs), run_id=obs.run_id()
        ):
            # Warm path: serve every digest the store already has.
            for index, job in enumerate(jobs):
                record = self.store.get(job.digest) if self.store else None
                if record is not None:
                    outcomes[index] = JobOutcome(
                        job=job, status=CACHED, record=record, executor="store"
                    )
                else:
                    cold.append((index, job))

            peak_workers = 0
            if cold:
                pool = ProcessTaskPool(
                    max_workers=self.max_workers,
                    task_timeout=self.job_timeout,
                    max_retries=self.max_retries,
                    use_pool=self.use_pool,
                )
                tasks = [(execute_job, (job,)) for _, job in cold]
                results = pool.run(tasks)
                peak_workers = pool.peak_workers
                for (index, job), task in zip(cold, results):
                    if task.ok:
                        if self.store is not None:
                            self.store.put(task.result)
                        outcomes[index] = JobOutcome(
                            job=job,
                            status=COMPUTED,
                            attempts=task.attempts,
                            seconds=task.seconds,
                            record=task.result,
                            executor=task.executor,
                        )
                    else:
                        outcomes[index] = JobOutcome(
                            job=job,
                            status=FAILED,
                            attempts=task.attempts,
                            seconds=task.seconds,
                            error=task.error,
                            executor=task.executor,
                        )

        ordered = [outcomes[index] for index in range(len(jobs))]
        for outcome in ordered:
            metrics.inc(f"scheduler.jobs_{outcome.status}")
            metrics.inc("scheduler.job_attempts", outcome.attempts)
            metrics.observe("scheduler.job_seconds", outcome.seconds)
        if any(outcome.executor == "pool" for outcome in ordered):
            workers = max(1, peak_workers)
        elif any(outcome.executor == "inline" for outcome in ordered):
            workers = 1
        else:
            workers = 0  # everything came from the store
        return BatchReport(
            outcomes=ordered,
            wall_seconds=time.perf_counter() - started,
            workers=workers,
        )


def run_batch(
    jobs: Sequence[AnalysisJob],
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 1,
    use_pool: bool = True,
) -> BatchReport:
    """One-call convenience wrapper around :class:`BatchScheduler`."""
    scheduler = BatchScheduler(
        store=store,
        max_workers=max_workers,
        job_timeout=job_timeout,
        max_retries=max_retries,
        use_pool=use_pool,
    )
    return scheduler.run(jobs)
