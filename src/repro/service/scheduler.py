"""Batch scheduler: fan analysis jobs across a pool of worker processes.

The scheduler is deliberately not a ``ProcessPoolExecutor``: a pool
worker killed mid-job (OOM killer, segfault in a native extension, the
fault-injection tests) takes a ``concurrent.futures`` pool down with a
``BrokenProcessPool`` for *every* in-flight job.  The per-job-process
machinery lives in :class:`repro.core.parallel.ProcessTaskPool` (shared
with the parallel solve layer); this module adds the job semantics:

- **store first** — jobs whose digest is already in the result store are
  served without touching a worker (the warm path);
- **crash → bounded retry** — a worker that dies without reporting is
  re-queued up to ``max_retries`` times; exhausted retries become a
  per-job failure, never a crashed batch;
- **error → terminal** — a worker that *reports* an exception failed
  deterministically; retrying would fail identically, so it does not;
- **timeout → terminal** — a job exceeding ``job_timeout`` seconds is
  terminated and failed (the work is deterministic: it would time out
  again);
- **graceful degradation** — if worker processes cannot be spawned at
  all (restricted environments), the batch falls back to in-process
  execution with identical results.

Batches may carry a dependency **DAG** (manifest entries with
``id``/``after``, see :class:`~repro.service.jobs.BatchPlan`).  The
scheduler then dispatches in waves of ready jobs: a job becomes ready
once every predecessor has settled successfully, and each wave fans over
the same pool.  Three DAG-specific rules:

- **store-first edges** — a *cached* job settles immediately, before any
  scheduling, so its dependents don't wait for it (results are
  content-addressed: an edge is an ordering constraint, not a data
  flow the scheduler must reenact);
- **failed-predecessor skip** — a job whose predecessor failed (or was
  itself skipped) is marked ``skipped``, transitively, instead of
  running against a missing precondition;
- **wait accounting** — every outcome records ``wait_seconds``, the time
  the job spent blocked on predecessors before dispatch (0 for jobs
  ready at batch start), mirrored into the
  ``scheduler.dag_wait_seconds`` histogram.

The pool blocks on ``multiprocessing.connection.wait`` over result pipes
and process sentinels (timeout derived from the nearest job deadline),
so an idle scheduler burns no CPU.  :attr:`BatchReport.workers` reports
the parallelism *actually achieved* — 1 when every cold job degraded to
inline execution, 0 when the whole batch was served from the store —
and :meth:`BatchReport.describe` carries a per-executor breakdown.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.parallel import ProcessTaskPool
from repro.obs import runtime as obs
from repro.service.jobs import AnalysisJob, BatchPlan, ServiceError
from repro.service.worker import execute_job

__all__ = ["JobOutcome", "BatchReport", "BatchScheduler", "run_batch"]

#: Outcome.status values.
CACHED, COMPUTED, FAILED, SKIPPED = "cached", "computed", "failed", "skipped"


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job: AnalysisJob
    status: str  # cached | computed | failed | skipped
    attempts: int = 0
    seconds: float = 0.0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    executor: str = "store"  # store | pool | inline | none
    wait_seconds: float = 0.0  # time spent blocked on DAG predecessors
    #: ``spllift-flight/v1`` dump captured from a dead/failed worker
    #: attempt of this job (``spllift obs postmortem`` reads these off
    #: the batch report).
    flight: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.status in (CACHED, COMPUTED)

    @property
    def result_digest(self) -> Optional[str]:
        if self.record is None:
            return None
        return self.record.get("result_digest")

    def describe(self) -> Dict[str, object]:
        """Report row (the ``spllift batch --report`` JSON shape)."""
        row: Dict[str, object] = {
            "label": self.job.label,
            "analysis": self.job.analysis,
            "fm_mode": self.job.fm_mode,
            "digest": self.job.digest,
            "status": self.status,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "executor": self.executor,
            "wait_seconds": round(self.wait_seconds, 6),
        }
        if self.record is not None:
            row["result_digest"] = self.record.get("result_digest")
            row["facts"] = self.record.get("facts")
        if self.error is not None:
            row["error"] = self.error
        if self.flight is not None:
            row["flight"] = self.flight
        return row


@dataclass
class BatchReport:
    """Outcome of a whole batch, in submission order.

    ``workers`` is the number of worker processes that actually ran
    concurrently at the batch's peak — not the configured maximum.  An
    all-cached batch used none; a batch degraded to inline execution
    used the calling process only.
    """

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    waves: int = 1  # dispatch waves (1 for dependency-free batches)

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == CACHED)

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == COMPUTED)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == FAILED)

    @property
    def skipped(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == SKIPPED)

    @property
    def ok(self) -> bool:
        return self.failed == 0 and self.skipped == 0

    @property
    def executors(self) -> Dict[str, int]:
        """How many jobs each executor kind handled (store/pool/inline)."""
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            counts[outcome.executor] = counts.get(outcome.executor, 0) + 1
        return counts

    def describe(self) -> Dict[str, object]:
        return {
            "schema": "spllift-batch-report/v1",
            "jobs": [outcome.describe() for outcome in self.outcomes],
            "cached": self.cached,
            "computed": self.computed,
            "failed": self.failed,
            "skipped": self.skipped,
            "wall_seconds": round(self.wall_seconds, 6),
            "workers": self.workers,
            "waves": self.waves,
            "executors": self.executors,
        }


class BatchScheduler:
    """Schedule a batch of :class:`AnalysisJob` over worker processes."""

    def __init__(
        self,
        store=None,
        max_workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 1,
        use_pool: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.store = store
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.use_pool = use_pool

    # ------------------------------------------------------------------

    def run_plan(self, plan: BatchPlan) -> BatchReport:
        """Run a parsed manifest plan (jobs + dependency DAG)."""
        return self.run(plan.jobs, dependencies=plan.dependencies)

    def run(
        self,
        jobs: Sequence[AnalysisJob],
        dependencies: Optional[Sequence[Sequence[int]]] = None,
    ) -> BatchReport:
        """Run ``jobs``; ``dependencies[i]`` (job indices) must settle
        successfully before job ``i`` dispatches."""
        started = time.perf_counter()
        obs.ensure_run_id()
        if dependencies is not None and len(dependencies) != len(jobs):
            raise ServiceError(
                f"dependency list covers {len(dependencies)} of "
                f"{len(jobs)} jobs"
            )
        deps: List[frozenset] = [
            frozenset(dependencies[index]) if dependencies else frozenset()
            for index in range(len(jobs))
        ]
        outcomes: Dict[int, JobOutcome] = {}
        metrics = obs.metrics()
        reporter = obs.progress()
        peak_workers = 0
        waves = 0

        def tick() -> None:
            """One stderr status line: wave, settled/total, hit ratio."""
            if reporter is None:
                return
            counts: Dict[str, int] = {}
            for outcome in outcomes.values():
                counts[outcome.status] = counts.get(outcome.status, 0) + 1
            fields: Dict[str, object] = {
                "wave": max(1, waves),
                "jobs": f"{len(outcomes)}/{len(jobs)}",
                "cached": counts.get(CACHED, 0),
                "computed": counts.get(COMPUTED, 0),
            }
            if counts.get(FAILED):
                fields["failed"] = counts[FAILED]
            if counts.get(SKIPPED):
                fields["skipped"] = counts[SKIPPED]
            ratio = metrics.hit_ratio("store.get_hits", "store.get_misses")
            if ratio is not None:
                fields["store hits"] = f"{ratio:.0%}"
            reporter.tick("batch", **fields)

        obs.log_event("batch.start", jobs=len(jobs))
        with obs.tracer().span(
            "service/batch", jobs=len(jobs), run_id=obs.run_id()
        ):
            # Warm path first, dependencies notwithstanding: a cached job
            # settles its outgoing edges without running (store-first).
            for index, job in enumerate(jobs):
                record = self.store.get(job.digest) if self.store else None
                if record is not None:
                    outcomes[index] = JobOutcome(
                        job=job, status=CACHED, record=record, executor="store"
                    )
                    obs.log_event(
                        "job.cached", label=job.label, digest=job.digest[:12]
                    )
            tick()

            pending = [
                index for index in range(len(jobs)) if index not in outcomes
            ]
            while pending:
                # Settle skips first (transitively: a skip settles too).
                still_pending: List[int] = []
                for index in pending:
                    settled_bad = [
                        dep
                        for dep in deps[index]
                        if dep in outcomes and not outcomes[dep].ok
                    ]
                    if settled_bad:
                        predecessors = ", ".join(
                            jobs[dep].label for dep in sorted(settled_bad)
                        )
                        outcomes[index] = JobOutcome(
                            job=jobs[index],
                            status=SKIPPED,
                            executor="none",
                            error=f"predecessor failed: {predecessors}",
                            wait_seconds=(
                                time.perf_counter() - started if waves else 0.0
                            ),
                        )
                        obs.log_event(
                            "job.skipped",
                            level="warning",
                            label=jobs[index].label,
                            predecessors=predecessors,
                        )
                    else:
                        still_pending.append(index)
                pending = still_pending
                ready = [
                    index
                    for index in pending
                    if all(dep in outcomes for dep in deps[index])
                ]
                if not pending:
                    break
                if not ready:
                    # Unreachable for plans validated at parse time; a
                    # hand-built dependency list can still deadlock.
                    stuck = ", ".join(jobs[index].label for index in pending)
                    raise ServiceError(
                        f"dependency deadlock: no runnable job among {stuck}"
                    )

                wave_wait = time.perf_counter() - started if waves else 0.0
                waves += 1
                pool = ProcessTaskPool(
                    max_workers=self.max_workers,
                    task_timeout=self.job_timeout,
                    max_retries=self.max_retries,
                    use_pool=self.use_pool,
                )
                tasks = [(execute_job, (jobs[index],)) for index in ready]
                results = pool.run(tasks)
                peak_workers = max(peak_workers, pool.peak_workers)
                for index, task in zip(ready, results):
                    if task.ok:
                        if self.store is not None:
                            self.store.put(task.result)
                        outcomes[index] = JobOutcome(
                            job=jobs[index],
                            status=COMPUTED,
                            attempts=task.attempts,
                            seconds=task.seconds,
                            record=task.result,
                            executor=task.executor,
                            wait_seconds=wave_wait,
                            flight=task.flight,
                        )
                        obs.log_event(
                            "job.computed",
                            label=jobs[index].label,
                            digest=jobs[index].digest[:12],
                            attempts=task.attempts,
                            seconds=round(task.seconds, 6),
                            executor=task.executor,
                        )
                    else:
                        outcomes[index] = JobOutcome(
                            job=jobs[index],
                            status=FAILED,
                            attempts=task.attempts,
                            seconds=task.seconds,
                            error=task.error,
                            executor=task.executor,
                            wait_seconds=wave_wait,
                            flight=task.flight,
                        )
                        obs.log_event(
                            "job.failed",
                            level="error",
                            label=jobs[index].label,
                            digest=jobs[index].digest[:12],
                            attempts=task.attempts,
                            error=task.error,
                        )
                pending = [index for index in pending if index not in outcomes]
                tick()

        ordered = [outcomes[index] for index in range(len(jobs))]
        for outcome in ordered:
            metrics.inc(f"scheduler.jobs_{outcome.status}")
            metrics.inc("scheduler.job_attempts", outcome.attempts)
            metrics.observe("scheduler.job_seconds", outcome.seconds)
        if any(deps):
            for outcome, dep_set in zip(ordered, deps):
                if dep_set:
                    metrics.observe(
                        "scheduler.dag_wait_seconds", outcome.wait_seconds
                    )
        if any(outcome.executor == "pool" for outcome in ordered):
            workers = max(1, peak_workers)
        elif any(outcome.executor == "inline" for outcome in ordered):
            workers = 1
        else:
            workers = 0  # everything came from the store (or was skipped)
        report = BatchReport(
            outcomes=ordered,
            wall_seconds=time.perf_counter() - started,
            workers=workers,
            waves=max(1, waves),
        )
        obs.log_event(
            "batch.done",
            jobs=len(jobs),
            cached=report.cached,
            computed=report.computed,
            failed=report.failed,
            skipped=report.skipped,
            waves=report.waves,
            wall_seconds=round(report.wall_seconds, 6),
        )
        return report


def run_batch(
    jobs: Sequence[AnalysisJob],
    store=None,
    max_workers: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 1,
    use_pool: bool = True,
    dependencies: Optional[Sequence[Sequence[int]]] = None,
) -> BatchReport:
    """One-call convenience wrapper around :class:`BatchScheduler`."""
    scheduler = BatchScheduler(
        store=store,
        max_workers=max_workers,
        job_timeout=job_timeout,
        max_retries=max_retries,
        use_pool=use_pool,
    )
    return scheduler.run(jobs, dependencies=dependencies)
