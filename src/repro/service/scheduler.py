"""Batch scheduler: fan analysis jobs across a pool of worker processes.

The scheduler is deliberately not a ``ProcessPoolExecutor``: a pool
worker killed mid-job (OOM killer, segfault in a native extension, the
fault-injection tests) takes a ``concurrent.futures`` pool down with a
``BrokenProcessPool`` for *every* in-flight job.  Here each job runs in
its own short-lived :class:`multiprocessing.Process` talking back over a
pipe, so one crash costs one attempt of one job:

- **store first** — jobs whose digest is already in the result store are
  served without touching a worker (the warm path);
- **crash → bounded retry** — a worker that dies without reporting is
  re-queued up to ``max_retries`` times; exhausted retries become a
  per-job failure, never a crashed batch;
- **error → terminal** — a worker that *reports* an exception failed
  deterministically; retrying would fail identically, so it does not;
- **timeout → terminal** — a job exceeding ``job_timeout`` seconds is
  terminated and failed (the work is deterministic: it would time out
  again);
- **graceful degradation** — if worker processes cannot be spawned at
  all (restricted environments), the batch falls back to in-process
  execution with identical results.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.service.jobs import AnalysisJob
from repro.service.store import ResultStore
from repro.service.worker import execute_job, worker_main

__all__ = ["JobOutcome", "BatchReport", "BatchScheduler", "run_batch"]

#: Outcome.status values.
CACHED, COMPUTED, FAILED = "cached", "computed", "failed"

_POLL_SECONDS = 0.005


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job: AnalysisJob
    status: str  # cached | computed | failed
    attempts: int = 0
    seconds: float = 0.0
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    executor: str = "store"  # store | pool | inline

    @property
    def ok(self) -> bool:
        return self.status in (CACHED, COMPUTED)

    @property
    def result_digest(self) -> Optional[str]:
        if self.record is None:
            return None
        return self.record.get("result_digest")

    def describe(self) -> Dict[str, object]:
        """Report row (the ``spllift batch --report`` JSON shape)."""
        row: Dict[str, object] = {
            "label": self.job.label,
            "analysis": self.job.analysis,
            "fm_mode": self.job.fm_mode,
            "digest": self.job.digest,
            "status": self.status,
            "attempts": self.attempts,
            "seconds": round(self.seconds, 6),
            "executor": self.executor,
        }
        if self.record is not None:
            row["result_digest"] = self.record.get("result_digest")
            row["facts"] = self.record.get("facts")
        if self.error is not None:
            row["error"] = self.error
        return row


@dataclass
class BatchReport:
    """Outcome of a whole batch, in submission order."""

    outcomes: List[JobOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1

    @property
    def cached(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == CACHED)

    @property
    def computed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == COMPUTED)

    @property
    def failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.status == FAILED)

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def describe(self) -> Dict[str, object]:
        return {
            "schema": "spllift-batch-report/v1",
            "jobs": [outcome.describe() for outcome in self.outcomes],
            "cached": self.cached,
            "computed": self.computed,
            "failed": self.failed,
            "wall_seconds": round(self.wall_seconds, 6),
            "workers": self.workers,
        }


class BatchScheduler:
    """Schedule a batch of :class:`AnalysisJob` over worker processes."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_workers: Optional[int] = None,
        job_timeout: Optional[float] = None,
        max_retries: int = 1,
        use_pool: bool = True,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.store = store
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        self.job_timeout = job_timeout
        self.max_retries = max_retries
        self.use_pool = use_pool

    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[AnalysisJob]) -> BatchReport:
        started = time.perf_counter()
        outcomes: Dict[int, JobOutcome] = {}
        cold: List[Tuple[int, AnalysisJob]] = []

        # Warm path: serve every digest the store already has.
        for index, job in enumerate(jobs):
            record = self.store.get(job.digest) if self.store else None
            if record is not None:
                outcomes[index] = JobOutcome(
                    job=job, status=CACHED, record=record, executor="store"
                )
            else:
                cold.append((index, job))

        if cold:
            if self.use_pool:
                pooled = self._run_pool(cold, outcomes)
            else:
                pooled = False
            if not pooled:
                self._run_inline(
                    [(i, j) for i, j in cold if i not in outcomes], outcomes
                )

        report = BatchReport(
            outcomes=[outcomes[index] for index in range(len(jobs))],
            wall_seconds=time.perf_counter() - started,
            workers=self.max_workers if self.use_pool else 1,
        )
        return report

    # ------------------------------------------------------------------
    # Process-pool execution
    # ------------------------------------------------------------------

    def _run_pool(
        self,
        cold: List[Tuple[int, AnalysisJob]],
        outcomes: Dict[int, JobOutcome],
    ) -> bool:
        """Fan ``cold`` jobs over worker processes; ``False`` means the
        pool could not be used at all (caller degrades to inline)."""
        try:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
        except (ImportError, ValueError):
            return False

        pending: Deque[Tuple[int, AnalysisJob, int]] = deque(
            (index, job, 1) for index, job in cold
        )
        # proc -> (index, job, attempt, parent connection, start time)
        running: Dict[object, Tuple[int, AnalysisJob, int, object, float]] = {}

        def settle(index, job, attempt, status, record, error, seconds):
            if status == COMPUTED and self.store is not None:
                self.store.put(record)
            outcomes[index] = JobOutcome(
                job=job,
                status=status,
                attempts=attempt,
                seconds=seconds,
                record=record,
                error=error,
                executor="pool",
            )

        try:
            while pending or running:
                while pending and len(running) < self.max_workers:
                    index, job, attempt = pending.popleft()
                    parent, child = context.Pipe(duplex=False)
                    process = context.Process(
                        target=worker_main, args=(job, child), daemon=True
                    )
                    try:
                        process.start()
                    except OSError:
                        parent.close()
                        child.close()
                        if running:
                            # Mid-batch resource exhaustion: requeue and
                            # let in-flight workers drain first.
                            pending.appendleft((index, job, attempt))
                            break
                        return False  # cannot start any worker right now
                    child.close()
                    running[process] = (
                        index,
                        job,
                        attempt,
                        parent,
                        time.perf_counter(),
                    )

                finished = []
                for process, (index, job, attempt, conn, t0) in running.items():
                    elapsed = time.perf_counter() - t0
                    if conn.poll(0):
                        status, payload = None, None
                        try:
                            status, payload = conn.recv()
                        except (EOFError, OSError):
                            pass
                        process.join(timeout=5.0)
                        if process.is_alive():
                            process.terminate()
                            process.join()
                        if status == "ok":
                            settle(
                                index, job, attempt, COMPUTED, payload, None, elapsed
                            )
                        elif status == "error":
                            settle(
                                index,
                                job,
                                attempt,
                                FAILED,
                                None,
                                str(payload),
                                elapsed,
                            )
                        else:  # EOF without a message: treat as a crash
                            self._crash(
                                pending, index, job, attempt, process, elapsed,
                                settle,
                            )
                        finished.append(process)
                    elif not process.is_alive():
                        process.join()
                        self._crash(
                            pending, index, job, attempt, process, elapsed, settle
                        )
                        finished.append(process)
                    elif (
                        self.job_timeout is not None
                        and elapsed > self.job_timeout
                    ):
                        process.terminate()
                        process.join()
                        settle(
                            index,
                            job,
                            attempt,
                            FAILED,
                            None,
                            f"timed out after {self.job_timeout:g}s "
                            f"(attempt {attempt})",
                            elapsed,
                        )
                        finished.append(process)
                for process in finished:
                    _, _, _, conn, _ = running.pop(process)
                    conn.close()
                if not finished:
                    time.sleep(_POLL_SECONDS)
        finally:
            for process, (_, _, _, conn, _) in running.items():
                process.terminate()
                process.join()
                conn.close()
        return True

    def _crash(self, pending, index, job, attempt, process, elapsed, settle):
        """A worker died without reporting: retry or fail the job."""
        if attempt <= self.max_retries:
            pending.append((index, job, attempt + 1))
            return
        settle(
            index,
            job,
            attempt,
            FAILED,
            None,
            f"worker crashed (exit code {process.exitcode}) "
            f"after {attempt} attempt(s)",
            elapsed,
        )

    # ------------------------------------------------------------------
    # In-process fallback
    # ------------------------------------------------------------------

    def _run_inline(
        self,
        cold: List[Tuple[int, AnalysisJob]],
        outcomes: Dict[int, JobOutcome],
    ) -> None:
        for index, job in cold:
            t0 = time.perf_counter()
            try:
                record = execute_job(job)
            except Exception as error:  # noqa: BLE001 — per-job isolation
                outcomes[index] = JobOutcome(
                    job=job,
                    status=FAILED,
                    attempts=1,
                    seconds=time.perf_counter() - t0,
                    error=f"{type(error).__name__}: {error}",
                    executor="inline",
                )
                continue
            if self.store is not None:
                self.store.put(record)
            outcomes[index] = JobOutcome(
                job=job,
                status=COMPUTED,
                attempts=1,
                seconds=time.perf_counter() - t0,
                record=record,
                executor="inline",
            )


def run_batch(
    jobs: Sequence[AnalysisJob],
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 1,
    use_pool: bool = True,
) -> BatchReport:
    """One-call convenience wrapper around :class:`BatchScheduler`."""
    scheduler = BatchScheduler(
        store=store,
        max_workers=max_workers,
        job_timeout=job_timeout,
        max_retries=max_retries,
        use_pool=use_pool,
    )
    return scheduler.run(jobs)
