"""The store-backend contract and its shared instrumentation layer.

Every result-store backend exposes the same three-method cache API the
service has always had — :meth:`get`, :meth:`put`, :meth:`contains` —
plus the maintenance surface the CLI needs (:meth:`stats`,
:meth:`clear`, :meth:`prune`).  :class:`StoreBackend` is the structural
protocol; :class:`InstrumentedStore` is the base class the concrete
backends (directory, sqlite, HTTP) actually inherit, which owns the
cross-cutting concerns so each backend only implements the raw
``_get``/``_put``/``_contains`` primitives:

- **metrics** — every operation ticks the aggregate ``store.*`` counters
  (``get_hits``/``get_misses``/``puts``) and feeds both the aggregate
  latency histograms (``store.get_seconds``/``store.put_seconds``) and
  the per-backend ones (``store.<kind>.get_seconds``/…), so a mixed
  fleet's telemetry shows where the time goes per backend;
- **record validation** — ``put`` rejects records without a usable
  ``digest`` before the backend sees them, identically across backends;
- **session accounting** — :meth:`session_stats` is the ``session``
  block of every backend's :meth:`stats` report (this-process traffic:
  all stores share one metrics registry).

A backend is a *cache*: ``get`` must fail open — corrupt, mis-keyed, or
unreachable records are misses, never errors — so degradation is always
toward recomputing, never toward a wrong answer.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Protocol, runtime_checkable

from repro.obs import runtime as obs

__all__ = ["StoreBackend", "InstrumentedStore", "RESULT_SCHEMA"]

RESULT_SCHEMA = "spllift-result/v1"


@runtime_checkable
class StoreBackend(Protocol):
    """What every result-store backend looks like to the service."""

    #: Short backend identifier ("dir", "sqlite", "http") used in metric
    #: names and stats reports.
    kind: str

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored record, or ``None`` on a miss (fail-open)."""

    def put(self, record: Dict[str, object]) -> object:
        """Persist a record under its own ``digest`` key."""

    def contains(self, digest: str) -> bool:
        """Whether a record with this digest is present."""

    def stats(self) -> Dict[str, object]:
        """Record count, total bytes, per-kind breakdown, corrupt count."""

    def clear(self) -> int:
        """Delete every record; returns the number removed."""

    def prune(self, max_bytes: int) -> Dict[str, object]:
        """Evict least-recently-used records until the store fits."""


class InstrumentedStore:
    """Shared ``get``/``put``/``contains`` instrumentation for backends.

    Subclasses set :attr:`kind` and implement ``_get``/``_put``/
    ``_contains`` (plus the maintenance methods); the public methods here
    add timing, hit/miss accounting, and record validation.
    """

    kind: str = "store"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored record, or ``None`` on a miss (including corrupt,
        mis-keyed, or unreachable records — a cache must fail open,
        toward recomputing)."""
        t0 = time.perf_counter()
        record = self._get(digest)
        elapsed = time.perf_counter() - t0
        metrics = obs.metrics()
        metrics.observe("store.get_seconds", elapsed)
        metrics.observe(f"store.{self.kind}.get_seconds", elapsed)
        metrics.inc("store.get_hits" if record is not None else "store.get_misses")
        return record

    def contains(self, digest: str) -> bool:
        return self._contains(digest)

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def put(self, record: Dict[str, object]) -> object:
        """Persist a record under its own ``digest`` key (atomically)."""
        digest = record.get("digest")
        if not isinstance(digest, str) or len(digest) < 8:
            raise ValueError(f"record has no usable digest: {digest!r}")
        t0 = time.perf_counter()
        location = self._put(record)
        elapsed = time.perf_counter() - t0
        metrics = obs.metrics()
        metrics.observe("store.put_seconds", elapsed)
        metrics.observe(f"store.{self.kind}.put_seconds", elapsed)
        metrics.inc("store.puts")
        return location

    # ------------------------------------------------------------------
    # Backend primitives
    # ------------------------------------------------------------------

    def _get(self, digest: str) -> Optional[Dict[str, object]]:
        raise NotImplementedError

    def _put(self, record: Dict[str, object]) -> object:
        raise NotImplementedError

    def _contains(self, digest: str) -> bool:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared reporting
    # ------------------------------------------------------------------

    @staticmethod
    def session_stats() -> Dict[str, object]:
        """This-process store traffic (all stores share one registry):
        what ``spllift cache stats`` and the batch summary report as the
        session hit ratio."""
        metrics = obs.metrics()
        return {
            "gets": metrics.counter_value("store.get_hits")
            + metrics.counter_value("store.get_misses"),
            "hits": metrics.counter_value("store.get_hits"),
            "misses": metrics.counter_value("store.get_misses"),
            "puts": metrics.counter_value("store.puts"),
            "remote_errors": metrics.counter_value("store.remote_errors"),
            "hit_ratio": metrics.hit_ratio("store.get_hits", "store.get_misses"),
        }
