"""Single-file sqlite result-store backend.

One database file holds the whole store — the natural shape for a host
where several schedulers (CI runners, user sessions) share warm results
without an NFS-hostile directory tree of tiny JSON files.  Concurrency
safety comes from sqlite itself:

- **WAL journal mode** — readers never block the writer and vice versa,
  so two ``BatchScheduler`` processes can hammer one file;
- **busy-timeout + bounded retry** — a locked database blocks up to the
  busy timeout inside sqlite, and genuinely contended statements are
  retried a few times on top (``store.sqlite.busy_retries`` counts
  them) before the operation degrades: reads fail open as misses,
  writes are dropped (the record will be recomputed or re-put), and
  only maintenance commands surface the error;
- **connection per process** — connections are not fork-safe, so the
  lazily opened handle is keyed by PID and reopened in children.

Records live in one table, keyed by digest, with the JSON payload stored
verbatim plus the metadata (`schema`, size, last-use clock) that
``stats``/``prune`` need without decoding every payload.  ``get``
touches ``last_used`` so LRU pruning ranks by real use, not by write
time — sqlite gives us an atime the filesystem cannot take away.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, Optional

from repro.obs import runtime as obs
from repro.service.backends.base import InstrumentedStore

__all__ = ["SqliteStore"]

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS records (
    digest    TEXT PRIMARY KEY,
    schema    TEXT NOT NULL,
    payload   TEXT NOT NULL,
    size      INTEGER NOT NULL,
    created   REAL NOT NULL,
    last_used REAL NOT NULL
)
"""

#: Retries on top of sqlite's own busy timeout before degrading.
_BUSY_RETRIES = 5
_BUSY_BACKOFF_SECONDS = 0.05


def _is_busy(error: sqlite3.OperationalError) -> bool:
    message = str(error).lower()
    return "locked" in message or "busy" in message


class SqliteStore(InstrumentedStore):
    """Result store in a single sqlite file (safe for concurrent use)."""

    kind = "sqlite"

    def __init__(self, path, busy_timeout: float = 5.0) -> None:
        self.path = Path(path)
        self.busy_timeout = busy_timeout
        self._connection: Optional[sqlite3.Connection] = None
        self._owner_pid: Optional[int] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """The per-process connection (reopened after fork)."""
        pid = os.getpid()
        if self._connection is None or self._owner_pid != pid:
            if self.path.exists() and self.path.is_dir():
                raise sqlite3.OperationalError(
                    f"sqlite store path is a directory: {self.path}"
                )
            if self.path.parent and not self.path.parent.exists():
                self.path.parent.mkdir(parents=True, exist_ok=True)
            connection = sqlite3.connect(
                str(self.path),
                timeout=self.busy_timeout,
                check_same_thread=False,
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(
                f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}"
            )
            connection.execute(_SCHEMA_SQL)
            connection.commit()
            self._connection = connection
            self._owner_pid = pid
        return self._connection

    def close(self) -> None:
        if self._connection is not None and self._owner_pid == os.getpid():
            self._connection.close()
        self._connection = None
        self._owner_pid = None

    def _execute(self, operation):
        """Run ``operation(connection)`` with bounded busy retry.

        The connection's own busy timeout absorbs most contention; the
        retry loop on top covers the rare statement that still comes
        back ``SQLITE_BUSY`` (e.g. a WAL checkpoint racing a writer).
        """
        last_error: Optional[sqlite3.OperationalError] = None
        for attempt in range(_BUSY_RETRIES + 1):
            try:
                with self._lock:
                    return operation(self._connect())
            except sqlite3.OperationalError as error:
                if not _is_busy(error):
                    raise
                last_error = error
                obs.metrics().inc("store.sqlite.busy_retries")
                time.sleep(_BUSY_BACKOFF_SECONDS * (attempt + 1))
        raise last_error  # exhausted: let the caller's policy decide

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def _get(self, digest: str) -> Optional[Dict[str, object]]:
        if not self.path.is_file():
            return None

        def read(connection: sqlite3.Connection):
            row = connection.execute(
                "SELECT payload FROM records WHERE digest = ?", (digest,)
            ).fetchone()
            if row is not None:
                connection.execute(
                    "UPDATE records SET last_used = ? WHERE digest = ?",
                    (time.time(), digest),
                )
                connection.commit()
            return row

        try:
            row = self._execute(read)
        except sqlite3.Error:
            return None  # fail open: a broken store is a cold store
        if row is None:
            return None
        try:
            record = json.loads(row[0])
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def _contains(self, digest: str) -> bool:
        if not self.path.is_file():
            return False

        def probe(connection: sqlite3.Connection):
            return connection.execute(
                "SELECT 1 FROM records WHERE digest = ?", (digest,)
            ).fetchone()

        try:
            return self._execute(probe) is not None
        except sqlite3.Error:
            return False

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def _put(self, record: Dict[str, object]) -> str:
        digest = str(record["digest"])
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        now = time.time()

        def write(connection: sqlite3.Connection):
            connection.execute(
                "INSERT INTO records "
                "(digest, schema, payload, size, created, last_used) "
                "VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(digest) DO UPDATE SET "
                "schema = excluded.schema, payload = excluded.payload, "
                "size = excluded.size, last_used = excluded.last_used",
                (
                    digest,
                    str(record.get("schema", "unknown")),
                    payload,
                    len(payload),
                    now,
                    now,
                ),
            )
            connection.commit()

        try:
            self._execute(write)
        except sqlite3.Error:
            # Dropping a cache write is safe — the record is recomputable
            # — and better than failing a batch over a contended file.
            obs.metrics().inc("store.sqlite.dropped_puts")
        return digest

    # ------------------------------------------------------------------
    # Maintenance (errors surface here: these are explicit admin ops)
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Same report shape as the directory backend.

        A missing database reports zeros without creating the file (so
        ``spllift cache stats`` on a fresh spec is not a write).
        """
        records = 0
        total_bytes = 0
        corrupt = 0
        kinds: Dict[str, int] = {}
        if self.path.exists():

            def scan(connection: sqlite3.Connection):
                return connection.execute(
                    "SELECT digest, schema, payload, size FROM records"
                ).fetchall()

            for digest, schema, payload, size in self._execute(scan):
                records += 1
                total_bytes += int(size)
                try:
                    decoded = json.loads(payload)
                except json.JSONDecodeError:
                    corrupt += 1
                    continue
                if not isinstance(decoded, dict) or decoded.get("digest") != digest:
                    corrupt += 1
                    continue
                kinds[str(schema)] = kinds.get(str(schema), 0) + 1
        return {
            "backend": self.kind,
            "root": str(self.path),
            "records": records,
            "bytes": total_bytes,
            "kinds": kinds,
            "corrupt": corrupt,
            "session": self.session_stats(),
        }

    def clear(self) -> int:
        if not self.path.exists():
            return 0

        def wipe(connection: sqlite3.Connection):
            (count,) = connection.execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()
            connection.execute("DELETE FROM records")
            connection.commit()
            return int(count)

        return self._execute(wipe)

    def prune(self, max_bytes: int) -> Dict[str, object]:
        """LRU eviction by the ``last_used`` column (updated on every
        ``get``) — the same contract as the directory backend, with a
        use clock no mount option can disable."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if not self.path.exists():
            return {
                "removed": 0,
                "freed_bytes": 0,
                "remaining_bytes": 0,
                "remaining_records": 0,
            }

        def evict(connection: sqlite3.Connection):
            rows = connection.execute(
                "SELECT digest, size FROM records ORDER BY last_used, digest"
            ).fetchall()
            total = sum(int(size) for _, size in rows)
            removed = 0
            freed = 0
            for digest, size in rows:
                if total <= max_bytes:
                    break
                connection.execute(
                    "DELETE FROM records WHERE digest = ?", (digest,)
                )
                total -= int(size)
                freed += int(size)
                removed += 1
            connection.commit()
            return {
                "removed": removed,
                "freed_bytes": freed,
                "remaining_bytes": total,
                "remaining_records": len(rows) - removed,
            }

        return self._execute(evict)
