"""Pluggable result-store backends behind one three-method protocol.

The service's cache API has always been three methods — ``get``/``put``/
``contains`` — and :class:`~repro.service.backends.base.StoreBackend`
makes that contract explicit so the scheduler, the experiments harness,
and the CLI can run against any of three interchangeable backends:

- :class:`~repro.service.store.ResultStore` — the original sharded
  directory of JSON records (``kind="dir"``, the default);
- :class:`~repro.service.backends.sqlite.SqliteStore` — one sqlite file
  in WAL mode, safe for concurrent schedulers on one host
  (``kind="sqlite"``);
- :class:`~repro.service.backends.http.HttpStore` — a client for the
  ``spllift serve`` daemon, sharing warm results across hosts
  (``kind="http"``).

Backends are selected by URL-style spec everywhere a cache dir is
accepted (:func:`open_store`)::

    /path/to/cache          directory store rooted there
    sqlite:///tmp/fleet.db  sqlite store in that file
    http://host:8765        client of a served store
    (none)                  directory store at the default cache dir
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.service.backends.base import InstrumentedStore, StoreBackend
from repro.service.backends.http import HttpStore, RemoteStoreError
from repro.service.backends.sqlite import SqliteStore

__all__ = [
    "StoreBackend",
    "InstrumentedStore",
    "HttpStore",
    "RemoteStoreError",
    "SqliteStore",
    "open_store",
    "BACKEND_KINDS",
]

#: The selectable backend kinds, in preference/documentation order.
BACKEND_KINDS = ("dir", "sqlite", "http")

_SQLITE_PREFIX = "sqlite://"


def open_store(spec: Optional[Union[str, Path]] = None) -> StoreBackend:
    """Open the backend a ``--cache-dir`` spec names (see module doc).

    ``None`` opens the directory store at the default cache dir; a
    plain path opens a directory store there; ``sqlite://<file>`` and
    ``http(s)://host:port`` select the other backends.
    """
    from repro.service.store import ResultStore

    if spec is None:
        return ResultStore()
    if isinstance(spec, Path):
        return ResultStore(spec)
    text = str(spec)
    if text.startswith(_SQLITE_PREFIX):
        return SqliteStore(text[len(_SQLITE_PREFIX):])
    if text.startswith(("http://", "https://")):
        return HttpStore(text)
    return ResultStore(Path(text))
