"""HTTP result-store backend: the client side of ``spllift serve``.

A fleet of schedulers on different hosts shares one warm store by
pointing ``--cache-dir`` at a served URL (``http://host:port``).  The
protocol is deliberately tiny — JSON records over stdlib HTTP verbs
against the daemon in :mod:`repro.service.server`:

====================  =====================================================
``GET /objects/<d>``   the record (200) or a miss (404)
``HEAD /objects/<d>``  presence probe
``PUT /objects/<d>``   store a record (body = JSON, digest must match)
``GET /stats``         the served store's stats report
``POST /clear``        delete everything → ``{"removed": n}``
``POST /prune``        body ``{"max_bytes": n}`` → prune summary
``GET /health``        liveness probe with backend kind
====================  =====================================================

The cache operations (``get``/``put``/``contains``) **fail open**: any
network failure — connection refused, timeout, a mid-flight 5xx — is a
miss (or a dropped write) counted in ``store.remote_errors``, never an
exception.  A fleet whose store daemon dies degrades to cold solves and
keeps producing correct results.  The maintenance operations
(``stats``/``clear``/``prune``) are explicit admin commands, so there a
dead server *is* the answer: they raise, and the CLI renders the
one-line error.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, Optional

from repro.obs import runtime as obs
from repro.service.backends.base import InstrumentedStore

__all__ = ["HttpStore", "RemoteStoreError"]


class RemoteStoreError(OSError):
    """A store-admin operation failed against the served store."""


class HttpStore(InstrumentedStore):
    """Client store talking to a ``spllift serve`` daemon."""

    kind = "http"

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> bytes:
        """One HTTP round-trip; raises ``urllib.error`` family on failure
        (including non-2xx statuses, as ``HTTPError``).

        Trace context propagates with the request: the campaign run id
        and the client's innermost open span ride as
        ``X-SPLLIFT-Run-Id``/``X-SPLLIFT-Parent-Span`` headers, so the
        server's request spans correlate with the client's timeline.
        """
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method=method
        )
        if body is not None:
            request.add_header("Content-Type", "application/json")
        run = obs.run_id()
        if run:
            request.add_header("X-SPLLIFT-Run-Id", run)
        parent = obs.flight().current_span()
        if parent:
            request.add_header("X-SPLLIFT-Parent-Span", parent)
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return response.read()

    def _remote_error(self) -> None:
        obs.metrics().inc("store.remote_errors")

    # ------------------------------------------------------------------
    # Read side (fail open)
    # ------------------------------------------------------------------

    def _get(self, digest: str) -> Optional[Dict[str, object]]:
        try:
            payload = self._request("GET", f"/objects/{digest}")
        except urllib.error.HTTPError as error:
            if error.code != 404:
                self._remote_error()
            return None
        except (urllib.error.URLError, OSError, ValueError):
            self._remote_error()
            return None
        try:
            record = json.loads(payload)
        except json.JSONDecodeError:
            self._remote_error()
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def _contains(self, digest: str) -> bool:
        try:
            self._request("HEAD", f"/objects/{digest}")
        except urllib.error.HTTPError as error:
            if error.code != 404:
                self._remote_error()
            return False
        except (urllib.error.URLError, OSError, ValueError):
            self._remote_error()
            return False
        return True

    # ------------------------------------------------------------------
    # Write side (fail open: a dropped cache write is recomputable)
    # ------------------------------------------------------------------

    def _put(self, record: Dict[str, object]) -> str:
        digest = str(record["digest"])
        body = json.dumps(record, sort_keys=True).encode("utf-8")
        try:
            self._request("PUT", f"/objects/{digest}", body=body)
        except (urllib.error.URLError, OSError, ValueError):
            self._remote_error()
        return digest

    # ------------------------------------------------------------------
    # Maintenance (admin commands: errors surface)
    # ------------------------------------------------------------------

    def _admin(self, method: str, path: str, body: Optional[bytes] = None) -> object:
        try:
            payload = self._request(method, path, body=body)
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise RemoteStoreError(
                f"store server {self.base_url} unreachable: {error}"
            ) from error
        try:
            return json.loads(payload) if payload else {}
        except json.JSONDecodeError as error:
            raise RemoteStoreError(
                f"store server {self.base_url} sent a malformed response"
            ) from error

    def stats(self) -> Dict[str, object]:
        """The *served* store's stats, with this client's session block
        (the server cannot know which process is asking)."""
        report = self._admin("GET", "/stats")
        if not isinstance(report, dict):
            raise RemoteStoreError(
                f"store server {self.base_url} sent a malformed stats report"
            )
        report["backend"] = self.kind
        report["url"] = self.base_url
        report["session"] = self.session_stats()
        return report

    def clear(self) -> int:
        summary = self._admin("POST", "/clear")
        return int(summary.get("removed", 0)) if isinstance(summary, dict) else 0

    def prune(self, max_bytes: int) -> Dict[str, object]:
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        body = json.dumps({"max_bytes": max_bytes}).encode("utf-8")
        summary = self._admin("POST", "/prune", body=body)
        if not isinstance(summary, dict):
            raise RemoteStoreError(
                f"store server {self.base_url} sent a malformed prune summary"
            )
        return summary

    def health(self) -> Dict[str, object]:
        """Liveness probe (raises :class:`RemoteStoreError` when down)."""
        report = self._admin("GET", "/health")
        return report if isinstance(report, dict) else {}
