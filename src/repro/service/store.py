"""Directory-backed content-addressed result store (the default backend).

Layout (one JSON document per record, sharded by digest prefix)::

    <root>/
        objects/
            ab/
                ab3f…e2.json

Records are keyed by the :class:`~repro.service.jobs.AnalysisJob` digest
(or, for cached experiment metrics, an analogous content hash) and carry
their own ``digest`` field; a record whose field disagrees with its file
name, or that fails to decode, is treated as a miss — the store is a
cache, so corruption degrades to a cold solve, never to a wrong answer.
Writes go through a temp file + ``os.replace`` so concurrent writers and
crashes can never leave a half-written record behind.

This is one of three interchangeable backends behind the
:class:`~repro.service.backends.base.StoreBackend` protocol — see
:mod:`repro.service.backends` for the sqlite and HTTP ones and the
URL-style selection (``path`` / ``sqlite://…`` / ``http://…``).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

from repro.service.backends.base import RESULT_SCHEMA, InstrumentedStore

__all__ = ["ResultStore", "default_cache_dir", "RESULT_SCHEMA"]


def default_cache_dir() -> Path:
    """``$SPLLIFT_CACHE_DIR`` or ``~/.cache/spllift``."""
    env = os.environ.get("SPLLIFT_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "spllift"


class ResultStore(InstrumentedStore):
    """On-disk content-addressed store of serialized analysis results."""

    kind = "dir"

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    def path_for(self, digest: str) -> Path:
        """Where a record with this digest lives (whether or not it exists)."""
        return self._objects / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def _contains(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def _get(self, digest: str) -> Optional[Dict[str, object]]:
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """All decodable records (corrupt files are skipped)."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    record = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                if isinstance(record, dict):
                    yield record

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def _put(self, record: Dict[str, object]) -> Path:
        digest = str(record["digest"])
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{digest[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Record count, total bytes, per-kind breakdown, corrupt count.

        A single walk over the store, so the counts agree with each other
        even when records are corrupt: ``records`` counts every file,
        ``kinds`` classifies the decodable ones, and ``corrupt`` counts
        the rest (undecodable JSON, non-dict payloads, vanished files) —
        ``records == sum(kinds.values()) + corrupt`` always holds.

        A missing or empty store reports zeros; a root that exists but is
        not a directory is a genuine configuration error and raises
        ``NotADirectoryError`` (the CLI renders it as a one-line error).
        """
        if self.root.exists() and not self.root.is_dir():
            raise NotADirectoryError(20, "cache root is not a directory", str(self.root))
        records = 0
        total_bytes = 0
        corrupt = 0
        kinds: Dict[str, int] = {}
        if self._objects.is_dir():
            for shard in sorted(self._objects.iterdir()):
                if not shard.is_dir():
                    continue
                for path in sorted(shard.glob("*.json")):
                    records += 1
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        pass
                    try:
                        record = json.loads(path.read_text())
                    except (OSError, json.JSONDecodeError):
                        corrupt += 1
                        continue
                    if not isinstance(record, dict):
                        corrupt += 1
                        continue
                    kind = str(record.get("schema", "unknown"))
                    kinds[kind] = kinds.get(kind, 0) + 1
        return {
            "backend": self.kind,
            "root": str(self.root),
            "records": records,
            "bytes": total_bytes,
            "kinds": kinds,
            "corrupt": corrupt,
            "session": self.session_stats(),
        }

    def prune(self, max_bytes: int) -> Dict[str, object]:
        """Evict least-recently-used records until the store fits.

        Records are ranked by one clock chosen *store-wide*: access time
        when the filesystem demonstrably maintains it (some record shows
        ``atime > mtime``, i.e. a read after the write), else
        modification time for every record.  Mixing the two per file —
        the old ``max(atime, mtime)`` — interleaves "last read" and
        "last written" rankings on ``relatime``/``noatime`` mounts, where
        only *some* files ever get an atime bump, and evicts recently
        read records ahead of long-untouched ones.  Shard directories
        left empty are removed.  Returns a summary dict with
        ``removed``, ``freed_bytes``, ``remaining_bytes`` and
        ``remaining_records``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        infos: List[Tuple[os.stat_result, Path]] = []
        total = 0
        if self._objects.is_dir():
            for shard in self._objects.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.glob("*.json"):
                    try:
                        info = path.stat()
                    except OSError:
                        continue
                    infos.append((info, path))
                    total += info.st_size
        atime_tracked = any(info.st_atime > info.st_mtime for info, _ in infos)
        entries = [
            (info.st_atime if atime_tracked else info.st_mtime, info.st_size, path)
            for info, path in infos
        ]
        entries.sort(key=lambda entry: (entry[0], str(entry[2])))
        removed = 0
        freed = 0
        for last_use, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            try:
                path.parent.rmdir()  # only succeeds once the shard is empty
            except OSError:
                pass
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_bytes": total,
            "remaining_records": len(entries) - removed,
        }

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        if not self._objects.is_dir():
            return removed
        for shard in list(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in list(shard.glob("*.json")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed
