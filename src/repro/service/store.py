"""Content-addressed result store for the analysis service.

Layout (one JSON document per record, sharded by digest prefix)::

    <root>/
        objects/
            ab/
                ab3f…e2.json

Records are keyed by the :class:`~repro.service.jobs.AnalysisJob` digest
(or, for cached experiment metrics, an analogous content hash) and carry
their own ``digest`` field; a record whose field disagrees with its file
name, or that fails to decode, is treated as a miss — the store is a
cache, so corruption degrades to a cold solve, never to a wrong answer.
Writes go through a temp file + ``os.replace`` so concurrent writers and
crashes can never leave a half-written record behind.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.obs import runtime as obs

__all__ = ["ResultStore", "default_cache_dir"]

RESULT_SCHEMA = "spllift-result/v1"


def default_cache_dir() -> Path:
    """``$SPLLIFT_CACHE_DIR`` or ``~/.cache/spllift``."""
    env = os.environ.get("SPLLIFT_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "spllift"


class ResultStore:
    """On-disk content-addressed store of serialized analysis results."""

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    @property
    def _objects(self) -> Path:
        return self.root / "objects"

    def path_for(self, digest: str) -> Path:
        """Where a record with this digest lives (whether or not it exists)."""
        return self._objects / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------

    def contains(self, digest: str) -> bool:
        return self.path_for(digest).is_file()

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """The stored record, or ``None`` on a miss (including corrupt or
        mis-keyed records — a cache must fail open, toward recomputing)."""
        t0 = time.perf_counter()
        record = self._get(digest)
        metrics = obs.metrics()
        metrics.observe("store.get_seconds", time.perf_counter() - t0)
        metrics.inc("store.get_hits" if record is not None else "store.get_misses")
        return record

    def _get(self, digest: str) -> Optional[Dict[str, object]]:
        path = self.path_for(digest)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            record = json.loads(text)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or record.get("digest") != digest:
            return None
        return record

    def iter_records(self) -> Iterator[Dict[str, object]]:
        """All decodable records (corrupt files are skipped)."""
        if not self._objects.is_dir():
            return
        for shard in sorted(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.json")):
                try:
                    record = json.loads(path.read_text())
                except (OSError, json.JSONDecodeError):
                    continue
                if isinstance(record, dict):
                    yield record

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------

    def put(self, record: Dict[str, object]) -> Path:
        """Persist a record under its own ``digest`` key (atomically)."""
        t0 = time.perf_counter()
        path = self._put(record)
        metrics = obs.metrics()
        metrics.observe("store.put_seconds", time.perf_counter() - t0)
        metrics.inc("store.puts")
        return path

    def _put(self, record: Dict[str, object]) -> Path:
        digest = record.get("digest")
        if not isinstance(digest, str) or len(digest) < 8:
            raise ValueError(f"record has no usable digest: {digest!r}")
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(record, sort_keys=True, indent=1)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=f".{digest[:8]}.", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Record count, total bytes, per-kind breakdown, corrupt count.

        A single walk over the store, so the counts agree with each other
        even when records are corrupt: ``records`` counts every file,
        ``kinds`` classifies the decodable ones, and ``corrupt`` counts
        the rest (undecodable JSON, non-dict payloads, vanished files) —
        ``records == sum(kinds.values()) + corrupt`` always holds.
        """
        records = 0
        total_bytes = 0
        corrupt = 0
        kinds: Dict[str, int] = {}
        if self._objects.is_dir():
            for shard in sorted(self._objects.iterdir()):
                if not shard.is_dir():
                    continue
                for path in sorted(shard.glob("*.json")):
                    records += 1
                    try:
                        total_bytes += path.stat().st_size
                    except OSError:
                        pass
                    try:
                        record = json.loads(path.read_text())
                    except (OSError, json.JSONDecodeError):
                        corrupt += 1
                        continue
                    if not isinstance(record, dict):
                        corrupt += 1
                        continue
                    kind = str(record.get("schema", "unknown"))
                    kinds[kind] = kinds.get(kind, 0) + 1
        metrics = obs.metrics()
        return {
            "root": str(self.root),
            "records": records,
            "bytes": total_bytes,
            "kinds": kinds,
            "corrupt": corrupt,
            # This-process traffic (all stores share one registry): what
            # `spllift cache stats` and the batch summary report as the
            # session hit ratio.
            "session": {
                "gets": metrics.counter_value("store.get_hits")
                + metrics.counter_value("store.get_misses"),
                "hits": metrics.counter_value("store.get_hits"),
                "misses": metrics.counter_value("store.get_misses"),
                "puts": metrics.counter_value("store.puts"),
                "hit_ratio": metrics.hit_ratio(
                    "store.get_hits", "store.get_misses"
                ),
            },
        }

    def prune(self, max_bytes: int) -> Dict[str, object]:
        """Evict least-recently-used records until the store fits.

        Records are ranked by access time (falling back to modification
        time on filesystems mounted ``noatime``) and removed oldest-first
        until the total size is at most ``max_bytes``.  Shard directories
        left empty are removed.  Returns a summary dict with ``removed``,
        ``freed_bytes``, ``remaining_bytes`` and ``remaining_records``.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        entries = []  # (last_use, size, path)
        total = 0
        if self._objects.is_dir():
            for shard in self._objects.iterdir():
                if not shard.is_dir():
                    continue
                for path in shard.glob("*.json"):
                    try:
                        info = path.stat()
                    except OSError:
                        continue
                    last_use = max(info.st_atime, info.st_mtime)
                    entries.append((last_use, info.st_size, path))
                    total += info.st_size
        entries.sort(key=lambda entry: (entry[0], str(entry[2])))
        removed = 0
        freed = 0
        for last_use, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            removed += 1
            try:
                path.parent.rmdir()  # only succeeds once the shard is empty
            except OSError:
                pass
        return {
            "removed": removed,
            "freed_bytes": freed,
            "remaining_bytes": total,
            "remaining_records": len(entries) - removed,
        }

    def clear(self) -> int:
        """Delete every record; returns the number removed."""
        removed = 0
        if not self._objects.is_dir():
            return removed
        for shard in list(self._objects.iterdir()):
            if not shard.is_dir():
                continue
            for path in list(shard.glob("*.json")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            try:
                shard.rmdir()
            except OSError:
                pass
        return removed
