"""Counting and enumerating valid configurations of a feature model.

The paper's Table 1 reports, per subject, the number of configurations over
the *reachable* features and how many of those are valid with respect to the
feature model.  A configuration over a feature subset is valid when it can
be extended to a valid full configuration — i.e. the feature-model
constraint with all other features existentially quantified out.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence

from repro.constraints.bddsystem import BddConstraint, BddConstraintSystem
from repro.featuremodel.batory import to_formula
from repro.featuremodel.model import FeatureModel

__all__ = [
    "model_constraint",
    "count_valid_configurations",
    "iter_valid_configurations",
    "project_onto",
]


def model_constraint(
    model: FeatureModel, system: BddConstraintSystem
) -> BddConstraint:
    """The feature-model constraint, with every tree feature declared.

    Declaring all features (even ones the formula happens not to mention)
    keeps model counting over the full feature set meaningful.
    """
    for name in model.feature_names:
        system.var(name)
    return system.from_formula(to_formula(model))


def project_onto(
    constraint: BddConstraint, features: Iterable[str]
) -> BddConstraint:
    """Existentially quantify out every variable not in ``features``."""
    system = constraint.system
    keep = set(features)
    drop = [name for name in system.manager.variables if name not in keep]
    return system.wrap_node(system.manager.exists(constraint.node, drop))


def count_valid_configurations(
    model: FeatureModel,
    system: Optional[BddConstraintSystem] = None,
    over: Optional[Sequence[str]] = None,
) -> int:
    """Number of valid configurations over ``over`` (default: all features)."""
    system = system if system is not None else BddConstraintSystem()
    constraint = model_constraint(model, system)
    if over is None:
        return constraint.model_count(model.feature_names)
    projected = project_onto(constraint, over)
    return projected.model_count(over)


def iter_valid_configurations(
    model: FeatureModel,
    system: Optional[BddConstraintSystem] = None,
    over: Optional[Sequence[str]] = None,
) -> Iterator[FrozenSet[str]]:
    """Yield valid configurations as frozensets of enabled features.

    Deterministic order.  With ``over`` given, configurations are projected
    onto that feature subset (deduplicated).
    """
    system = system if system is not None else BddConstraintSystem()
    constraint = model_constraint(model, system)
    names: Sequence[str] = (
        tuple(over) if over is not None else tuple(model.feature_names)
    )
    if over is not None:
        constraint = project_onto(constraint, names)
    for assignment in constraint.models(names):
        yield frozenset(name for name, value in assignment.items() if value)
