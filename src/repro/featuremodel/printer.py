"""Rendering feature models back to the textual format.

Round-trips with :func:`repro.featuremodel.parser.parse_feature_model`:
``parse(render(model))`` accepts the same configurations as ``model``.
"""

from __future__ import annotations

from typing import List

from repro.featuremodel.model import Feature, FeatureModel

__all__ = ["render_feature_model"]

_INDENT = "    "


def render_feature_model(model: FeatureModel) -> str:
    """The model in the textual format (parseable)."""
    lines: List[str] = []
    if model.name.isidentifier():
        # Names that are not identifiers (e.g. containing "-") cannot be
        # expressed in the format; the parser default applies on re-read.
        lines.append(f"featuremodel {model.name}")
    if model.root is None:
        # The format requires a root; an empty model renders as a comment
        # plus a synthetic never-referenced root would change semantics,
        # so refuse instead.
        raise ValueError("cannot render an empty feature model (no root)")
    _render_feature(model.root, lines, depth=0, prefix="root ")
    for formula in model.cross_tree:
        lines.append(f"constraint {formula};")
    return "\n".join(lines) + "\n"


def _render_feature(
    feature: Feature, lines: List[str], depth: int, prefix: str
) -> None:
    indent = _INDENT * depth
    has_body = bool(feature.children or feature.groups)
    if not has_body:
        lines.append(f"{indent}{prefix}{feature.name}")
        return
    lines.append(f"{indent}{prefix}{feature.name} {{")
    for child, optional in feature.children:
        keyword = "optional " if optional else "mandatory "
        _render_feature(child, lines, depth + 1, keyword)
    for group in feature.groups:
        lines.append(f"{_INDENT * (depth + 1)}{group.kind} {{")
        for member in group.members:
            _render_feature(member, lines, depth + 2, "")
        lines.append(f"{_INDENT * (depth + 1)}}}")
    lines.append(f"{indent}}}")
