"""Feature models: trees of features with groups and cross-tree constraints.

A feature model defines the set of *valid configurations* of a product line
(Section 4 of the paper).  Following the paper (and Batory, SPLC 2005), a
model is a rooted tree where every child relationship is *mandatory* or
*optional*, a parent may additionally own an OR group or an exclusive-OR
(alternative) group of child features, and arbitrary propositional
cross-tree constraints may be attached.

:func:`~repro.featuremodel.batory.to_formula` translates a model into a
single propositional constraint; this module holds the structure plus
direct (formula-free) semantics used as the testing oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.constraints.base import ConfigurationLike, as_assignment
from repro.constraints.formula import Formula

__all__ = ["Feature", "Group", "FeatureModel", "FeatureModelError"]


class FeatureModelError(ValueError):
    """Raised for malformed feature models (duplicate names, empty groups)."""


@dataclass
class Group:
    """An OR (``at least one``) or XOR (``exactly one``) group of features."""

    kind: str  # "or" | "xor"
    members: List["Feature"]

    def __post_init__(self) -> None:
        if self.kind not in ("or", "xor"):
            raise FeatureModelError(f"unknown group kind: {self.kind!r}")
        if not self.members:
            raise FeatureModelError(f"{self.kind} group must not be empty")


@dataclass
class Feature:
    """A node in the feature tree.

    ``children`` are (feature, optional?) pairs; ``groups`` are OR/XOR
    groups whose members are also children of this feature.
    """

    name: str
    children: List[Tuple["Feature", bool]] = field(default_factory=list)
    groups: List[Group] = field(default_factory=list)

    def add_mandatory(self, child: "Feature") -> "Feature":
        """Attach ``child`` as a mandatory sub-feature; returns ``child``."""
        self.children.append((child, False))
        return child

    def add_optional(self, child: "Feature") -> "Feature":
        """Attach ``child`` as an optional sub-feature; returns ``child``."""
        self.children.append((child, True))
        return child

    def add_group(self, kind: str, members: Sequence["Feature"]) -> Group:
        """Attach an OR/XOR group of new sub-features; returns the group."""
        group = Group(kind, list(members))
        self.groups.append(group)
        return group

    def iter_subtree(self) -> Iterator["Feature"]:
        """This feature and all descendants, pre-order."""
        yield self
        for child, _ in self.children:
            yield from child.iter_subtree()
        for group in self.groups:
            for member in group.members:
                yield from member.iter_subtree()


@dataclass
class FeatureModel:
    """A feature tree plus cross-tree constraints.

    The empty model (``root=None``) means "no feature model": every
    configuration is valid.  That is what SPLLIFT's ``fm_mode='ignore'``
    uses internally.
    """

    root: Optional[Feature] = None
    cross_tree: List[Formula] = field(default_factory=list)
    name: str = "feature-model"

    def __post_init__(self) -> None:
        seen: Dict[str, Feature] = {}
        for feature in self.iter_features():
            if feature.name in seen:
                raise FeatureModelError(f"duplicate feature name: {feature.name!r}")
            seen[feature.name] = feature
        self._by_name = seen

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_features(self) -> Iterator[Feature]:
        """All features in the tree, pre-order from the root."""
        if self.root is not None:
            yield from self.root.iter_subtree()

    @property
    def feature_names(self) -> Tuple[str, ...]:
        """All tree feature names (pre-order).  Cross-tree-only variables
        are not features and are not listed."""
        return tuple(feature.name for feature in self.iter_features())

    def feature(self, name: str) -> Feature:
        """Look up a feature by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise FeatureModelError(f"unknown feature: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # ------------------------------------------------------------------
    # Direct semantics (testing oracle; the analysis uses the Batory
    # translation + BDDs instead)
    # ------------------------------------------------------------------

    def is_valid(self, configuration: ConfigurationLike) -> bool:
        """Decide validity directly from the tree structure.

        This deliberately avoids the Batory translation so it can serve as
        an independent oracle for it in the test suite.
        """
        assignment = as_assignment(configuration, self.feature_names)
        if self.root is None:
            ok = True
        else:
            ok = assignment.get(self.root.name, False) and self._subtree_valid(
                self.root, assignment
            )
        return ok and all(
            formula.evaluate(assignment) for formula in self.cross_tree
        )

    def _subtree_valid(self, feature: Feature, assignment: Dict[str, bool]) -> bool:
        enabled = assignment[feature.name]
        for child, optional in feature.children:
            child_enabled = assignment[child.name]
            if child_enabled and not enabled:
                return False  # child without its parent
            if not optional and enabled and not child_enabled:
                return False  # missing mandatory child
            if not self._subtree_valid(child, assignment):
                return False
        for group in feature.groups:
            member_states = [assignment[member.name] for member in group.members]
            if any(member_states) and not enabled:
                return False
            if enabled:
                count = sum(member_states)
                if group.kind == "or" and count < 1:
                    return False
                if group.kind == "xor" and count != 1:
                    return False
            for member in group.members:
                if not self._subtree_valid(member, assignment):
                    return False
        return True
