"""Feature models: structure, Batory translation, valid configurations."""

from repro.featuremodel.batory import to_constraint, to_formula
from repro.featuremodel.configurations import (
    count_valid_configurations,
    iter_valid_configurations,
    model_constraint,
    project_onto,
)
from repro.featuremodel.model import Feature, FeatureModel, FeatureModelError, Group
from repro.featuremodel.parser import parse_feature_model
from repro.featuremodel.printer import render_feature_model

__all__ = [
    "Feature",
    "Group",
    "FeatureModel",
    "FeatureModelError",
    "to_formula",
    "to_constraint",
    "model_constraint",
    "project_onto",
    "count_valid_configurations",
    "iter_valid_configurations",
    "parse_feature_model",
    "render_feature_model",
]
