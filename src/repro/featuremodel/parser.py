"""Textual format for feature models.

Grammar::

    model      := ('featuremodel' IDENT)? 'root' feature constraint*
    feature    := IDENT body?
    body       := '{' item* '}'
    item       := ('mandatory' | 'optional') feature
                | ('or' | 'xor') '{' feature+ '}'
    constraint := 'constraint' <formula> ';'

Example
-------
>>> model = parse_feature_model('''
... featuremodel Demo
... root App {
...     mandatory Core
...     optional Logging
...     xor { Small Large }
... }
... constraint Logging -> Large;
... ''')
>>> model.feature_names
('App', 'Core', 'Logging', 'Small', 'Large')
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.constraints.formula import parse_formula
from repro.featuremodel.model import Feature, FeatureModel, FeatureModelError

__all__ = ["parse_feature_model"]

_TOKEN = re.compile(r"\s*(?:(//[^\n]*)|([A-Za-z_][A-Za-z_0-9]*)|([{};])|(\S))")

_KEYWORDS = ("featuremodel", "root", "mandatory", "optional", "or", "xor", "constraint")


def _tokenize(text: str) -> List[Tuple[str, int]]:
    tokens: List[Tuple[str, int]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            break
        pos = match.end()
        comment, word, punct, other = match.groups()
        if comment is not None:
            continue
        if word is not None:
            tokens.append((word, match.start(2)))
        elif punct is not None:
            tokens.append((punct, match.start(3)))
        elif other is not None:
            tokens.append((other, match.start(4)))
    return tokens


class _ModelParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._pos = 0

    def _peek(self) -> str:
        return self._tokens[self._pos][0] if self._pos < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        if not token:
            raise FeatureModelError("unexpected end of feature model text")
        self._pos += 1
        return token

    def _expect(self, expected: str) -> None:
        token = self._next()
        if token != expected:
            raise FeatureModelError(f"expected {expected!r} but found {token!r}")

    def parse(self) -> FeatureModel:
        name = "feature-model"
        if self._peek() == "featuremodel":
            self._next()
            name = self._next()
        self._expect("root")
        root = self._feature()
        cross_tree = []
        while self._peek() == "constraint":
            self._next()
            cross_tree.append(self._constraint_formula())
        if self._pos != len(self._tokens):
            leftover = [token for token, _ in self._tokens[self._pos :]]
            raise FeatureModelError(f"trailing tokens in feature model: {leftover}")
        return FeatureModel(root=root, cross_tree=cross_tree, name=name)

    def _feature(self) -> Feature:
        name = self._next()
        if name in _KEYWORDS or not (name[0].isalpha() or name[0] == "_"):
            raise FeatureModelError(f"expected feature name, found {name!r}")
        feature = Feature(name)
        if self._peek() == "{":
            self._next()
            while self._peek() != "}":
                self._item(feature)
            self._next()
        return feature

    def _item(self, parent: Feature) -> None:
        keyword = self._next()
        if keyword == "mandatory":
            parent.add_mandatory(self._feature())
        elif keyword == "optional":
            parent.add_optional(self._feature())
        elif keyword in ("or", "xor"):
            self._expect("{")
            members = []
            while self._peek() != "}":
                members.append(self._feature())
            self._next()
            parent.add_group(keyword, members)
        else:
            raise FeatureModelError(
                f"expected mandatory/optional/or/xor, found {keyword!r}"
            )

    def _constraint_formula(self):
        # Slice the raw source text up to the ';' terminator and hand it to
        # the formula parser (which has its own multi-char operators).
        start = self._pos
        while self._peek() and self._peek() != ";":
            self._next()
        if self._peek() != ";":
            raise FeatureModelError("constraint must be terminated with ';'")
        begin = self._tokens[start][1]
        end = self._tokens[self._pos][1]
        self._next()  # consume ';'
        try:
            return parse_formula(self._text[begin:end])
        except ValueError as error:
            raise FeatureModelError(f"bad cross-tree constraint: {error}") from error


def parse_feature_model(text: str) -> FeatureModel:
    """Parse a feature model from its textual form."""
    return _ModelParser(text).parse()
