"""Batory's translation of feature models to propositional formulas.

Section 4.1 of the paper, following Batory (SPLC 2005): the model becomes a
conjunction of

(i)   a bi-implication between every mandatory feature and its parent,
(ii)  an implication from every optional feature to its parent,
(iii) a bi-implication from the parent of every OR group to the disjunction
      of the group's members, and
(iv)  a bi-implication from the parent of every exclusive-OR group to the
      conjunction of the pairwise mutual exclusion of its members and the
      disjunction of its members,

plus the root feature itself (a product always contains the root), an
implication from every group member to its parent, and all cross-tree
constraints.
"""

from __future__ import annotations

from typing import List

from repro.constraints.base import Constraint, ConstraintSystem
from repro.constraints.formula import And, Formula, Iff, Implies, Not, Or, TrueConst, Var
from repro.featuremodel.model import Feature, FeatureModel

__all__ = ["to_formula", "to_constraint"]


def to_formula(model: FeatureModel) -> Formula:
    """The single propositional constraint equivalent to ``model``."""
    conjuncts: List[Formula] = []
    if model.root is not None:
        conjuncts.append(Var(model.root.name))
        _translate_feature(model.root, conjuncts)
    conjuncts.extend(model.cross_tree)
    if not conjuncts:
        return TrueConst()
    return And(tuple(conjuncts))


def _translate_feature(feature: Feature, conjuncts: List[Formula]) -> None:
    parent = Var(feature.name)
    for child, optional in feature.children:
        child_var = Var(child.name)
        if optional:
            conjuncts.append(Implies(child_var, parent))  # (ii)
        else:
            conjuncts.append(Iff(child_var, parent))  # (i)
        _translate_feature(child, conjuncts)
    for group in feature.groups:
        members = [Var(member.name) for member in group.members]
        disjunction: Formula = members[0] if len(members) == 1 else Or(tuple(members))
        for member_var in members:
            conjuncts.append(Implies(member_var, parent))
        if group.kind == "or":
            conjuncts.append(Iff(parent, disjunction))  # (iii)
        else:  # xor
            mutex: List[Formula] = [
                Not(And((members[i], members[j])))
                for i in range(len(members))
                for j in range(i + 1, len(members))
            ]
            exactly_one: Formula = (
                And(tuple(mutex + [disjunction])) if mutex else disjunction
            )
            conjuncts.append(Iff(parent, exactly_one))  # (iv)
        for member in group.members:
            _translate_feature(member, conjuncts)


def to_constraint(model: FeatureModel, system: ConstraintSystem) -> Constraint:
    """Compile the model's formula into a constraint of ``system``."""
    return system.from_formula(to_formula(model))
