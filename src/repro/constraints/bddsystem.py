"""BDD-backed feature constraints (the representation the paper ships).

Constraints are thin wrappers around node ids of a shared
:class:`~repro.bdd.BDDManager`.  Because ROBDDs are canonical, equality,
``is_false`` and ``is_true`` are constant-time — exactly the properties
Section 5 of the paper identifies as crucial for SPLLIFT's performance.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Sequence

from repro.bdd import BDDManager
from repro.bdd.manager import FALSE as _FALSE, TRUE as _TRUE
from repro.constraints.base import (
    ConfigurationLike,
    Constraint,
    ConstraintSystem,
    as_assignment,
)
from repro.constraints.formula import Formula, parse_formula

__all__ = ["BddConstraint", "BddConstraintSystem", "REORDER_POLICIES"]

#: Valid dynamic-reordering policies.
REORDER_POLICIES = ("off", "sift")


class BddConstraint(Constraint):
    """A feature constraint represented as a node in a shared BDD."""

    __slots__ = ("_system", "_node")

    def __init__(self, system: "BddConstraintSystem", node: int) -> None:
        self._system = system
        self._node = node

    @property
    def system(self) -> "BddConstraintSystem":
        return self._system

    @property
    def node(self) -> int:
        """The underlying BDD node id (exposed for diagnostics)."""
        return self._node

    @property
    def is_false(self) -> bool:
        # Canonical representation: constant-time, no manager round-trip.
        return self._node == _FALSE

    @property
    def is_true(self) -> bool:
        return self._node == _TRUE

    def entails(self, other: Constraint) -> bool:
        other_node = self._system.coerce(other)._node
        return self._system.manager.entails(self._node, other_node)

    def satisfied_by(self, configuration: ConfigurationLike) -> bool:
        manager = self._system.manager
        assignment = as_assignment(configuration, manager.support(self._node))
        return manager.evaluate(self._node, assignment)

    def models(
        self, over: Optional[Sequence[str]] = None
    ) -> Iterator[Dict[str, bool]]:
        """All satisfying assignments over ``over`` (default: all features)."""
        return self._system.manager.iter_models(self._node, over)

    def model_count(self, over: Optional[Iterable[str]] = None) -> int:
        """Number of satisfying assignments over ``over``."""
        return self._system.manager.satcount(self._node, over)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BddConstraint)
            and other._system is self._system
            and other._node == self._node
        )

    def __hash__(self) -> int:
        return hash((id(self._system), self._node))

    def __repr__(self) -> str:
        return f"BddConstraint({self._system.manager.to_expr_string(self._node)})"

    def __str__(self) -> str:
        return self._system.manager.to_expr_string(self._node)


class BddConstraintSystem(ConstraintSystem):
    """Constraint system backed by a single shared :class:`BDDManager`."""

    name = "bdd"

    #: Valid dynamic-reordering policies.
    REORDER_POLICIES = REORDER_POLICIES

    def __init__(
        self,
        manager: Optional[BDDManager] = None,
        reorder: str = "off",
        reorder_threshold: int = 4096,
    ) -> None:
        self.manager = manager if manager is not None else BDDManager()
        self._true = BddConstraint(self, self.manager.true)
        self._false = BddConstraint(self, self.manager.false)
        # Intern constraints by node so equal functions share a handle.  The
        # interned handles are also the root set handed to the reorderer:
        # every node a client can hold is (reachable from) one of these.
        self._interned: Dict[int, BddConstraint] = {
            self.manager.true: self._true,
            self.manager.false: self._false,
        }
        self._sift_first: tuple = ()
        self._next_reorder_at = 0
        self.configure_reorder(reorder, threshold=reorder_threshold)

    def configure_reorder(
        self,
        policy: str,
        first: Sequence[str] = (),
        threshold: Optional[int] = None,
    ) -> None:
        """Set the dynamic variable-reordering policy.

        ``policy`` is ``"off"`` (default — Tables 1–3 stay bit-identical) or
        ``"sift"`` (Rudell sifting once the manager's live node count crosses
        the threshold, doubling the threshold after each reorder).  ``first``
        names variables to sift before all others — the lifted solver seeds
        it with the feature-model variables, which dominate the constraint
        BDDs.
        """
        if policy not in self.REORDER_POLICIES:
            raise ValueError(
                f"unknown reorder policy {policy!r}; "
                f"expected one of {self.REORDER_POLICIES}"
            )
        self.reorder_policy = policy
        if first:
            self._sift_first = tuple(first)
        if threshold is not None:
            self._reorder_threshold = threshold
        if policy == "sift" and (threshold is not None or self._next_reorder_at == 0):
            self._next_reorder_at = self._reorder_threshold

    def _maybe_reorder(self, fresh_node: int) -> None:
        if self.manager.live_nodes() < self._next_reorder_at:
            return
        roots = list(self._interned)
        roots.append(fresh_node)
        self.manager.sift(roots, first=self._sift_first)
        # Double the trigger so steady growth reorders O(log n) times, and
        # never re-trigger below twice the post-sift live size.
        self._next_reorder_at = max(
            self._next_reorder_at * 2, self.manager.live_nodes() * 2
        )

    def _wrap(self, node: int) -> BddConstraint:
        constraint = self._interned.get(node)
        if constraint is None:
            if self.reorder_policy != "off":
                self._maybe_reorder(node)
            constraint = BddConstraint(self, node)
            self._interned[node] = constraint
        return constraint

    def solver_stats(self) -> Dict[str, object]:
        """BDD substrate counters for :attr:`IDESolver.stats` and benches.

        The two ``*_load_factor``/``*_occupancy`` entries are floats in
        ``[0, 1]`` (table-health gauges); the rest are plain counters.
        """
        stats = self.manager.cache_stats()
        return {
            "bdd_nodes": stats["unique_entries"],
            "bdd_apply_calls": stats["apply_calls"],
            "bdd_apply_cache_hits": stats["apply_cache_hits"],
            "bdd_apply_cache_misses": stats["apply_cache_misses"],
            "unique_load_factor": stats["unique_load_factor"],
            "apply_cache_occupancy": stats["apply_cache_occupancy"],
            "reorders": stats["reorders"],
            "reorder_swaps": stats["reorder_swaps"],
        }

    def wrap_node(self, node: int) -> BddConstraint:
        """Wrap a raw node of this system's manager into a constraint."""
        return self._wrap(node)

    def coerce(self, constraint: Constraint) -> BddConstraint:
        """Type-check a foreign handle into this system."""
        if not isinstance(constraint, BddConstraint) or constraint.system is not self:
            raise TypeError(
                f"constraint {constraint!r} does not belong to this system"
            )
        return constraint

    @property
    def true(self) -> BddConstraint:
        return self._true

    @property
    def false(self) -> BddConstraint:
        return self._false

    def var(self, feature: str) -> BddConstraint:
        return self._wrap(self.manager.var(feature))

    def from_formula(self, formula: Formula) -> BddConstraint:
        return self._wrap(formula.to_bdd(self.manager))

    def parse(self, text: str) -> BddConstraint:
        """Parse a textual formula directly into a constraint."""
        return self.from_formula(parse_formula(text))

    def and_(self, left: Constraint, right: Constraint) -> BddConstraint:
        # Trivial cases short-circuit before touching the BDD engine: the
        # lifted hot path conjoins with `true` (unannotated statements) and
        # with itself (re-walked paths) constantly.  ``coerce`` is inlined
        # as a same-system check — two calls per conjunction add up over
        # tens of thousands of edge compositions.
        a = left if type(left) is BddConstraint and left._system is self else self.coerce(left)
        b = right if type(right) is BddConstraint and right._system is self else self.coerce(right)
        node_a, node_b = a._node, b._node
        if node_a == node_b or node_b == _TRUE:
            return a
        if node_a == _TRUE:
            return b
        if node_a == _FALSE or node_b == _FALSE:
            return self._false
        return self._wrap(self.manager.and_(node_a, node_b))

    def or_(self, left: Constraint, right: Constraint) -> BddConstraint:
        a = left if type(left) is BddConstraint and left._system is self else self.coerce(left)
        b = right if type(right) is BddConstraint and right._system is self else self.coerce(right)
        node_a, node_b = a._node, b._node
        if node_a == node_b or node_b == _FALSE:
            return a
        if node_a == _FALSE:
            return b
        if node_a == _TRUE or node_b == _TRUE:
            return self._true
        return self._wrap(self.manager.or_(node_a, node_b))

    def not_(self, operand: Constraint) -> BddConstraint:
        return self._wrap(self.manager.not_(self.coerce(operand).node))

    def or_all(self, constraints: Iterable[Constraint]) -> BddConstraint:
        # n-ary disjunction for merge points with high in-degree: operands
        # are deduplicated by node id and reduced as a balanced tree, so a
        # k-way join costs at most k-1 manager applies on *distinct*
        # operands (often far fewer) and wraps a single handle — instead
        # of k pairwise `or_` round-trips through coerce/wrap.
        nodes = []
        seen = set()
        for constraint in constraints:
            node = self.coerce(constraint)._node
            if node == _TRUE:
                return self._true
            if node == _FALSE or node in seen:
                continue
            seen.add(node)
            nodes.append(node)
        if not nodes:
            return self._false
        manager_or = self.manager.or_
        while len(nodes) > 1:
            reduced = []
            for i in range(0, len(nodes) - 1, 2):
                node = manager_or(nodes[i], nodes[i + 1])
                if node == _TRUE:
                    return self._true
                reduced.append(node)
            if len(nodes) % 2:
                reduced.append(nodes[-1])
            nodes = reduced
        return self._wrap(nodes[0])
