"""Abstract interface for feature-constraint systems.

SPLLIFT's IDE value domain ``V`` is the lattice of Boolean feature
constraints, joined by disjunction.  The paper's implementation represents
constraints as reduced BDDs (Section 5); an earlier prototype used
disjunctive normal form and was abandoned for performance reasons.  Both
representations are provided here behind one interface so the trade-off can
be benchmarked (see ``benchmarks/test_ablation_constraints.py``).

A :class:`ConstraintSystem` is a factory and algebra; :class:`Constraint`
objects are immutable handles tied to their system.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Mapping, Union

from repro.constraints.formula import Formula

__all__ = ["Constraint", "ConstraintSystem", "ConfigurationLike", "as_assignment"]

# A product configuration: either the set of *enabled* features (everything
# else disabled) or an explicit feature -> bool mapping.
ConfigurationLike = Union[AbstractSet[str], Mapping[str, bool]]


def as_assignment(
    configuration: ConfigurationLike, features: Iterable[str]
) -> "dict[str, bool]":
    """Normalize a configuration to a total assignment over ``features``."""
    if isinstance(configuration, Mapping):
        return {name: bool(configuration.get(name, False)) for name in features}
    return {name: name in configuration for name in features}


class Constraint:
    """An immutable Boolean constraint over feature variables.

    Handles support the operators ``&`` (conjunction), ``|`` (disjunction)
    and ``~`` (negation) and compare equal iff they denote the same function
    *as far as their representation can tell* (exact for BDDs, syntactic on
    a normal form for DNF).
    """

    __slots__ = ()

    @property
    def system(self) -> "ConstraintSystem":
        raise NotImplementedError

    def __and__(self, other: "Constraint") -> "Constraint":
        return self.system.and_(self, other)

    def __or__(self, other: "Constraint") -> "Constraint":
        return self.system.or_(self, other)

    def __invert__(self) -> "Constraint":
        return self.system.not_(self)

    @property
    def is_false(self) -> bool:
        """True if the constraint is unsatisfiable.

        This is the check that drives SPLLIFT's early termination: an edge
        whose constraint is ``false`` can never contribute a data flow.
        """
        raise NotImplementedError

    @property
    def is_true(self) -> bool:
        """True if the constraint is a tautology."""
        raise NotImplementedError

    def entails(self, other: "Constraint") -> bool:
        """True if every model of ``self`` satisfies ``other``."""
        raise NotImplementedError

    def satisfied_by(self, configuration: ConfigurationLike) -> bool:
        """Evaluate under a concrete product configuration."""
        raise NotImplementedError


class ConstraintSystem:
    """Factory and algebra for one family of :class:`Constraint` handles."""

    #: Short name used in benchmark output ("bdd" or "dnf").
    name = "abstract"

    @property
    def true(self) -> Constraint:
        """The tautology (the initial value at the program start node)."""
        raise NotImplementedError

    @property
    def false(self) -> Constraint:
        """The unsatisfiable constraint (initial value everywhere else)."""
        raise NotImplementedError

    def var(self, feature: str) -> Constraint:
        """The constraint "feature ``feature`` is enabled"."""
        raise NotImplementedError

    def from_formula(self, formula: Formula) -> Constraint:
        """Compile a propositional formula into a constraint."""
        raise NotImplementedError

    def and_(self, left: Constraint, right: Constraint) -> Constraint:
        raise NotImplementedError

    def or_(self, left: Constraint, right: Constraint) -> Constraint:
        raise NotImplementedError

    def not_(self, operand: Constraint) -> Constraint:
        raise NotImplementedError

    def and_all(self, constraints: Iterable[Constraint]) -> Constraint:
        result = self.true
        for constraint in constraints:
            result = self.and_(result, constraint)
            if result.is_false:
                break
        return result

    def or_all(self, constraints: Iterable[Constraint]) -> Constraint:
        result = self.false
        for constraint in constraints:
            result = self.or_(result, constraint)
            if result.is_true:
                break
        return result
