"""Feature constraints: the IDE value domain of SPLLIFT.

Two interchangeable representations:

- :class:`BddConstraintSystem` — reduced BDDs, the representation the paper
  ships (constant-time equality and ``is_false``).
- :class:`DnfConstraintSystem` — disjunctive normal form, the representation
  the paper abandoned; kept for the ablation benchmark.

Plus :mod:`repro.constraints.formula`, the propositional-formula AST and
parser shared by ``#ifdef`` conditions and feature models.
"""

from repro.constraints.base import (
    ConfigurationLike,
    Constraint,
    ConstraintSystem,
    as_assignment,
)
from repro.constraints.bddsystem import BddConstraint, BddConstraintSystem
from repro.constraints.dnf import DnfConstraint, DnfConstraintSystem
from repro.constraints.formula import (
    And,
    FalseConst,
    Formula,
    FormulaParseError,
    Iff,
    Implies,
    Not,
    Or,
    TrueConst,
    Var,
    parse_formula,
)

__all__ = [
    "Constraint",
    "ConstraintSystem",
    "ConfigurationLike",
    "as_assignment",
    "BddConstraint",
    "BddConstraintSystem",
    "DnfConstraint",
    "DnfConstraintSystem",
    "Formula",
    "FormulaParseError",
    "TrueConst",
    "FalseConst",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "parse_formula",
]
