"""Propositional formulas over feature names.

`#ifdef` conditions in MiniJava product lines and cross-tree constraints in
feature models are written as small propositional formulas.  This module
provides their AST, a parser, an evaluator, and compilation to BDDs.

Grammar (precedence low to high)::

    formula  := iff
    iff      := implies ( '<->' implies )*
    implies  := or ( '->' or )*            (right associative)
    or       := and ( ('||' | '|') and )*
    and      := unary ( ('&&' | '&') unary )*
    unary    := '!' unary | atom
    atom     := 'true' | 'false' | IDENT | '(' formula ')'

Example
-------
>>> f = parse_formula("F && !G")
>>> f.evaluate({"F": True, "G": False})
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

from repro.bdd import BDDManager

__all__ = [
    "Formula",
    "TrueConst",
    "FalseConst",
    "Var",
    "Not",
    "And",
    "Or",
    "Implies",
    "Iff",
    "FormulaParseError",
    "parse_formula",
]


class FormulaParseError(ValueError):
    """Raised when a formula string cannot be parsed."""


@dataclass(frozen=True)
class Formula:
    """Base class for propositional formulas (immutable, hashable)."""

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        """Truth value under a total assignment of the formula's variables."""
        raise NotImplementedError

    def to_bdd(self, manager: BDDManager) -> int:
        """Compile to a BDD node in ``manager``."""
        raise NotImplementedError

    def variables(self) -> FrozenSet[str]:
        """All variable names mentioned in the formula."""
        raise NotImplementedError

    # Convenience connective constructors.
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueConst(Formula):
    """The constant ``true``."""

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return True

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.true

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseConst(Formula):
    """The constant ``false``."""

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return False

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.false

    def variables(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Var(Formula):
    """A feature variable."""

    name: str

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        try:
            return assignment[self.name]
        except KeyError:
            raise KeyError(
                f"assignment does not cover feature {self.name!r}"
            ) from None

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.var(self.name)

    def variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Not(Formula):
    """Negation."""

    operand: Formula

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return not self.operand.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.not_(self.operand.to_bdd(manager))

    def variables(self) -> FrozenSet[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"!{_atomic(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    """N-ary conjunction."""

    operands: Tuple[Formula, ...]

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return all(op.evaluate(assignment) for op in self.operands)

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.and_all(op.to_bdd(manager) for op in self.operands)

    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for op in self.operands:
            result |= op.variables()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "true"
        return " && ".join(_atomic(op, within="and") for op in self.operands)


@dataclass(frozen=True)
class Or(Formula):
    """N-ary disjunction."""

    operands: Tuple[Formula, ...]

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return any(op.evaluate(assignment) for op in self.operands)

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.or_all(op.to_bdd(manager) for op in self.operands)

    def variables(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for op in self.operands:
            result |= op.variables()
        return result

    def __str__(self) -> str:
        if not self.operands:
            return "false"
        return " || ".join(_atomic(op, within="or") for op in self.operands)


@dataclass(frozen=True)
class Implies(Formula):
    """Implication ``premise -> conclusion``."""

    premise: Formula
    conclusion: Formula

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return (not self.premise.evaluate(assignment)) or self.conclusion.evaluate(
            assignment
        )

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.implies(
            self.premise.to_bdd(manager), self.conclusion.to_bdd(manager)
        )

    def variables(self) -> FrozenSet[str]:
        return self.premise.variables() | self.conclusion.variables()

    def __str__(self) -> str:
        return f"{_atomic(self.premise)} -> {_atomic(self.conclusion)}"


@dataclass(frozen=True)
class Iff(Formula):
    """Bi-implication ``left <-> right``."""

    left: Formula
    right: Formula

    def evaluate(self, assignment: Dict[str, bool]) -> bool:
        return self.left.evaluate(assignment) == self.right.evaluate(assignment)

    def to_bdd(self, manager: BDDManager) -> int:
        return manager.iff(self.left.to_bdd(manager), self.right.to_bdd(manager))

    def variables(self) -> FrozenSet[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"{_atomic(self.left)} <-> {_atomic(self.right)}"


def _atomic(formula: Formula, within: str = "") -> str:
    """Render ``formula`` with parentheses unless it is atomic enough."""
    if isinstance(formula, (Var, TrueConst, FalseConst, Not)):
        return str(formula)
    if within == "or" and isinstance(formula, And):
        # && binds tighter than ||, no parens needed.
        return str(formula)
    return f"({formula})"


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

_PUNCT = ("<->", "->", "&&", "||", "!", "&", "|", "(", ")")


def _tokenize(text: str) -> "list[str]":
    tokens = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        for punct in _PUNCT:
            if text.startswith(punct, i):
                tokens.append(punct)
                i += len(punct)
                break
        else:
            if ch.isalpha() or ch == "_":
                j = i
                while j < n and (text[j].isalnum() or text[j] == "_"):
                    j += 1
                tokens.append(text[i:j])
                i = j
            else:
                raise FormulaParseError(
                    f"unexpected character {ch!r} at offset {i} in {text!r}"
                )
    return tokens


class _FormulaParser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._pos = 0

    def parse(self) -> Formula:
        result = self._iff()
        if self._pos != len(self._tokens):
            raise FormulaParseError(
                f"trailing tokens {self._tokens[self._pos:]} in {self._text!r}"
            )
        return result

    def _peek(self) -> str:
        return self._tokens[self._pos] if self._pos < len(self._tokens) else ""

    def _next(self) -> str:
        token = self._peek()
        if not token:
            raise FormulaParseError(f"unexpected end of formula in {self._text!r}")
        self._pos += 1
        return token

    def _iff(self) -> Formula:
        left = self._implies()
        while self._peek() == "<->":
            self._next()
            left = Iff(left, self._implies())
        return left

    def _implies(self) -> Formula:
        left = self._or()
        if self._peek() == "->":
            self._next()
            return Implies(left, self._implies())
        return left

    def _or(self) -> Formula:
        operands = [self._and()]
        while self._peek() in ("||", "|"):
            self._next()
            operands.append(self._and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _and(self) -> Formula:
        operands = [self._unary()]
        while self._peek() in ("&&", "&"):
            self._next()
            operands.append(self._unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _unary(self) -> Formula:
        if self._peek() == "!":
            self._next()
            return Not(self._unary())
        return self._atom()

    def _atom(self) -> Formula:
        token = self._next()
        if token == "(":
            inner = self._iff()
            closing = self._next()
            if closing != ")":
                raise FormulaParseError(
                    f"expected ')' but found {closing!r} in {self._text!r}"
                )
            return inner
        if token == "true":
            return TrueConst()
        if token == "false":
            return FalseConst()
        if token[0].isalpha() or token[0] == "_":
            return Var(token)
        raise FormulaParseError(f"unexpected token {token!r} in {self._text!r}")


def parse_formula(text: str) -> Formula:
    """Parse a propositional formula from its textual form."""
    return _FormulaParser(text).parse()
