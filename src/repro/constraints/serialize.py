"""Canonical cross-process serialization of feature constraints.

Parallel solving ships phase-I results between processes, and the values
of a lifted solve are :class:`~repro.constraints.bddsystem.BddConstraint`
handles — integer node ids into a manager that only exists in the worker.
This module defines the wire format that makes those handles portable:

- **BDD systems** are encoded *structurally* as a shared node table.
  Every distinct internal node reachable from any root becomes one
  ``[variable index, low ref, high ref]`` row, children before parents,
  with refs ``0`` = false, ``1`` = true, and ``i >= 2`` = table row
  ``i - 2``.  Decoding replays the table bottom-up through
  ``manager.ite``, so the decoded constraint is *canonical in the
  receiving manager's variable order* — sender and receiver need not
  agree on an order, only on variable names.  A batch of roots shares
  one table, so constraints repeated across many (statement, fact)
  entries are encoded and decoded once.

- **Other systems** (the DNF reference backend) fall back to the
  textual formula form, which their ``parse`` already round-trips.

The format is JSON-compatible (plain lists/strings/ints) and therefore
also pickles cheaply across ``multiprocessing`` pipes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.constraints.base import Constraint, ConstraintSystem

__all__ = [
    "CONSTRAINT_CODEC_SCHEMA",
    "ConstraintCodecError",
    "encode_constraints",
    "decode_constraints",
]

CONSTRAINT_CODEC_SCHEMA = "spllift-constraints/v1"

#: Terminal refs of the node-table encoding.
_REF_FALSE = 0
_REF_TRUE = 1
_REF_BASE = 2  # first table row


class ConstraintCodecError(ValueError):
    """A constraint document that cannot be encoded or decoded."""


def encode_constraints(
    system: ConstraintSystem, constraints: Sequence[Constraint]
) -> Dict[str, object]:
    """Encode a batch of constraints of ``system`` as a plain document."""
    if _is_bdd_system(system):
        return _encode_bdd(system, constraints)
    return {
        "schema": CONSTRAINT_CODEC_SCHEMA,
        "codec": "formula",
        "roots": [str(constraint) for constraint in constraints],
    }


def decode_constraints(
    system: ConstraintSystem,
    document: Dict[str, object],
    *,
    require_declared_vars: bool = False,
) -> List[Constraint]:
    """Decode a document produced by :func:`encode_constraints` into
    constraints of ``system``, in root order.

    With ``require_declared_vars`` a BDD document naming a variable the
    receiving manager has not declared raises :class:`ConstraintCodecError`
    instead of silently declaring it.  Callers for whom the variable set
    is part of the contract (e.g. the incremental summary cache, whose
    digests depend on a deterministic variable order) use this to turn a
    stale or foreign document into a controlled miss rather than
    poisoning the manager's order.
    """
    if document.get("schema") != CONSTRAINT_CODEC_SCHEMA:
        raise ConstraintCodecError(
            f"not a constraint document: schema={document.get('schema')!r}"
        )
    codec = document.get("codec")
    if codec == "bdd-nodes":
        return _decode_bdd(system, document, require_declared_vars)
    if codec == "formula":
        return [system.parse(text) for text in document["roots"]]
    raise ConstraintCodecError(f"unknown constraint codec {codec!r}")


# ----------------------------------------------------------------------
# BDD node-table codec
# ----------------------------------------------------------------------


def _is_bdd_system(system: ConstraintSystem) -> bool:
    return hasattr(system, "manager") and hasattr(system, "wrap_node")


def _encode_bdd(system, constraints: Sequence[Constraint]) -> Dict[str, object]:
    manager = system.manager
    var_index: Dict[str, int] = {}
    variables: List[str] = []
    node_ref: Dict[int, int] = {
        manager.false: _REF_FALSE,
        manager.true: _REF_TRUE,
    }
    nodes: List[List[int]] = []
    roots: List[int] = []
    for constraint in constraints:
        root = system.coerce(constraint).node
        if root not in node_ref:
            _encode_reachable(
                manager, root, node_ref, nodes, var_index, variables
            )
        roots.append(node_ref[root])
    return {
        "schema": CONSTRAINT_CODEC_SCHEMA,
        "codec": "bdd-nodes",
        "vars": variables,
        "nodes": nodes,
        "roots": roots,
    }


def _encode_reachable(
    manager, root, node_ref, nodes, var_index, variables
) -> None:
    """Append every not-yet-encoded node under ``root`` to the table,
    children before parents (iterative post-order)."""
    stack = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node in node_ref:
            continue
        low, high = manager.low(node), manager.high(node)
        if not expanded:
            stack.append((node, True))
            # Low pushed last so it is expanded (and numbered) first —
            # a deterministic order for any given input batch.
            stack.append((high, False))
            stack.append((low, False))
            continue
        name = manager.top_var(node)
        index = var_index.get(name)
        if index is None:
            index = var_index[name] = len(variables)
            variables.append(name)
        nodes.append([index, node_ref[low], node_ref[high]])
        node_ref[node] = len(nodes) - 1 + _REF_BASE


def _decode_bdd(
    system, document: Dict[str, object], require_declared_vars: bool = False
) -> List[Constraint]:
    manager = system.manager
    names = document.get("vars")
    if not isinstance(names, list):
        raise ConstraintCodecError(f"malformed variable table {names!r}")
    if require_declared_vars:
        has_var = getattr(manager, "has_var", None)
        if has_var is None:
            declared = set(manager.variables)
            has_var = declared.__contains__
        unknown = [str(name) for name in names if not has_var(str(name))]
        if unknown:
            raise ConstraintCodecError(
                f"document names undeclared variables {unknown!r}"
            )
    variables = [manager.var(str(name)) for name in names]
    resolved: List[int] = [manager.false, manager.true]
    for row in document["nodes"]:
        try:
            var_idx, low_ref, high_ref = row
            var_node = variables[var_idx]
            low, high = resolved[low_ref], resolved[high_ref]
        except (ValueError, TypeError, IndexError) as error:
            raise ConstraintCodecError(f"malformed node row {row!r}") from error
        # ite(v, high, low) re-canonicalizes under *this* manager's
        # variable order; children always precede parents in the table.
        resolved.append(manager.ite(var_node, high, low))
    try:
        return [system.wrap_node(resolved[ref]) for ref in document["roots"]]
    except IndexError as error:
        raise ConstraintCodecError("root ref out of range") from error
