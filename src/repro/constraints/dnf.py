"""DNF-backed feature constraints — the representation the paper abandoned.

Section 5: "After some initial experiments with a hand-written data
structure representing constraints in Disjunctive Normal Form, we switched
to an implementation based on Binary Decision Diagrams."  This module keeps
that first design alive so the trade-off can be measured
(``benchmarks/test_ablation_constraints.py``).

A constraint is a set of *cubes*; a cube is a set of literals
``(feature, positive)``.  Normalization removes contradictory cubes and
subsumed cubes, which makes ``is_false`` exact (a normalized DNF is
unsatisfiable iff it has no cubes).  Equality is syntactic on the normal
form — sound for fixed-point detection (joins are monotone on the normal
form) but weaker than the BDD system's canonical equality, which is one of
the reasons the representation loses.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Tuple

from repro.constraints.base import (
    ConfigurationLike,
    Constraint,
    ConstraintSystem,
    as_assignment,
)
from repro.constraints.formula import (
    And,
    FalseConst,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueConst,
    Var,
    parse_formula,
)

__all__ = ["DnfConstraint", "DnfConstraintSystem"]

Literal = Tuple[str, bool]
Cube = FrozenSet[Literal]
CubeSet = FrozenSet[Cube]

_EMPTY_CUBE: Cube = frozenset()


def _is_contradictory(cube: Cube) -> bool:
    names = {}
    for name, positive in cube:
        if names.setdefault(name, positive) != positive:
            return True
    return False


def _normalize(cubes: Iterable[Cube]) -> CubeSet:
    """Drop contradictory cubes, then drop subsumed cubes.

    Cube ``c`` subsumes ``d`` when ``c ⊆ d`` (``c`` is more general).
    """
    consistent = [cube for cube in set(cubes) if not _is_contradictory(cube)]
    consistent.sort(key=len)
    kept: "list[Cube]" = []
    for cube in consistent:
        if not any(existing <= cube for existing in kept):
            kept.append(cube)
    return frozenset(kept)


class DnfConstraint(Constraint):
    """A feature constraint as a normalized set of cubes."""

    __slots__ = ("_system", "_cubes")

    def __init__(self, system: "DnfConstraintSystem", cubes: CubeSet) -> None:
        self._system = system
        self._cubes = cubes

    @property
    def system(self) -> "DnfConstraintSystem":
        return self._system

    @property
    def cubes(self) -> CubeSet:
        return self._cubes

    @property
    def is_false(self) -> bool:
        return not self._cubes

    @property
    def is_true(self) -> bool:
        # The empty cube is the common fast path; fall back to the exact
        # (and expensive — this is DNF) complement check.
        if _EMPTY_CUBE in self._cubes:
            return True
        return self._system.not_(self).is_false

    def entails(self, other: Constraint) -> bool:
        coerced = self._system.coerce(other)
        return self._system.and_(self, self._system.not_(coerced)).is_false

    def satisfied_by(self, configuration: ConfigurationLike) -> bool:
        features = {name for cube in self._cubes for name, _ in cube}
        assignment = as_assignment(configuration, features)
        return any(
            all(assignment[name] == positive for name, positive in cube)
            for cube in self._cubes
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DnfConstraint)
            and other._system is self._system
            and other._cubes == self._cubes
        )

    def __hash__(self) -> int:
        return hash((id(self._system), self._cubes))

    def __str__(self) -> str:
        if not self._cubes:
            return "false"
        if _EMPTY_CUBE in self._cubes:
            return "true"
        rendered = []
        for cube in sorted(self._cubes, key=sorted):
            literals = sorted(cube)
            rendered.append(
                " & ".join(name if pos else f"!{name}" for name, pos in literals)
            )
        return " | ".join(rendered)

    def __repr__(self) -> str:
        return f"DnfConstraint({self})"


class DnfConstraintSystem(ConstraintSystem):
    """Constraint system over normalized DNF cube sets."""

    name = "dnf"

    def __init__(self) -> None:
        self._true = DnfConstraint(self, frozenset((_EMPTY_CUBE,)))
        self._false = DnfConstraint(self, frozenset())

    def coerce(self, constraint: Constraint) -> DnfConstraint:
        if not isinstance(constraint, DnfConstraint) or constraint.system is not self:
            raise TypeError(
                f"constraint {constraint!r} does not belong to this system"
            )
        return constraint

    @property
    def true(self) -> DnfConstraint:
        return self._true

    @property
    def false(self) -> DnfConstraint:
        return self._false

    def var(self, feature: str) -> DnfConstraint:
        return DnfConstraint(self, frozenset((frozenset(((feature, True),)),)))

    def _literal(self, feature: str, positive: bool) -> DnfConstraint:
        return DnfConstraint(self, frozenset((frozenset(((feature, positive),)),)))

    def from_formula(self, formula: Formula) -> DnfConstraint:
        if isinstance(formula, TrueConst):
            return self._true
        if isinstance(formula, FalseConst):
            return self._false
        if isinstance(formula, Var):
            return self.var(formula.name)
        if isinstance(formula, Not):
            return self.not_(self.from_formula(formula.operand))
        if isinstance(formula, And):
            result = self._true
            for operand in formula.operands:
                result = self.and_(result, self.from_formula(operand))
            return result
        if isinstance(formula, Or):
            result = self._false
            for operand in formula.operands:
                result = self.or_(result, self.from_formula(operand))
            return result
        if isinstance(formula, Implies):
            return self.or_(
                self.not_(self.from_formula(formula.premise)),
                self.from_formula(formula.conclusion),
            )
        if isinstance(formula, Iff):
            left = self.from_formula(formula.left)
            right = self.from_formula(formula.right)
            return self.or_(
                self.and_(left, right), self.and_(self.not_(left), self.not_(right))
            )
        raise TypeError(f"unsupported formula node: {formula!r}")

    def parse(self, text: str) -> DnfConstraint:
        """Parse a textual formula directly into a constraint."""
        return self.from_formula(parse_formula(text))

    def and_(self, left: Constraint, right: Constraint) -> DnfConstraint:
        left_cubes = self.coerce(left).cubes
        right_cubes = self.coerce(right).cubes
        product = (
            cube_a | cube_b for cube_a in left_cubes for cube_b in right_cubes
        )
        return DnfConstraint(self, _normalize(product))

    def or_(self, left: Constraint, right: Constraint) -> DnfConstraint:
        return DnfConstraint(
            self, _normalize(self.coerce(left).cubes | self.coerce(right).cubes)
        )

    def or_all(self, constraints: Iterable[Constraint]) -> DnfConstraint:
        # n-ary disjunction: union all cube sets first, then normalize
        # once.  Subsumption keeps exactly the minimal consistent cubes of
        # the union, so the result equals the pairwise fold — but the
        # quadratic normalization pass runs once instead of k times.
        cubes: set = set()
        for constraint in constraints:
            cubes |= self.coerce(constraint).cubes
        return DnfConstraint(self, _normalize(cubes))

    def not_(self, operand: Constraint) -> DnfConstraint:
        # De Morgan: the complement of a DNF is the conjunction of the
        # complements of its cubes; each cube complement is a clause, i.e. a
        # small DNF of negated literals.  This blows up combinatorially —
        # which is part of why the paper abandoned the representation.
        result = self._true
        for cube in self.coerce(operand).cubes:
            clause = DnfConstraint(
                self,
                _normalize(
                    frozenset(((name, not positive),)) for name, positive in cube
                ),
            )
            result = self.and_(result, clause)
            if result.is_false:
                break
        return result
