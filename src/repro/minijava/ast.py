"""Abstract syntax trees for MiniJava product lines.

Every statement and class member carries an optional *feature annotation*
(a propositional :class:`~repro.constraints.formula.Formula` over feature
names).  ``annotation is None`` means the node is part of every product.
Nested ``#ifdef`` regions stay nested in the AST; consumers conjoin
annotations along the path from the root (see the preprocessor and the IR
lowering).

The AST deliberately mirrors what CIDE enforces: annotations wrap whole
statements or whole members — never sub-expressions — which is the
discipline SPLLIFT's flow-function lifting relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.constraints.formula import Formula

__all__ = [
    "Type",
    "INT",
    "BOOLEAN",
    "VOID",
    "Program",
    "ClassDecl",
    "FieldDecl",
    "MethodDecl",
    "Param",
    "Block",
    "Stmt",
    "VarDecl",
    "AssignStmt",
    "IfStmt",
    "WhileStmt",
    "ReturnStmt",
    "ExprStmt",
    "PrintStmt",
    "Expr",
    "IntLit",
    "BoolLit",
    "NullLit",
    "VarRef",
    "ThisRef",
    "FieldAccess",
    "Binary",
    "Unary",
    "Call",
    "New",
]


@dataclass(frozen=True)
class Type:
    """A MiniJava type: ``int``, ``boolean``, ``void`` or a class name."""

    name: str

    @property
    def is_primitive(self) -> bool:
        return self.name in ("int", "boolean", "void")

    @property
    def is_class(self) -> bool:
        return not self.is_primitive

    def __str__(self) -> str:
        return self.name


INT = Type("int")
BOOLEAN = Type("boolean")
VOID = Type("void")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class NullLit(Expr):
    pass


@dataclass
class VarRef(Expr):
    name: str


@dataclass
class ThisRef(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    receiver: Expr
    field: str


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Unary(Expr):
    op: str
    operand: Expr


@dataclass
class Call(Expr):
    """A method call.  ``receiver is None`` means an implicit ``this`` call
    (or an intrinsic such as ``secret()``)."""

    receiver: Optional[Expr]
    method: str
    args: List[Expr]


@dataclass
class New(Expr):
    class_name: str


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements.  ``annotation`` is the feature condition
    written directly on this node (``None`` = unconditional)."""

    annotation: Optional[Formula] = field(default=None, kw_only=True)
    line: int = field(default=0, kw_only=True)


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class VarDecl(Stmt):
    type: Type
    name: str
    init: Optional[Expr] = None


@dataclass
class AssignStmt(Stmt):
    target: Expr  # VarRef or FieldAccess
    value: Expr


@dataclass
class IfStmt(Stmt):
    cond: Expr
    then_block: Block
    else_block: Optional[Block] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr
    body: Block


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class PrintStmt(Stmt):
    """``print(e);`` — the observable sink used by the taint analysis."""

    value: Expr


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------


@dataclass
class Param:
    type: Type
    name: str


@dataclass
class FieldDecl:
    type: Type
    name: str
    annotation: Optional[Formula] = None
    line: int = 0


@dataclass
class MethodDecl:
    return_type: Type
    name: str
    params: List[Param]
    body: Block
    annotation: Optional[Formula] = None
    line: int = 0

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(param.name for param in self.params)


@dataclass
class ClassDecl:
    name: str
    superclass: Optional[str]
    fields: List[FieldDecl]
    methods: List[MethodDecl]
    line: int = 0


@dataclass
class Program:
    """A whole MiniJava product line (one compilation unit)."""

    classes: List[ClassDecl]

    def class_named(self, name: str) -> ClassDecl:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(f"no class named {name!r}")

    def has_class(self, name: str) -> bool:
        return any(cls.name == name for cls in self.classes)
