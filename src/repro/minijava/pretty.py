"""Pretty printer for MiniJava ASTs.

Produces parseable source.  Feature annotations are re-emitted as one
``#ifdef`` region per annotated node, which is semantically equivalent to
the original grouping.  ``with_annotations=False`` prints the bare program
(used for derived products and for counting product KLOC).
"""

from __future__ import annotations

from typing import List, Optional

from repro.constraints.formula import Formula
from repro.minijava.ast import (
    AssignStmt,
    Binary,
    Block,
    BoolLit,
    Call,
    ClassDecl,
    Expr,
    ExprStmt,
    FieldAccess,
    FieldDecl,
    IfStmt,
    IntLit,
    MethodDecl,
    New,
    NullLit,
    PrintStmt,
    Program,
    ReturnStmt,
    Stmt,
    ThisRef,
    Unary,
    VarDecl,
    VarRef,
    WhileStmt,
)

__all__ = ["pretty_print", "print_expr"]

_INDENT = "    "


def pretty_print(program: Program, with_annotations: bool = True) -> str:
    """Render a program back to MiniJava source text."""
    printer = _Printer(with_annotations)
    for cls in program.classes:
        printer.class_decl(cls)
    return "".join(printer.parts)


def print_expr(expr: Expr) -> str:
    """Render a single expression."""
    return _expr(expr)


class _Printer:
    def __init__(self, with_annotations: bool) -> None:
        self.with_annotations = with_annotations
        self.parts: List[str] = []
        self._depth = 0

    def _line(self, text: str) -> None:
        self.parts.append(f"{_INDENT * self._depth}{text}\n")

    def _open_annotation(self, annotation: Optional[Formula]) -> bool:
        if annotation is None or not self.with_annotations:
            return False
        self._line(f"#ifdef ({annotation})")
        return True

    def _close_annotation(self, opened: bool) -> None:
        if opened:
            self._line("#endif")

    def class_decl(self, cls: ClassDecl) -> None:
        heritage = f" extends {cls.superclass}" if cls.superclass else ""
        self._line(f"class {cls.name}{heritage} {{")
        self._depth += 1
        for fld in cls.fields:
            self.field_decl(fld)
        for method in cls.methods:
            self.method_decl(method)
        self._depth -= 1
        self._line("}")

    def field_decl(self, fld: FieldDecl) -> None:
        opened = self._open_annotation(fld.annotation)
        self._line(f"{fld.type} {fld.name};")
        self._close_annotation(opened)

    def method_decl(self, method: MethodDecl) -> None:
        opened = self._open_annotation(method.annotation)
        params = ", ".join(f"{p.type} {p.name}" for p in method.params)
        self._line(f"{method.return_type} {method.name}({params}) {{")
        self._depth += 1
        for stmt in method.body.statements:
            self.statement(stmt)
        self._depth -= 1
        self._line("}")
        self._close_annotation(opened)

    def statement(self, stmt: Stmt) -> None:
        opened = self._open_annotation(stmt.annotation)
        if isinstance(stmt, Block):
            self._line("{")
            self._depth += 1
            for inner in stmt.statements:
                self.statement(inner)
            self._depth -= 1
            self._line("}")
        elif isinstance(stmt, VarDecl):
            init = f" = {_expr(stmt.init)}" if stmt.init is not None else ""
            self._line(f"{stmt.type} {stmt.name}{init};")
        elif isinstance(stmt, AssignStmt):
            self._line(f"{_expr(stmt.target)} = {_expr(stmt.value)};")
        elif isinstance(stmt, IfStmt):
            self._line(f"if ({_expr(stmt.cond)}) {{")
            self._depth += 1
            for inner in stmt.then_block.statements:
                self.statement(inner)
            self._depth -= 1
            if stmt.else_block is not None:
                self._line("} else {")
                self._depth += 1
                for inner in stmt.else_block.statements:
                    self.statement(inner)
                self._depth -= 1
            self._line("}")
        elif isinstance(stmt, WhileStmt):
            self._line(f"while ({_expr(stmt.cond)}) {{")
            self._depth += 1
            for inner in stmt.body.statements:
                self.statement(inner)
            self._depth -= 1
            self._line("}")
        elif isinstance(stmt, ReturnStmt):
            if stmt.value is None:
                self._line("return;")
            else:
                self._line(f"return {_expr(stmt.value)};")
        elif isinstance(stmt, PrintStmt):
            self._line(f"print({_expr(stmt.value)});")
        elif isinstance(stmt, ExprStmt):
            self._line(f"{_expr(stmt.expr)};")
        else:
            raise TypeError(f"unknown statement node: {stmt!r}")
        self._close_annotation(opened)


_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


def _expr(expr: Expr, parent_precedence: int = 0) -> str:
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, NullLit):
        return "null"
    if isinstance(expr, VarRef):
        return expr.name
    if isinstance(expr, ThisRef):
        return "this"
    if isinstance(expr, FieldAccess):
        return f"{_expr(expr.receiver, 99)}.{expr.field}"
    if isinstance(expr, New):
        return f"new {expr.class_name}()"
    if isinstance(expr, Call):
        args = ", ".join(_expr(arg) for arg in expr.args)
        if expr.receiver is None:
            return f"{expr.method}({args})"
        return f"{_expr(expr.receiver, 99)}.{expr.method}({args})"
    if isinstance(expr, Unary):
        return f"{expr.op}{_expr(expr.operand, 98)}"
    if isinstance(expr, Binary):
        precedence = _PRECEDENCE[expr.op]
        rendered = (
            f"{_expr(expr.left, precedence)} {expr.op} "
            f"{_expr(expr.right, precedence + 1)}"
        )
        if precedence < parent_precedence:
            return f"({rendered})"
        return rendered
    raise TypeError(f"unknown expression node: {expr!r}")
