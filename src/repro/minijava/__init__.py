"""MiniJava: the Java-like frontend of the reproduction.

A small language with classes, single inheritance, virtual calls and
CIDE-style ``#ifdef`` feature annotations — the substitute for the paper's
Soot/CIDE toolchain (see DESIGN.md).
"""

from repro.minijava import ast
from repro.minijava.lexer import LexError, Token, tokenize
from repro.minijava.parser import ParseError, parse_program
from repro.minijava.preprocessor import annotated_features, derive_product
from repro.minijava.pretty import pretty_print, print_expr

__all__ = [
    "ast",
    "tokenize",
    "Token",
    "LexError",
    "parse_program",
    "ParseError",
    "pretty_print",
    "print_expr",
    "derive_product",
    "annotated_features",
]
