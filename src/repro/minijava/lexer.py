"""Lexer for MiniJava product lines.

MiniJava is the Java-like input language of this reproduction: classes with
single inheritance, fields, methods, virtual calls, and CIDE-style
*disciplined* feature annotations written as ``#ifdef (condition) ... #else
... #endif`` around whole statements or whole class members.

The lexer produces a flat token stream; preprocessor directives become
ordinary tokens (``#ifdef`` etc.) that the parser interprets, because —
unlike the C preprocessor — SPLLIFT analyzes the *unpreprocessed* product
line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    (
        "class",
        "extends",
        "int",
        "boolean",
        "void",
        "if",
        "else",
        "while",
        "return",
        "new",
        "this",
        "null",
        "true",
        "false",
    )
)

# Multi-character operators first so maximal munch works.
_OPERATORS = (
    "#ifdef",
    "#else",
    "#endif",
    "<->",
    "->",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "(",
    ")",
    "{",
    "}",
    ",",
    ";",
    ".",
)


class LexError(ValueError):
    """Raised on characters the lexer cannot interpret."""


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"ident"``, ``"int"``, ``"keyword"``, ``"op"``,
    ``"eof"``; ``text`` is the lexeme; ``line``/``column`` are 1-based.
    """

    kind: str
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``, appending a single ``eof`` token."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch.isspace():
            pos += 1
            continue
        if source.startswith("//", pos):
            end = source.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if source.startswith("/*", pos):
            end = source.find("*/", pos + 2)
            if end == -1:
                raise LexError(f"unterminated block comment at line {line}")
            line += source.count("\n", pos, end)
            pos = end + 2
            continue
        column = pos - line_start + 1
        if ch.isalpha() or ch == "_":
            end = pos + 1
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[pos:end]
            kind = "keyword" if text in KEYWORDS else "ident"
            yield Token(kind, text, line, column)
            pos = end
            continue
        if ch.isdigit():
            end = pos + 1
            while end < n and source[end].isdigit():
                end += 1
            yield Token("int", source[pos:end], line, column)
            pos = end
            continue
        for op in _OPERATORS:
            if source.startswith(op, pos):
                yield Token("op", op, line, column)
                pos += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}, column {column}")
    yield Token("eof", "", line, 1)
