"""Recursive-descent parser for MiniJava product lines.

Grammar sketch (statements; declarations are analogous)::

    program   := classdecl*
    classdecl := 'class' IDENT ('extends' IDENT)? '{' member* '}'
    member    := '#ifdef' '(' cond ')' member* ('#else' member*)? '#endif'
               | type IDENT ';'                                  (field)
               | type IDENT '(' params? ')' block                (method)
    stmt      := '#ifdef' '(' cond ')' stmt* ('#else' stmt*)? '#endif'
               | type IDENT ('=' expr)? ';'
               | lvalue '=' expr ';'
               | 'if' '(' expr ')' block ('else' block)?
               | 'while' '(' expr ')' block
               | 'return' expr? ';'
               | 'print' '(' expr ')' ';'
               | call ';'
               | block

``#ifdef`` regions may wrap one or more whole statements or members
(CIDE-style disciplined annotations) and may nest; nested conditions
conjoin.  Conditions use the propositional syntax of
:mod:`repro.constraints.formula` (``&&  ||  !  ->  <->  true  false``).

Expression precedence (low to high)::

    ||  <  &&  <  == !=  <  < <= > >=  <  + -  <  * / %  <  unary ! -
"""

from __future__ import annotations

from typing import List, Optional

from repro.constraints.formula import (
    And,
    FalseConst,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    TrueConst,
    Var,
)
from repro.minijava.ast import (
    AssignStmt,
    Binary,
    Block,
    BoolLit,
    Call,
    ClassDecl,
    ExprStmt,
    Expr,
    FieldAccess,
    FieldDecl,
    IfStmt,
    IntLit,
    MethodDecl,
    New,
    NullLit,
    Param,
    PrintStmt,
    Program,
    ReturnStmt,
    Stmt,
    ThisRef,
    Type,
    Unary,
    VarDecl,
    VarRef,
    WhileStmt,
)
from repro.minijava.lexer import Token, tokenize

__all__ = ["ParseError", "parse_program"]


class ParseError(ValueError):
    """Raised when the source does not conform to the MiniJava grammar."""


def parse_program(source: str) -> Program:
    """Parse a MiniJava product line from source text."""
    return _Parser(source).parse_program()


class _Parser:
    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "eof":
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(f"line {token.line}: {message} (found {token.text!r})")

    def _expect(self, text: str) -> Token:
        token = self._next()
        if token.text != text:
            raise ParseError(
                f"line {token.line}: expected {text!r} but found {token.text!r}"
            )
        return token

    def _expect_ident(self) -> Token:
        token = self._next()
        if token.kind != "ident":
            raise ParseError(
                f"line {token.line}: expected identifier but found {token.text!r}"
            )
        return token

    def _at(self, text: str) -> bool:
        return self._peek().text == text and self._peek().kind != "eof"

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def parse_program(self) -> Program:
        classes: List[ClassDecl] = []
        while self._peek().kind != "eof":
            classes.append(self._class_decl())
        return Program(classes)

    def _class_decl(self) -> ClassDecl:
        line = self._expect("class").line
        name = self._expect_ident().text
        superclass = None
        if self._at("extends"):
            self._next()
            superclass = self._expect_ident().text
        self._expect("{")
        fields: List[FieldDecl] = []
        methods: List[MethodDecl] = []
        self._members(fields, methods, annotation=None)
        self._expect("}")
        return ClassDecl(name, superclass, fields, methods, line=line)

    def _members(
        self,
        fields: List[FieldDecl],
        methods: List[MethodDecl],
        annotation: Optional[Formula],
        terminators: tuple = ("}",),
    ) -> None:
        while not self._at_any(terminators):
            if self._at("#ifdef"):
                self._ifdef_members(fields, methods, annotation)
            else:
                self._member(fields, methods, annotation)

    def _at_any(self, texts: tuple) -> bool:
        token = self._peek()
        return token.kind == "eof" or token.text in texts

    def _ifdef_members(
        self,
        fields: List[FieldDecl],
        methods: List[MethodDecl],
        annotation: Optional[Formula],
    ) -> None:
        self._expect("#ifdef")
        self._expect("(")
        condition = self._condition()
        self._expect(")")
        self._members(
            fields, methods, _merge(annotation, condition), ("#else", "#endif")
        )
        if self._at("#else"):
            self._next()
            disabled = Not(condition)
            self._members(
                fields, methods, _merge(annotation, disabled), ("#endif",)
            )
        self._expect("#endif")

    def _member(
        self,
        fields: List[FieldDecl],
        methods: List[MethodDecl],
        annotation: Optional[Formula],
    ) -> None:
        member_type = self._type()
        name_token = self._expect_ident()
        if self._at("("):
            methods.append(self._method(member_type, name_token, annotation))
        else:
            self._expect(";")
            fields.append(
                FieldDecl(
                    member_type,
                    name_token.text,
                    annotation=annotation,
                    line=name_token.line,
                )
            )

    def _method(
        self, return_type: Type, name_token: Token, annotation: Optional[Formula]
    ) -> MethodDecl:
        self._expect("(")
        params: List[Param] = []
        if not self._at(")"):
            while True:
                param_type = self._type()
                params.append(Param(param_type, self._expect_ident().text))
                if self._at(","):
                    self._next()
                else:
                    break
        self._expect(")")
        body = self._block()
        return MethodDecl(
            return_type,
            name_token.text,
            params,
            body,
            annotation=annotation,
            line=name_token.line,
        )

    def _type(self) -> Type:
        token = self._next()
        if token.text in ("int", "boolean", "void"):
            return Type(token.text)
        if token.kind == "ident":
            return Type(token.text)
        raise ParseError(
            f"line {token.line}: expected a type but found {token.text!r}"
        )

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _block(self) -> Block:
        line = self._expect("{").line
        statements = self._statements(("}",))
        self._expect("}")
        return Block(statements, line=line)

    def _statements(self, terminators: tuple) -> List[Stmt]:
        statements: List[Stmt] = []
        while not self._at_any(terminators):
            statements.extend(self._statement_group())
        return statements

    def _statement_group(self) -> List[Stmt]:
        """One statement, or the flattened contents of an #ifdef region."""
        if self._at("#ifdef"):
            return self._ifdef_statements()
        return [self._statement()]

    def _ifdef_statements(self) -> List[Stmt]:
        self._expect("#ifdef")
        self._expect("(")
        condition = self._condition()
        self._expect(")")
        result: List[Stmt] = []
        for stmt in self._statements(("#else", "#endif")):
            stmt.annotation = _merge_stmt(condition, stmt.annotation)
            result.append(stmt)
        if self._at("#else"):
            self._next()
            negated = Not(condition)
            for stmt in self._statements(("#endif",)):
                stmt.annotation = _merge_stmt(negated, stmt.annotation)
                result.append(stmt)
        self._expect("#endif")
        return result

    def _statement(self) -> Stmt:
        token = self._peek()
        if token.text == "{":
            return self._block()
        if token.text == "if":
            return self._if_statement()
        if token.text == "while":
            return self._while_statement()
        if token.text == "return":
            return self._return_statement()
        if token.text == "print" and self._peek(1).text == "(":
            return self._print_statement()
        if token.text in ("int", "boolean"):
            return self._var_decl()
        if token.kind == "ident" and self._peek(1).kind == "ident":
            return self._var_decl()  # class-typed local
        return self._assign_or_call()

    def _if_statement(self) -> IfStmt:
        line = self._expect("if").line
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        then_block = self._block()
        else_block = None
        if self._at("else"):
            self._next()
            else_block = self._block()
        return IfStmt(cond, then_block, else_block, line=line)

    def _while_statement(self) -> WhileStmt:
        line = self._expect("while").line
        self._expect("(")
        cond = self._expression()
        self._expect(")")
        body = self._block()
        return WhileStmt(cond, body, line=line)

    def _return_statement(self) -> ReturnStmt:
        line = self._expect("return").line
        value = None
        if not self._at(";"):
            value = self._expression()
        self._expect(";")
        return ReturnStmt(value, line=line)

    def _print_statement(self) -> PrintStmt:
        line = self._next().line  # 'print'
        self._expect("(")
        value = self._expression()
        self._expect(")")
        self._expect(";")
        return PrintStmt(value, line=line)

    def _var_decl(self) -> VarDecl:
        var_type = self._type()
        name_token = self._expect_ident()
        init = None
        if self._at("="):
            self._next()
            init = self._expression()
        self._expect(";")
        return VarDecl(var_type, name_token.text, init, line=name_token.line)

    def _assign_or_call(self) -> Stmt:
        line = self._peek().line
        expr = self._postfix_expression()
        if self._at("="):
            self._next()
            value = self._expression()
            self._expect(";")
            if not isinstance(expr, (VarRef, FieldAccess)):
                raise ParseError(
                    f"line {line}: assignment target must be a variable or field"
                )
            return AssignStmt(expr, value, line=line)
        self._expect(";")
        if not isinstance(expr, Call):
            raise ParseError(f"line {line}: expression statement must be a call")
        return ExprStmt(expr, line=line)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _expression(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._at("||"):
            self._next()
            left = Binary("||", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._equality_expr()
        while self._at("&&"):
            self._next()
            left = Binary("&&", left, self._equality_expr())
        return left

    def _equality_expr(self) -> Expr:
        left = self._relational_expr()
        while self._peek().text in ("==", "!="):
            op = self._next().text
            left = Binary(op, left, self._relational_expr())
        return left

    def _relational_expr(self) -> Expr:
        left = self._additive_expr()
        while self._peek().text in ("<", "<=", ">", ">="):
            op = self._next().text
            left = Binary(op, left, self._additive_expr())
        return left

    def _additive_expr(self) -> Expr:
        left = self._multiplicative_expr()
        while self._peek().text in ("+", "-"):
            op = self._next().text
            left = Binary(op, left, self._multiplicative_expr())
        return left

    def _multiplicative_expr(self) -> Expr:
        left = self._unary_expr()
        while self._peek().text in ("*", "/", "%"):
            op = self._next().text
            left = Binary(op, left, self._unary_expr())
        return left

    def _unary_expr(self) -> Expr:
        if self._peek().text in ("!", "-"):
            op = self._next().text
            return Unary(op, self._unary_expr())
        return self._postfix_expression()

    def _postfix_expression(self) -> Expr:
        expr = self._primary_expression()
        while self._at("."):
            self._next()
            member = self._expect_ident().text
            if self._at("("):
                expr = Call(expr, member, self._arguments())
            else:
                expr = FieldAccess(expr, member)
        return expr

    def _primary_expression(self) -> Expr:
        token = self._next()
        if token.kind == "int":
            return IntLit(int(token.text))
        if token.text == "true":
            return BoolLit(True)
        if token.text == "false":
            return BoolLit(False)
        if token.text == "null":
            return NullLit()
        if token.text == "this":
            return ThisRef()
        if token.text == "new":
            class_name = self._expect_ident().text
            self._expect("(")
            self._expect(")")
            return New(class_name)
        if token.text == "(":
            inner = self._expression()
            self._expect(")")
            return inner
        if token.kind == "ident":
            if self._at("("):
                return Call(None, token.text, self._arguments())
            return VarRef(token.text)
        raise ParseError(
            f"line {token.line}: unexpected token {token.text!r} in expression"
        )

    def _arguments(self) -> List[Expr]:
        self._expect("(")
        args: List[Expr] = []
        if not self._at(")"):
            while True:
                args.append(self._expression())
                if self._at(","):
                    self._next()
                else:
                    break
        self._expect(")")
        return args

    # ------------------------------------------------------------------
    # #ifdef conditions (propositional formulas over feature names)
    # ------------------------------------------------------------------

    def _condition(self) -> Formula:
        return self._cond_iff()

    def _cond_iff(self) -> Formula:
        left = self._cond_implies()
        while self._at("<->"):
            self._next()
            left = Iff(left, self._cond_implies())
        return left

    def _cond_implies(self) -> Formula:
        left = self._cond_or()
        if self._at("->"):
            self._next()
            return Implies(left, self._cond_implies())
        return left

    def _cond_or(self) -> Formula:
        operands = [self._cond_and()]
        while self._at("||"):
            self._next()
            operands.append(self._cond_and())
        return operands[0] if len(operands) == 1 else Or(tuple(operands))

    def _cond_and(self) -> Formula:
        operands = [self._cond_unary()]
        while self._at("&&"):
            self._next()
            operands.append(self._cond_unary())
        return operands[0] if len(operands) == 1 else And(tuple(operands))

    def _cond_unary(self) -> Formula:
        if self._at("!"):
            self._next()
            return Not(self._cond_unary())
        token = self._next()
        if token.text == "(":
            inner = self._cond_iff()
            self._expect(")")
            return inner
        if token.text == "true":
            return TrueConst()
        if token.text == "false":
            return FalseConst()
        if token.kind == "ident":
            return Var(token.text)
        raise ParseError(
            f"line {token.line}: unexpected token {token.text!r} in #ifdef condition"
        )


def _merge(outer: Optional[Formula], inner: Formula) -> Formula:
    """Conjoin an enclosing annotation with a nested one."""
    return inner if outer is None else And((outer, inner))


def _merge_stmt(condition: Formula, existing: Optional[Formula]) -> Formula:
    """Attach a region condition to a statement (outer condition first)."""
    return condition if existing is None else And((condition, existing))
