"""Static preprocessor: derive a single product from a product line.

This is the front half of the traditional ``A1`` approach (Section 6.2): for
a concrete configuration, every annotated node whose condition evaluates to
false is removed and all remaining annotations are erased, yielding a plain
MiniJava program like Figure 1b of the paper.
"""

from __future__ import annotations

import copy
from typing import Dict, Iterable, List, Optional

from repro.constraints.base import ConfigurationLike, as_assignment
from repro.constraints.formula import Formula
from repro.minijava.ast import (
    Block,
    ClassDecl,
    FieldDecl,
    IfStmt,
    MethodDecl,
    Program,
    Stmt,
    WhileStmt,
)

__all__ = ["derive_product", "annotated_features"]


def annotated_features(program: Program) -> "frozenset[str]":
    """All feature names mentioned in any annotation of the program."""
    names: set = set()
    for cls in program.classes:
        for fld in cls.fields:
            if fld.annotation is not None:
                names |= fld.annotation.variables()
        for method in cls.methods:
            if method.annotation is not None:
                names |= method.annotation.variables()
            _collect_block(method.body, names)
    return frozenset(names)


def _collect_block(block: Block, names: set) -> None:
    for stmt in block.statements:
        _collect_stmt(stmt, names)


def _collect_stmt(stmt: Stmt, names: set) -> None:
    if stmt.annotation is not None:
        names |= stmt.annotation.variables()
    if isinstance(stmt, Block):
        _collect_block(stmt, names)
    elif isinstance(stmt, IfStmt):
        _collect_block(stmt.then_block, names)
        if stmt.else_block is not None:
            _collect_block(stmt.else_block, names)
    elif isinstance(stmt, WhileStmt):
        _collect_block(stmt.body, names)


def derive_product(
    program: Program, configuration: ConfigurationLike
) -> Program:
    """Apply the preprocessor for ``configuration``.

    Returns a new program with disabled nodes removed and all annotations
    erased; the input program is left untouched.
    """
    features = annotated_features(program)
    assignment = as_assignment(configuration, features)
    classes: List[ClassDecl] = []
    for cls in program.classes:
        fields = [
            _strip_field(fld)
            for fld in cls.fields
            if _enabled(fld.annotation, assignment)
        ]
        methods = [
            _strip_method(method, assignment)
            for method in cls.methods
            if _enabled(method.annotation, assignment)
        ]
        classes.append(
            ClassDecl(cls.name, cls.superclass, fields, methods, line=cls.line)
        )
    return Program(classes)


def _enabled(
    annotation: Optional[Formula], assignment: Dict[str, bool]
) -> bool:
    return annotation is None or annotation.evaluate(assignment)


def _strip_field(fld: FieldDecl) -> FieldDecl:
    return FieldDecl(fld.type, fld.name, annotation=None, line=fld.line)


def _strip_method(method: MethodDecl, assignment: Dict[str, bool]) -> MethodDecl:
    return MethodDecl(
        method.return_type,
        method.name,
        list(method.params),
        _strip_block(method.body, assignment),
        annotation=None,
        line=method.line,
    )


def _strip_block(block: Block, assignment: Dict[str, bool]) -> Block:
    statements: List[Stmt] = []
    for stmt in block.statements:
        if not _enabled(stmt.annotation, assignment):
            continue
        statements.append(_strip_stmt(stmt, assignment))
    return Block(statements, line=block.line)


def _strip_stmt(stmt: Stmt, assignment: Dict[str, bool]) -> Stmt:
    if isinstance(stmt, Block):
        stripped: Stmt = _strip_block(stmt, assignment)
    elif isinstance(stmt, IfStmt):
        stripped = IfStmt(
            copy.deepcopy(stmt.cond),
            _strip_block(stmt.then_block, assignment),
            None
            if stmt.else_block is None
            else _strip_block(stmt.else_block, assignment),
            line=stmt.line,
        )
    elif isinstance(stmt, WhileStmt):
        stripped = WhileStmt(
            copy.deepcopy(stmt.cond),
            _strip_block(stmt.body, assignment),
            line=stmt.line,
        )
    else:
        stripped = copy.deepcopy(stmt)
        stripped.annotation = None
    stripped.annotation = None
    return stripped
