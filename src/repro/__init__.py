"""SPLLIFT reproduction: statically analyzing software product lines in
minutes instead of years (Bodden et al., PLDI 2013).

The package lifts *unmodified* IFDS data-flow analyses to feature-sensitive
analyses over whole software product lines, by converting them into IDE
problems whose value domain is Boolean feature constraints backed by BDDs.

Quickstart::

    from repro import SPLLift, TaintAnalysis
    from repro.spl import figure1

    product_line = figure1()
    analysis = TaintAnalysis(product_line.icfg)   # plain IFDS analysis
    results = SPLLift(analysis, feature_model=product_line.feature_model).solve()
    # results.constraint_for(stmt, fact) -> e.g.  !F & G & !H

Subpackages
-----------
- ``repro.bdd`` — from-scratch ROBDD engine,
- ``repro.constraints`` — feature constraints (BDD and DNF backed),
- ``repro.featuremodel`` — feature models, Batory translation,
- ``repro.minijava`` — the Java-like frontend with #ifdef annotations,
- ``repro.ir`` — Jimple-like IR, CHA call graph, ICFG,
- ``repro.ifds`` / ``repro.ide`` — the two dataflow frameworks,
- ``repro.core`` — the SPLLIFT lifting itself,
- ``repro.analyses`` — taint, possible types, reaching defs, uninit vars,
- ``repro.baselines`` — A1 (generate-and-analyze) and A2 (config-specific),
- ``repro.spl`` — product lines, examples, benchmark subjects,
- ``repro.experiments`` — regenerates the paper's tables.
"""

from repro.analyses import (
    PAPER_ANALYSES,
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    TaintAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.baselines import run_a1, solve_a2
from repro.constraints import BddConstraintSystem, DnfConstraintSystem
from repro.core import SPLLift, SPLLiftResults
from repro.featuremodel import FeatureModel, parse_feature_model
from repro.ifds import IFDSProblem, IFDSSolver
from repro.ide import IDEProblem, IDESolver
from repro.ir import ICFG, lower_program
from repro.minijava import parse_program
from repro.spl import ProductLine

__version__ = "1.0.0"

__all__ = [
    "SPLLift",
    "SPLLiftResults",
    "TaintAnalysis",
    "PossibleTypesAnalysis",
    "ReachingDefinitionsAnalysis",
    "UninitializedVariablesAnalysis",
    "PAPER_ANALYSES",
    "solve_a2",
    "run_a1",
    "BddConstraintSystem",
    "DnfConstraintSystem",
    "FeatureModel",
    "parse_feature_model",
    "IFDSProblem",
    "IFDSSolver",
    "IDEProblem",
    "IDESolver",
    "ICFG",
    "lower_program",
    "parse_program",
    "ProductLine",
    "__version__",
]
