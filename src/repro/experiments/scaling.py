"""Scaling experiment: analysis cost as the number of features grows.

The paper's headline claim in series form: for a family of subjects that
are identical except for their number of (unconstrained) reachable
features, A2's total cost doubles per feature (2^n valid configurations)
while SPLLIFT's single pass stays essentially flat.  This is the implicit
"figure" behind "minutes instead of years" — the paper states it via
Table 2; this module measures the curve directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence, Type

from repro.baselines.a2 import A2Problem
from repro.core.solver import SPLLift
from repro.ifds.problem import IFDSProblem
from repro.ifds.solver import IFDSSolver
from repro.spl.generator import SubjectSpec, generate_subject
from repro.utils.tables import render_table
from repro.utils.timing import format_count, format_duration, format_estimate

__all__ = ["ScalingPoint", "run_scaling", "render_scaling"]


@dataclass
class ScalingPoint:
    features: int
    valid_configurations: int
    spllift_seconds: float
    a2_per_configuration_seconds: float

    @property
    def a2_total_seconds(self) -> float:
        return self.a2_per_configuration_seconds * self.valid_configurations

    @property
    def speedup(self) -> float:
        if self.spllift_seconds == 0:
            return float("inf")
        return self.a2_total_seconds / self.spllift_seconds


def _subject(feature_count: int, seed: int):
    return generate_subject(
        SubjectSpec(
            name=f"scale-{feature_count}",
            seed=seed,
            classes=6,
            methods_per_class=(2, 4),
            statements_per_method=(6, 10),
            annotation_density=0.35,
            entry_fanout=8,
            reachable_features=[f"S{i}" for i in range(feature_count)],
        )
    )


def run_scaling(
    analysis_class: Type[IFDSProblem],
    feature_counts: Sequence[int] = (2, 4, 6, 8, 10, 12, 14),
    seed: int = 7,
) -> List[ScalingPoint]:
    """Measure SPLLIFT and per-configuration A2 across feature counts.

    The subjects share the generator seed, so the *code* stays comparable
    while only the number of distinct features in annotations grows.
    """
    points: List[ScalingPoint] = []
    for count in feature_counts:
        product_line = _subject(count, seed)
        analysis = analysis_class(product_line.icfg)
        spllift = SPLLift(analysis, feature_model=product_line.feature_model)
        started = time.perf_counter()
        spllift.solve()
        spllift_seconds = time.perf_counter() - started
        # A2 anchors (the paper's estimation protocol).
        reachable = product_line.features_reachable
        anchor_total = 0.0
        for config in (frozenset(), frozenset(reachable)):
            started = time.perf_counter()
            IFDSSolver(A2Problem(analysis, config)).solve()
            anchor_total += time.perf_counter() - started
        points.append(
            ScalingPoint(
                features=len(reachable),
                valid_configurations=product_line.count_valid_configurations(),
                spllift_seconds=spllift_seconds,
                a2_per_configuration_seconds=anchor_total / 2.0,
            )
        )
    return points


def render_scaling(points: List[ScalingPoint]) -> str:
    headers = (
        "features",
        "valid configs",
        "SPLLIFT (1 pass)",
        "A2 per config",
        "A2 total (est.)",
        "speedup",
    )
    body = []
    for point in points:
        total = point.a2_total_seconds
        body.append(
            (
                str(point.features),
                format_count(point.valid_configurations),
                format_duration(point.spllift_seconds),
                format_duration(point.a2_per_configuration_seconds),
                format_estimate(total) if total >= 60 else format_duration(total),
                f"{point.speedup:,.0f}x",
            )
        )
    return render_table(
        headers,
        body,
        title="Scaling with feature count (the paper's headline, as a curve)",
    )
