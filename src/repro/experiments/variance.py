"""The iteration-order variance experiment (Section 6.2).

The paper: "During our experiments, we found a relatively high variance in
the analysis times.  As we found, this is caused due to non-determinism in
the order in which the IDE solution is computed.  As a fixed-point
algorithm, IDE computes the same result independently of iteration order,
but some orders may compute the result faster (computing fewer flow
functions) than others. ... We did find, however, that the analysis time
taken strongly correlates with the number of flow functions constructed."

This experiment makes the paper's JVM hash-ordering accident a controlled
variable: it runs the same lifted analysis under many random worklist
orders, verifies that the *results* are identical, and reports the spread
of work (flow-function applications) and time together with their
correlation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Tuple, Type

from repro.core.solver import SPLLift
from repro.experiments.qualitative import correlation
from repro.ide.solver import IDESolver
from repro.ifds.problem import IFDSProblem
from repro.spl.product_line import ProductLine
from repro.utils.tables import render_table
from repro.utils.timing import format_duration

__all__ = ["VarianceRun", "VarianceReport", "run_variance", "render_variance"]


@dataclass
class VarianceRun:
    order: str
    seconds: float
    flow_applications: int
    jump_functions: int


@dataclass
class VarianceReport:
    benchmark: str
    analysis: str
    runs: List[VarianceRun]
    results_identical: bool

    @property
    def time_spread(self) -> float:
        times = [run.seconds for run in self.runs]
        return max(times) / min(times) if min(times) > 0 else float("inf")

    @property
    def work_spread(self) -> float:
        work = [run.flow_applications for run in self.runs]
        return max(work) / min(work) if min(work) > 0 else float("inf")

    @property
    def work_time_correlation(self) -> float:
        return correlation(
            [float(run.flow_applications) for run in self.runs],
            [run.seconds for run in self.runs],
        )


def run_variance(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    random_orders: int = 8,
) -> VarianceReport:
    """Solve the same lifted problem under fifo, lifo and random orders."""
    from repro.constraints.bddsystem import BddConstraintSystem

    orders: List[Tuple[str, str, int]] = [("fifo", "fifo", 0), ("lifo", "lifo", 0)]
    orders.extend(
        (f"random:{seed}", "random", seed) for seed in range(random_orders)
    )
    # One shared constraint system so results are comparable by node
    # identity across runs (canonical BDDs). The shared operation cache
    # slightly favours later runs; the work counts are unaffected.
    system = BddConstraintSystem()
    runs: List[VarianceRun] = []
    reference = None
    identical = True
    for name, order, seed in orders:
        spllift = SPLLift(
            analysis_class(product_line.icfg),
            feature_model=product_line.feature_model,
            system=system,
        )
        solver = IDESolver(spllift.problem, worklist_order=order, order_seed=seed)
        started = time.perf_counter()
        results = solver.solve()
        elapsed = time.perf_counter() - started
        runs.append(
            VarianceRun(
                order=name,
                seconds=elapsed,
                flow_applications=solver.stats["flow_applications"],
                jump_functions=solver.stats["jump_functions"],
            )
        )
        snapshot = {
            key: value
            for key, value in results.items()
            if value != system.false
        }
        if reference is None:
            reference = snapshot
        elif snapshot != reference:
            identical = False
    return VarianceReport(
        benchmark=product_line.name,
        analysis=analysis_class.__name__,
        runs=runs,
        results_identical=identical,
    )


def render_variance(reports: List[VarianceReport]) -> str:
    headers = (
        "Benchmark",
        "Analysis",
        "orders",
        "time min..max",
        "work min..max",
        "work/time r",
        "same results",
    )
    body = []
    for report in reports:
        times = [run.seconds for run in report.runs]
        work = [run.flow_applications for run in report.runs]
        body.append(
            (
                report.benchmark,
                report.analysis,
                str(len(report.runs)),
                f"{format_duration(min(times))}..{format_duration(max(times))}",
                f"{min(work)}..{max(work)}",
                f"{report.work_time_correlation:.2f}",
                "yes" if report.results_identical else "NO",
            )
        )
    return render_table(
        headers, body, title="Iteration-order variance (Section 6.2)"
    )
