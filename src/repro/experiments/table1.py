"""Table 1: key information about the benchmark subjects.

Paper columns: KLOC; features total; features reachable; configurations
over the reachable features (2^reachable); configurations valid w.r.t.
the feature model.  For BerkeleyDB the paper reports "unknown" because
enumerating validity took too long — we *can* count ours exactly via BDD
model counting, so the count is shown with the "unknown in paper" caveat
carried in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from repro.spl.benchmarks import paper_subjects
from repro.spl.product_line import ProductLine
from repro.utils.tables import render_table
from repro.utils.timing import format_count

__all__ = ["Table1Row", "run_table1", "render_table1"]


@dataclass
class Table1Row:
    benchmark: str
    kloc: float
    features_total: int
    features_reachable: int
    configurations_reachable: int
    configurations_valid: int


def run_table1(
    subjects: Sequence[Tuple[str, Callable[[], ProductLine]]] = None,
) -> List[Table1Row]:
    """Compute the Table 1 metrics for every subject."""
    subjects = subjects if subjects is not None else paper_subjects()
    rows: List[Table1Row] = []
    for name, builder in subjects:
        product_line = builder()
        rows.append(
            Table1Row(
                benchmark=name,
                kloc=product_line.kloc,
                features_total=product_line.features_total,
                features_reachable=len(product_line.features_reachable),
                configurations_reachable=product_line.configurations_reachable,
                configurations_valid=product_line.count_valid_configurations(),
            )
        )
    return rows


def render_table1(rows: List[Table1Row]) -> str:
    """Render like the paper's Table 1."""
    headers = (
        "Benchmark",
        "KLOC",
        "Features total",
        "Features reachable",
        "Configs reachable",
        "Configs valid",
    )
    body = [
        (
            row.benchmark,
            f"{row.kloc:.2f}",
            str(row.features_total),
            str(row.features_reachable),
            format_count(row.configurations_reachable),
            format_count(row.configurations_valid),
        )
        for row in rows
    ]
    return render_table(headers, body, title="Table 1: benchmark key information")
