"""Shared machinery for the experiment harness.

Implements the paper's measurement protocol (Section 6.2):

- each benchmark/analysis combination is run once;
- the A2 baseline must run once per valid configuration; beyond a cutoff
  the total is *estimated* "by taking the average of a run of A2 with all
  features enabled and with no features enabled and then multiplying by
  the number of valid configurations";
- call-graph construction time (the "Soot/CG" column) is measured
  separately because SPLLIFT and A2 share it as a prerequisite.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

from repro.baselines.a2 import measure_a2
from repro.core.parallel import ProcessTaskPool, resolve_parallel
from repro.core.solver import SPLLift, SPLLiftResults
from repro.ifds.problem import IFDSProblem
from repro.ir.icfg import ICFG
from repro.spl.product_line import ProductLine

__all__ = [
    "A2Campaign",
    "engine_job_options",
    "measure_call_graph",
    "run_spllift",
    "run_spllift_cached",
    "run_a2_campaign",
    "ENUMERATION_LIMIT",
]

#: Above this many valid configurations, A2 is never enumerated — the
#: total is estimated from the full/empty runs straight away (the paper's
#: BerkeleyDB case, where even counting took too long).
ENUMERATION_LIMIT = 200_000


def measure_call_graph(product_line: ProductLine) -> float:
    """Seconds for the shared analysis prerequisite (the "Soot/CG" column):
    parsing, lowering, and call-graph/ICFG construction from scratch."""
    from repro.ir.lowering import lower_program
    from repro.minijava.parser import parse_program

    started = time.perf_counter()
    program = lower_program(parse_program(product_line.source))
    ICFG.for_entry(program, product_line.entry)
    return time.perf_counter() - started


def run_spllift(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    fm_mode: str = "edge",
    engine: Optional[str] = None,
) -> Tuple[float, SPLLiftResults]:
    """One SPLLIFT run; returns (seconds, results)."""
    analysis = analysis_class(product_line.icfg)
    feature_model = product_line.feature_model if fm_mode != "ignore" else None
    spllift = SPLLift(analysis, feature_model=feature_model, fm_mode=fm_mode)
    started = time.perf_counter()
    results = spllift.solve(engine=engine)
    return time.perf_counter() - started, results


def _service_name_for(analysis_class: Type[IFDSProblem]) -> str:
    """Derive the service's canonical analysis name from a problem class
    (``PossibleTypesAnalysis`` → ``possible_types``)."""
    name = analysis_class.__name__
    if name.endswith("Analysis"):
        name = name[: -len("Analysis")]
    words = []
    for char in name:
        if char.isupper() and words:
            words.append("_")
        words.append(char.lower())
    return "".join(words)


def engine_job_options(engine: Optional[str]) -> Dict[str, object]:
    """Job options encoding an engine choice.

    The default engine is *omitted* so job digests — and therefore
    every already-populated result store — stay byte-identical to runs
    that never mention an engine; a non-default engine becomes part of
    the job identity (its record is a distinct store entry even though
    the result digest matches).
    """
    from repro.datalog import resolve_engine

    resolved = resolve_engine(engine)
    return {} if resolved == "tabulate" else {"engine": resolved}


def run_spllift_cached(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    fm_mode: str = "edge",
    store=None,
    engine: Optional[str] = None,
) -> Tuple[float, Dict[str, object], bool]:
    """Store-aware :func:`run_spllift` — the experiments' warm path.

    Returns ``(solve_seconds, record, cached)`` where ``record`` is the
    service-format result record.  On a store hit the solver is skipped
    entirely and ``solve_seconds`` is the *recorded* solve time of the
    original cold run, so cached table regenerations report the same
    timings they were first measured with.
    """
    from repro.service import AnalysisJob, build_record

    job = AnalysisJob.from_product_line(
        product_line,
        _service_name_for(analysis_class),
        fm_mode=fm_mode,
        options=engine_job_options(engine),
    )
    if store is not None:
        record = store.get(job.digest)
        if record is not None:
            return float(record["solve_seconds"]), record, True
    seconds, results = run_spllift(
        product_line, analysis_class, fm_mode=fm_mode, engine=engine
    )
    record = build_record(job, results, solve_seconds=seconds)
    if store is not None:
        store.put(record)
    return seconds, record, False


@dataclass
class A2Campaign:
    """Outcome of running A2 over (possibly part of) the configurations."""

    configurations_run: int
    valid_configurations: int
    measured_seconds: float
    estimated: bool
    estimated_total_seconds: float
    per_configuration_seconds: float
    stats_full: Dict[str, int] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.estimated_total_seconds if self.estimated else self.measured_seconds
        )

    @property
    def average_seconds(self) -> float:
        """Average per-configuration time ("average A2" in Table 3)."""
        return self.per_configuration_seconds


def _enumerate_a2_parallel(
    analysis: IFDSProblem,
    configurations: Iterable[frozenset],
    cutoff_seconds: float,
    workers: int,
) -> Tuple[float, int]:
    """Fan A2 configuration runs over worker processes, in waves.

    Times are accumulated in *submission* order and the cutoff is applied
    to that prefix, so the campaign stops after the same configurations
    (and reports the same ``configurations_run``) as the sequential loop;
    only the wall-clock changes.  A configuration whose worker fails for
    any reason is simply re-run in the parent — A2 is deterministic, so
    results cannot differ.  Returns ``(measured_total, runs)``.
    """
    pool = ProcessTaskPool(max_workers=workers, max_retries=1)
    config_iter = iter(configurations)
    total = 0.0
    runs = 0
    while True:
        wave = list(itertools.islice(config_iter, workers * 2))
        if not wave:
            break
        outcomes = pool.run(
            [(measure_a2, (analysis, configuration)) for configuration in wave]
        )
        for configuration, outcome in zip(wave, outcomes):
            if outcome.ok:
                seconds, _ = outcome.result
            else:
                seconds, _ = measure_a2(analysis, configuration)
            total += seconds
            runs += 1
            if total > cutoff_seconds:
                return total, runs
    return total, runs


def run_a2_campaign(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    cutoff_seconds: float = 60.0,
    parallel: Optional[int] = None,
) -> A2Campaign:
    """Run A2 over all valid configurations, with cutoff + estimation.

    ``parallel`` (default ``$SPLLIFT_PARALLEL``, else 1) fans the
    configuration enumeration over worker processes; the estimation
    anchors always run in the parent, and the cutoff is applied to the
    submission-order prefix so the campaign's accounting is identical to
    the sequential protocol.
    """
    workers = resolve_parallel(parallel)
    analysis = analysis_class(product_line.icfg)
    valid_count = product_line.count_valid_configurations()
    reachable = product_line.features_reachable

    def run_one(configuration) -> Tuple[float, Dict[str, int]]:
        return measure_a2(analysis, configuration)

    # The paper's estimation anchors: all features on, all features off.
    full_seconds, stats_full = run_one(frozenset(reachable))
    empty_seconds, _ = run_one(frozenset())
    anchor_average = (full_seconds + empty_seconds) / 2.0

    if valid_count > ENUMERATION_LIMIT:
        return A2Campaign(
            configurations_run=2,
            valid_configurations=valid_count,
            measured_seconds=full_seconds + empty_seconds,
            estimated=True,
            estimated_total_seconds=anchor_average * valid_count,
            per_configuration_seconds=anchor_average,
            stats_full=stats_full,
        )

    if workers > 1:
        total, runs = _enumerate_a2_parallel(
            analysis, product_line.valid_configurations(), cutoff_seconds, workers
        )
    else:
        total = 0.0
        runs = 0
        for configuration in product_line.valid_configurations():
            seconds, _ = run_one(configuration)
            total += seconds
            runs += 1
            if total > cutoff_seconds:
                break
    if runs == valid_count:
        return A2Campaign(
            configurations_run=runs,
            valid_configurations=valid_count,
            measured_seconds=total,
            estimated=False,
            estimated_total_seconds=total,
            per_configuration_seconds=total / max(runs, 1),
            stats_full=stats_full,
        )
    # Cutoff hit: estimate the remainder from the anchors (paper protocol).
    return A2Campaign(
        configurations_run=runs,
        valid_configurations=valid_count,
        measured_seconds=total,
        estimated=True,
        estimated_total_seconds=anchor_average * valid_count,
        per_configuration_seconds=anchor_average,
        stats_full=stats_full,
    )
