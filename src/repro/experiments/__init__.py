"""Experiment harness: regenerates every table of the paper's evaluation.

- :mod:`repro.experiments.table1` — benchmark key information,
- :mod:`repro.experiments.table2` — SPLLIFT vs A2 performance,
- :mod:`repro.experiments.table3` — feature-model impact,
- :mod:`repro.experiments.qualitative` — edge-count correlation
  (Section 6.2's qualitative analysis),
- :mod:`repro.experiments.variance` — iteration-order variance
  (Section 6.2's non-determinism observation),
- :mod:`repro.experiments.scaling` — the headline claim as a curve
  (SPLLIFT flat, A2 exponential in the feature count).

Run ``python -m repro.experiments all`` for the full campaign.
"""

from repro.experiments.harness import (
    A2Campaign,
    ENUMERATION_LIMIT,
    measure_call_graph,
    run_a2_campaign,
    run_spllift,
)
from repro.experiments.qualitative import (
    QualitativeRow,
    correlation,
    render_qualitative,
    run_qualitative,
)
from repro.experiments.table1 import Table1Row, render_table1, run_table1
from repro.experiments.scaling import (
    ScalingPoint,
    render_scaling,
    run_scaling,
)
from repro.experiments.variance import (
    VarianceReport,
    VarianceRun,
    render_variance,
    run_variance,
)
from repro.experiments.table2 import (
    Table2Cell,
    Table2Row,
    render_table2,
    run_table2,
)
from repro.experiments.table3 import (
    Table3Cell,
    Table3Row,
    render_table3,
    run_table3,
)

__all__ = [
    "A2Campaign",
    "ENUMERATION_LIMIT",
    "measure_call_graph",
    "run_a2_campaign",
    "run_spllift",
    "Table1Row",
    "run_table1",
    "render_table1",
    "Table2Cell",
    "Table2Row",
    "run_table2",
    "render_table2",
    "Table3Cell",
    "Table3Row",
    "run_table3",
    "render_table3",
    "QualitativeRow",
    "run_qualitative",
    "render_qualitative",
    "correlation",
    "VarianceRun",
    "VarianceReport",
    "run_variance",
    "render_variance",
    "ScalingPoint",
    "run_scaling",
    "render_scaling",
]
