"""Command-line entry point regenerating the paper's tables.

Usage::

    python -m repro.experiments table1
    python -m repro.experiments table2 [--cutoff SECONDS]
    python -m repro.experiments table3
    python -m repro.experiments qualitative
    python -m repro.experiments variance
    python -m repro.experiments scaling
    python -m repro.experiments all [--cutoff SECONDS]
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.qualitative import render_qualitative, run_qualitative
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.scaling import render_scaling, run_scaling
from repro.experiments.variance import render_variance, run_variance
from repro.experiments.table2 import render_table2, run_table2
from repro.experiments.table3 import render_table3, run_table3

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the SPLLIFT paper's tables on the "
        "reproduction's benchmark subjects.",
    )
    parser.add_argument(
        "experiment",
        choices=("table1", "table2", "table3", "qualitative", "variance", "scaling", "all"),
        help="which experiment to run",
    )
    parser.add_argument(
        "--cutoff",
        type=float,
        default=60.0,
        help="A2 cutoff in seconds before switching to the estimation "
        "protocol (paper: ten hours; default: 60)",
    )
    parser.add_argument(
        "--cache-dir",
        help="route SPLLIFT runs through the analysis service's result "
        "store: a path, sqlite://file.db, or http://host:port "
        "(warm hits skip the solver)",
    )
    parser.add_argument(
        "--parallel",
        "-j",
        type=int,
        default=None,
        help="fan independent table2/table3 cells over this many worker "
        "processes (0 = all cores; default: $SPLLIFT_PARALLEL, else 1); "
        "results are bit-identical to a sequential campaign",
    )
    parser.add_argument(
        "--engine",
        metavar="ENGINE",
        default=None,
        help="SPLLIFT evaluation engine for table2/table3 cells "
        "(tabulate or datalog; default: $SPLLIFT_ENGINE, else tabulate); "
        "result digests are identical either way — timings are the A/B",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a merged Chrome trace_event span trace of the whole "
        "campaign here (opens in Perfetto)",
    )
    parser.add_argument(
        "--metrics",
        dest="metrics_file",
        metavar="FILE",
        help="write the aggregated metrics registry as JSON here",
    )
    args = parser.parse_args(argv)

    from repro.obs import runtime as obs

    if args.engine is not None:
        from repro.datalog import resolve_engine

        try:
            resolve_engine(args.engine)
        except ValueError as error:
            parser.error(str(error))

    if args.trace:
        obs.enable_tracing()

    store = None
    if args.cache_dir:
        from repro.service import open_store

        store = open_store(args.cache_dir)

    if args.experiment in ("table1", "all"):
        print(render_table1(run_table1()))
        print()
    if args.experiment in ("table2", "all"):
        print(
            render_table2(
                run_table2(
                    cutoff_seconds=args.cutoff,
                    store=store,
                    parallel=args.parallel,
                    engine=args.engine,
                )
            )
        )
        print()
    if args.experiment in ("table3", "all"):
        print(
            render_table3(
                run_table3(store=store, parallel=args.parallel, engine=args.engine)
            )
        )
        print()
    if args.experiment in ("qualitative", "all"):
        print(render_qualitative(run_qualitative()))
        print()
    if args.experiment in ("variance", "all"):
        from repro.analyses import ReachingDefinitionsAnalysis, UninitializedVariablesAnalysis
        from repro.spl import gpl_like, mm08_like

        reports = [
            run_variance(mm08_like(), ReachingDefinitionsAnalysis),
            run_variance(gpl_like(), ReachingDefinitionsAnalysis),
            run_variance(gpl_like(), UninitializedVariablesAnalysis),
        ]
        print(render_variance(reports))
        print()
    if args.experiment in ("scaling", "all"):
        from repro.analyses import UninitializedVariablesAnalysis

        print(render_scaling(run_scaling(UninitializedVariablesAnalysis)))
        print()

    if args.trace:
        from repro.obs.trace import write_trace

        count = write_trace(
            obs.tracer().events(), args.trace, run_id=obs.run_id()
        )
        print(
            f"trace: {count} event(s) written to {args.trace}", file=sys.stderr
        )
        obs.disable_tracing()
    if args.metrics_file:
        import json

        report = {
            "schema": "spllift-metrics/v1",
            "run_id": obs.run_id(),
            "metrics": obs.metrics().describe(),
        }
        with open(args.metrics_file, "w") as handle:
            handle.write(json.dumps(report, indent=1, sort_keys=True) + "\n")
        print(f"metrics written to {args.metrics_file}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
