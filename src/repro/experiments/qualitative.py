"""Section 6.2's qualitative performance analysis.

Two observations from the paper:

1. "the analysis time taken strongly correlates with the number of flow
   functions constructed in the exploded super graph (the correlation
   coefficient was above 0.99 in all cases)";
2. "in all our benchmark setups, the A2 analysis for the full
   configuration, in which all features are enabled, constructed almost
   as many edges as SPLLIFT did on its unique run" — SPLLIFT's extra
   per-edge cost (constraints instead of booleans) is low.

This module measures both on the reproduction's subjects.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, Type

from repro.analyses import PAPER_ANALYSES
from repro.baselines.a2 import A2Problem
from repro.experiments.harness import run_spllift
from repro.ifds.problem import IFDSProblem
from repro.ifds.solver import IFDSSolver
from repro.spl.benchmarks import paper_subjects
from repro.spl.product_line import ProductLine
from repro.utils.tables import render_table
from repro.utils.timing import format_duration

__all__ = [
    "QualitativeRow",
    "run_qualitative",
    "render_qualitative",
    "correlation",
]


@dataclass
class QualitativeRow:
    benchmark: str
    analysis: str
    spllift_seconds: float
    spllift_edges: int
    a2_full_seconds: float
    a2_full_edges: int

    @property
    def edge_ratio(self) -> float:
        """SPLLIFT edges / A2-full-configuration edges."""
        if self.a2_full_edges == 0:
            return float("inf")
        return self.spllift_edges / self.a2_full_edges


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    n = len(xs)
    if n != len(ys) or n < 2:
        raise ValueError("need two same-length samples of size >= 2")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def run_qualitative(
    subjects: Sequence[Tuple[str, Callable[[], ProductLine]]] = None,
    analyses: Sequence[Tuple[str, Type[IFDSProblem]]] = PAPER_ANALYSES,
) -> List[QualitativeRow]:
    """Collect edge counts and times for SPLLIFT vs full-config A2."""
    subjects = subjects if subjects is not None else paper_subjects()
    rows: List[QualitativeRow] = []
    for name, builder in subjects:
        product_line = builder()
        for analysis_name, analysis_class in analyses:
            spllift_seconds, results = run_spllift(product_line, analysis_class)
            analysis = analysis_class(product_line.icfg)
            solver = IFDSSolver(
                A2Problem(analysis, frozenset(product_line.features_reachable))
            )
            started = time.perf_counter()
            solver.solve()
            a2_seconds = time.perf_counter() - started
            rows.append(
                QualitativeRow(
                    benchmark=name,
                    analysis=analysis_name,
                    spllift_seconds=spllift_seconds,
                    spllift_edges=results.stats["jump_functions"],
                    a2_full_seconds=a2_seconds,
                    a2_full_edges=solver.stats["path_edges"],
                )
            )
    return rows


def render_qualitative(rows: List[QualitativeRow]) -> str:
    headers = (
        "Benchmark",
        "Analysis",
        "SPLLIFT time",
        "SPLLIFT edges",
        "A2-full time",
        "A2-full edges",
        "edge ratio",
    )
    body = [
        (
            row.benchmark,
            row.analysis,
            format_duration(row.spllift_seconds),
            str(row.spllift_edges),
            format_duration(row.a2_full_seconds),
            str(row.a2_full_edges),
            f"{row.edge_ratio:.2f}",
        )
        for row in rows
    ]
    times = [row.spllift_seconds for row in rows]
    edges = [float(row.spllift_edges) for row in rows]
    r = correlation(edges, times)
    note = (
        f"\nPearson correlation (SPLLIFT edges vs time) across runs: {r:.3f}"
        "\n(paper: above 0.99 in all cases; edge ratio ≈ 1 supports the"
        " claim that full-config A2 builds almost as many edges as SPLLIFT)"
    )
    return (
        render_table(headers, body, title="Qualitative analysis (Section 6.2)")
        + note
    )
