"""Table 3: the cost of regarding the feature model.

Paper layout: per benchmark and client analysis, SPLLIFT's wall time with
the feature model *regarded* vs. explicitly *ignored*, plus (in gray) the
average duration of a single A2 run — "a lower bound for any
feature-sensitive analysis" since A2 considers just one configuration.

The paper's finding: regarding the model usually costs little, because
the early termination it enables counterbalances the extra constraint
work (Section 4.2); SPLLIFT often lands close to the A2 gold standard.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.analyses import PAPER_ANALYSES
from repro.baselines.a2 import A2Problem
from repro.core.parallel import ProcessTaskPool, resolve_parallel
from repro.experiments.harness import run_spllift_cached
from repro.experiments.table2 import _store_hit
from repro.ifds.problem import IFDSProblem
from repro.ifds.solver import IFDSSolver
from repro.obs import runtime as obs
from repro.spl.benchmarks import paper_subjects
from repro.spl.product_line import ProductLine
from repro.utils.tables import render_table
from repro.utils.timing import format_duration

__all__ = ["Table3Cell", "Table3Row", "run_table3", "render_table3"]


@dataclass
class Table3Cell:
    analysis: str
    regarded_seconds: float
    ignored_seconds: float
    a2_average_seconds: float


@dataclass
class Table3Row:
    benchmark: str
    cells: List[Table3Cell] = field(default_factory=list)


def _a2_average(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    sample_limit: int = 12,
) -> float:
    """Average single-configuration A2 time over a deterministic sample."""
    analysis = analysis_class(product_line.icfg)
    configurations = [frozenset(), frozenset(product_line.features_reachable)]
    for configuration in product_line.valid_configurations():
        configurations.append(configuration)
        if len(configurations) >= sample_limit:
            break
    total = 0.0
    for configuration in configurations:
        started = time.perf_counter()
        IFDSSolver(A2Problem(analysis, configuration)).solve()
        total += time.perf_counter() - started
    return total / len(configurations)


def _table3_cell_task(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    need_regarded: bool,
    need_ignored: bool,
    engine: Optional[str] = None,
) -> Tuple[
    Optional[float],
    Optional[Dict[str, object]],
    Optional[float],
    Optional[Dict[str, object]],
    float,
]:
    """One Table 3 cell, runnable in a worker process.

    Returns ``(regarded_seconds, regarded_record, ignored_seconds,
    ignored_record, a2_average)``; halves the parent already holds store
    hits for come back as ``None``.
    """
    regarded = regarded_record = None
    ignored = ignored_record = None
    with obs.tracer().span(
        "table3/cell",
        subject=product_line.name,
        analysis=analysis_class.__name__,
    ):
        if need_regarded:
            regarded, regarded_record, _ = run_spllift_cached(
                product_line, analysis_class, fm_mode="edge", engine=engine
            )
        if need_ignored:
            ignored, ignored_record, _ = run_spllift_cached(
                product_line, analysis_class, fm_mode="ignore", engine=engine
            )
        average = _a2_average(product_line, analysis_class)
    return regarded, regarded_record, ignored, ignored_record, average


def run_table3(
    subjects: Sequence[Tuple[str, Callable[[], ProductLine]]] = None,
    analyses: Sequence[Tuple[str, Type[IFDSProblem]]] = PAPER_ANALYSES,
    store=None,
    parallel: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[Table3Row]:
    """Measure feature-model regarded vs ignored vs A2-average.

    ``store`` routes SPLLIFT runs through the analysis service's result
    store (warm hits report the recorded cold-run timing).  ``parallel``
    (default ``$SPLLIFT_PARALLEL``, else 1) fans the independent cells
    over worker processes with submission-order assembly, exactly as
    :func:`repro.experiments.table2.run_table2`.  ``engine`` selects
    the SPLLIFT evaluation engine for every cell.
    """
    subjects = subjects if subjects is not None else paper_subjects()
    workers = resolve_parallel(parallel)
    with obs.tracer().span("table3/campaign", workers=workers):
        return _run_table3_campaign(subjects, analyses, store, workers, engine)


def _run_table3_campaign(
    subjects, analyses, store, workers, engine=None
) -> List[Table3Row]:
    prepared = []  # (row, product_line)
    for name, builder in subjects:
        prepared.append((Table3Row(benchmark=name), builder()))

    cells = []  # (row, product_line, analysis_name, analysis_class, hits)
    for row, product_line in prepared:
        for analysis_name, analysis_class in analyses:
            hits = (
                _store_hit(
                    product_line, analysis_class, store, fm_mode="edge", engine=engine
                ),
                _store_hit(
                    product_line, analysis_class, store, fm_mode="ignore", engine=engine
                ),
            )
            cells.append((row, product_line, analysis_name, analysis_class, hits))

    outcomes: List[Optional[Tuple]] = [None] * len(cells)
    if workers > 1 and len(cells) > 1:
        pool = ProcessTaskPool(max_workers=workers, max_retries=1)
        tasks = [
            (
                _table3_cell_task,
                (product_line, analysis_class, hits[0] is None, hits[1] is None, engine),
            )
            for _, product_line, _, analysis_class, hits in cells
        ]
        for index, task in enumerate(pool.run(tasks)):
            if task.ok:
                outcomes[index] = task.result

    for index, (row, product_line, analysis_name, analysis_class, hits) in enumerate(
        cells
    ):
        outcome = outcomes[index]
        if outcome is None:  # sequential, or this cell's worker failed
            outcome = _table3_cell_task(
                product_line, analysis_class, hits[0] is None, hits[1] is None, engine
            )
        regarded, regarded_record, ignored, ignored_record, average = outcome
        regarded_hit, ignored_hit = hits
        if regarded_hit is not None:
            regarded = float(regarded_hit["solve_seconds"])
        elif regarded_record is not None and store is not None:
            store.put(regarded_record)
        if ignored_hit is not None:
            ignored = float(ignored_hit["solve_seconds"])
        elif ignored_record is not None and store is not None:
            store.put(ignored_record)
        row.cells.append(
            Table3Cell(
                analysis=analysis_name,
                regarded_seconds=regarded,
                ignored_seconds=ignored,
                a2_average_seconds=average,
            )
        )
    return [row for row, _ in prepared]


def render_table3(rows: List[Table3Row]) -> str:
    """Render like the paper's Table 3."""
    headers = ["Benchmark", "Feature model"] + (
        [cell.analysis for cell in rows[0].cells] if rows else []
    )
    body = []
    for row in rows:
        body.append(
            (
                row.benchmark,
                "regarded",
                *(format_duration(c.regarded_seconds) for c in row.cells),
            )
        )
        body.append(
            (
                "",
                "ignored",
                *(format_duration(c.ignored_seconds) for c in row.cells),
            )
        )
        body.append(
            (
                "",
                "average A2",
                *(format_duration(c.a2_average_seconds) for c in row.cells),
            )
        )
    note = (
        "\n(average A2 = one configuration only; a lower bound for any "
        "feature-sensitive analysis)"
    )
    return (
        render_table(
            headers, body, title="Table 3: feature-model impact on SPLLIFT"
        )
        + note
    )
