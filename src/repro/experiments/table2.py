"""Table 2: performance of SPLLIFT vs. the A2 baseline.

Paper layout: per benchmark, the shared call-graph time ("Soot/CG"), then
for each of the three client analyses the SPLLIFT wall time and A2's total
wall time over all valid configurations — estimated coarsely ("days",
"years") where the cutoff was hit, shown in gray in the paper and with a
"≈" prefix here.

The headline claim this table reproduces: SPLLIFT avoids A2's exponential
blowup and wins by several orders of magnitude on constrained subjects,
while never being catastrophically slower on tiny ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Type

from repro.analyses import PAPER_ANALYSES
from repro.core.parallel import ProcessTaskPool, resolve_parallel
from repro.experiments.harness import (
    A2Campaign,
    _service_name_for,
    engine_job_options,
    measure_call_graph,
    run_a2_campaign,
    run_spllift_cached,
)
from repro.ifds.problem import IFDSProblem
from repro.obs import runtime as obs
from repro.spl.benchmarks import paper_subjects
from repro.spl.product_line import ProductLine
from repro.utils.tables import render_table
from repro.utils.timing import format_count, format_duration, format_estimate

__all__ = ["Table2Cell", "Table2Row", "run_table2", "render_table2"]


@dataclass
class Table2Cell:
    analysis: str
    spllift_seconds: float
    a2: A2Campaign

    @property
    def speedup(self) -> float:
        if self.spllift_seconds == 0:
            return float("inf")
        return self.a2.total_seconds / self.spllift_seconds


@dataclass
class Table2Row:
    benchmark: str
    valid_configurations: int
    call_graph_seconds: float
    cells: List[Table2Cell] = field(default_factory=list)


def _table2_cell_task(
    product_line: ProductLine,
    analysis_class: Type[IFDSProblem],
    cutoff_seconds: float,
    need_spllift: bool,
    engine: Optional[str] = None,
) -> Tuple[Optional[float], Optional[Dict[str, object]], A2Campaign]:
    """One Table 2 cell, runnable in a worker process.

    Returns ``(spllift_seconds, spllift_record, a2_campaign)``; the first
    two are ``None`` when the parent already holds a store hit for the
    SPLLIFT half (``need_spllift=False``), in which case only the A2
    campaign runs here.
    """
    seconds: Optional[float] = None
    record: Optional[Dict[str, object]] = None
    with obs.tracer().span(
        "table2/cell",
        subject=product_line.name,
        analysis=analysis_class.__name__,
    ):
        if need_spllift:
            seconds, record, _ = run_spllift_cached(
                product_line, analysis_class, engine=engine
            )
        campaign = run_a2_campaign(
            product_line, analysis_class, cutoff_seconds=cutoff_seconds
        )
    return seconds, record, campaign


def _store_hit(
    product_line: ProductLine, analysis_class, store, fm_mode="edge", engine=None
):
    """The stored SPLLIFT record for this cell, or ``None``."""
    if store is None:
        return None
    from repro.service import AnalysisJob

    job = AnalysisJob.from_product_line(
        product_line,
        _service_name_for(analysis_class),
        fm_mode=fm_mode,
        options=engine_job_options(engine),
    )
    return store.get(job.digest)


def run_table2(
    subjects: Sequence[Tuple[str, Callable[[], ProductLine]]] = None,
    analyses: Sequence[Tuple[str, Type[IFDSProblem]]] = PAPER_ANALYSES,
    cutoff_seconds: float = 60.0,
    store=None,
    parallel: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[Table2Row]:
    """Run the full Table 2 campaign (SPLLIFT and A2 per subject/analysis).

    With ``store`` (a :class:`~repro.service.ResultStore`), SPLLIFT runs
    are served through the analysis service's result store: warm hits
    skip the solver and report the recorded cold-run timing.

    ``parallel`` (default ``$SPLLIFT_PARALLEL``, else 1) fans the
    independent subject × analysis cells over worker processes; rows are
    assembled in submission order and cold SPLLIFT records are persisted
    by the parent, so the rendered table and every stored result digest
    are identical to a sequential campaign.

    ``engine`` selects the SPLLIFT evaluation engine for every cell
    (``tabulate``/``datalog``; results are bit-identical, timings are
    the A/B of interest).
    """
    subjects = subjects if subjects is not None else paper_subjects()
    workers = resolve_parallel(parallel)
    with obs.tracer().span("table2/campaign", workers=workers):
        return _run_table2_campaign(
            subjects, analyses, cutoff_seconds, store, workers, engine
        )


def _run_table2_campaign(
    subjects, analyses, cutoff_seconds, store, workers, engine=None
) -> List[Table2Row]:
    # Shared prerequisites stay in the parent: subjects are built (and
    # their call-graph time measured) once, store hits are served here.
    prepared = []  # (row, product_line)
    for name, builder in subjects:
        product_line = builder()
        row = Table2Row(
            benchmark=name,
            valid_configurations=product_line.count_valid_configurations(),
            call_graph_seconds=measure_call_graph(product_line),
        )
        prepared.append((row, product_line))

    cells = []  # (row, product_line, analysis_name, analysis_class, hit)
    for row, product_line in prepared:
        for analysis_name, analysis_class in analyses:
            hit = _store_hit(product_line, analysis_class, store, engine=engine)
            cells.append((row, product_line, analysis_name, analysis_class, hit))

    outcomes: List[Optional[Tuple]] = [None] * len(cells)
    if workers > 1 and len(cells) > 1:
        pool = ProcessTaskPool(max_workers=workers, max_retries=1)
        tasks = [
            (
                _table2_cell_task,
                (product_line, analysis_class, cutoff_seconds, hit is None, engine),
            )
            for _, product_line, _, analysis_class, hit in cells
        ]
        for index, task in enumerate(pool.run(tasks)):
            if task.ok:
                outcomes[index] = task.result

    for index, (row, product_line, analysis_name, analysis_class, hit) in enumerate(
        cells
    ):
        outcome = outcomes[index]
        if outcome is None:  # sequential, or this cell's worker failed
            outcome = _table2_cell_task(
                product_line, analysis_class, cutoff_seconds, hit is None, engine
            )
        spllift_seconds, record, campaign = outcome
        if hit is not None:
            spllift_seconds = float(hit["solve_seconds"])
        elif record is not None and store is not None:
            store.put(record)
        row.cells.append(
            Table2Cell(
                analysis=analysis_name,
                spllift_seconds=spllift_seconds,
                a2=campaign,
            )
        )
    return [row for row, _ in prepared]


def _a2_cell(campaign: A2Campaign) -> str:
    if campaign.estimated:
        return format_estimate(campaign.estimated_total_seconds)
    return format_duration(campaign.measured_seconds)


def render_table2(rows: List[Table2Row]) -> str:
    """Render like the paper's Table 2 (≈ marks coarse estimates)."""
    headers = ["Benchmark", "Configs valid", "CG"]
    analysis_names = [cell.analysis for cell in rows[0].cells] if rows else []
    for analysis_name in analysis_names:
        short = "".join(word[0] for word in analysis_name.split())
        headers.extend((f"{short} SPLLIFT", f"{short} A2"))
    body = []
    for row in rows:
        cells = [
            row.benchmark,
            format_count(row.valid_configurations),
            format_duration(row.call_graph_seconds),
        ]
        for cell in row.cells:
            cells.append(format_duration(cell.spllift_seconds))
            cells.append(_a2_cell(cell.a2))
        body.append(tuple(cells))
    legend = (
        "\n(PT=Possible Types, RD=Reaching Definitions, UV=Uninitialized "
        "Variables; ≈ marks the paper's cutoff-and-estimate protocol)"
    )
    return (
        render_table(
            headers, body, title="Table 2: SPLLIFT vs A2 performance"
        )
        + legend
    )
