"""IR-level program structure: classes, methods, and the class hierarchy.

The hierarchy powers the class-hierarchy-analysis (CHA) call graph.  As in
the paper's implementation (Section 5, "Current Limitations"), the call
graph is computed *feature-insensitively*: every method and every call site
of the product line participates, regardless of annotations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.constraints.formula import Formula
from repro.ir.instructions import Instruction, Return
from repro.minijava.ast import Type

__all__ = ["IRMethod", "IRClass", "IRProgram", "IRError"]


class IRError(ValueError):
    """Raised for malformed IR (unknown classes, unresolvable methods)."""


@dataclass
class IRMethod:
    """One lowered method body.

    ``params`` excludes the implicit ``this`` receiver, which is always the
    local named ``"this"``.  ``source_locals`` are the locals that appear in
    source declarations (as opposed to compiler temps) — the set the
    uninitialized-variables analysis seeds.
    """

    class_name: str
    name: str
    params: Tuple[str, ...]
    return_type: Type
    instructions: List[Instruction] = field(default_factory=list)
    local_types: Dict[str, Type] = field(default_factory=dict)
    source_locals: Tuple[str, ...] = ()
    annotation: Optional[Formula] = None

    @property
    def qualified_name(self) -> str:
        return f"{self.class_name}.{self.name}"

    @property
    def locals(self) -> Tuple[str, ...]:
        """All locals, including parameters, temps and ``this``."""
        return tuple(self.local_types)

    def finalize(self) -> "IRMethod":
        """Assign back-references and indices; ensure a trailing return.

        The trailing return must be *unannotated*: in a lifted CFG an
        annotated (disabled) return falls through, so every method needs an
        unconditional exit to fall through to.
        """
        last = self.instructions[-1] if self.instructions else None
        if not isinstance(last, Return) or last.annotation is not None:
            self.instructions.append(Return(None))
        for index, instruction in enumerate(self.instructions):
            instruction.method = self
            instruction.index = index
        return self

    @property
    def start_point(self) -> Instruction:
        return self.instructions[0]

    @property
    def exit_points(self) -> Tuple[Instruction, ...]:
        return tuple(
            instruction
            for instruction in self.instructions
            if isinstance(instruction, Return)
        )

    def __str__(self) -> str:
        params = ", ".join(self.params)
        lines = [f"{self.return_type} {self.qualified_name}({params}) {{"]
        for instruction in self.instructions:
            lines.append(f"  {instruction.index:3}: {instruction}")
        lines.append("}")
        return "\n".join(lines)

    def __hash__(self) -> int:
        return hash(id(self))

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass
class IRClass:
    """One class: fields (with their declared types) and methods."""

    name: str
    superclass: Optional[str]
    fields: Dict[str, Type] = field(default_factory=dict)
    methods: Dict[str, IRMethod] = field(default_factory=dict)


class IRProgram:
    """A whole lowered product line plus hierarchy queries."""

    def __init__(self, classes: Iterable[IRClass]) -> None:
        self.classes: Dict[str, IRClass] = {}
        for cls in classes:
            if cls.name in self.classes:
                raise IRError(f"duplicate class {cls.name!r}")
            self.classes[cls.name] = cls
        for cls in self.classes.values():
            if cls.superclass is not None and cls.superclass not in self.classes:
                raise IRError(
                    f"class {cls.name!r} extends unknown class {cls.superclass!r}"
                )
        self._subclasses: Dict[str, Set[str]] = {name: set() for name in self.classes}
        for cls in self.classes.values():
            if cls.superclass is not None:
                self._subclasses[cls.superclass].add(cls.name)

    # ------------------------------------------------------------------
    # Hierarchy
    # ------------------------------------------------------------------

    def class_named(self, name: str) -> IRClass:
        try:
            return self.classes[name]
        except KeyError:
            raise IRError(f"unknown class {name!r}") from None

    def supertypes(self, name: str) -> Iterator[str]:
        """``name`` and its ancestors, nearest first."""
        current: Optional[str] = name
        while current is not None:
            yield current
            current = self.class_named(current).superclass

    def subtypes(self, name: str) -> Iterator[str]:
        """``name`` and all transitive subclasses (pre-order)."""
        self.class_named(name)
        stack = [name]
        while stack:
            current = stack.pop()
            yield current
            stack.extend(sorted(self._subclasses[current], reverse=True))

    def resolve_method(self, class_name: str, method_name: str) -> Optional[IRMethod]:
        """Walk up the hierarchy to find the implementation of a method."""
        for ancestor in self.supertypes(class_name):
            method = self.classes[ancestor].methods.get(method_name)
            if method is not None:
                return method
        return None

    def resolve_field(self, class_name: str, field_name: str) -> Optional[Tuple[str, Type]]:
        """Find the declaring class and type of a field, walking up."""
        for ancestor in self.supertypes(class_name):
            field_type = self.classes[ancestor].fields.get(field_name)
            if field_type is not None:
                return ancestor, field_type
        return None

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def all_methods(self) -> Iterator[IRMethod]:
        for cls in self.classes.values():
            yield from cls.methods.values()

    def method(self, qualified_name: str) -> IRMethod:
        """Look up ``Class.method``."""
        class_name, _, method_name = qualified_name.partition(".")
        cls = self.class_named(class_name)
        try:
            return cls.methods[method_name]
        except KeyError:
            raise IRError(f"unknown method {qualified_name!r}") from None

    def __str__(self) -> str:
        parts = []
        for cls in self.classes.values():
            heritage = f" extends {cls.superclass}" if cls.superclass else ""
            parts.append(f"class {cls.name}{heritage} {{")
            for field_name, field_type in cls.fields.items():
                parts.append(f"  {field_type} {field_name};")
            for method in cls.methods.values():
                parts.append("  " + str(method).replace("\n", "\n  "))
            parts.append("}")
        return "\n".join(parts)
