"""Jimple-like three-address instructions.

Soot's Jimple is the IR the paper analyzes: "statements are never nested,
and all control-flow constructs are reduced to simple conditional and
unconditional branches".  This module defines the equivalent IR.  The
statement classes mirror exactly the cases of the paper's Figure 4 lifting
rules:

- :class:`Assign`, :class:`FieldStore`, :class:`Print`, :class:`Declare` —
  normal, non-branching statements (Fig. 4a),
- :class:`Goto` — unconditional branches (Fig. 4b),
- :class:`If` — conditional branches (Fig. 4c),
- :class:`Invoke` — call statements (call, return and call-to-return flow
  functions, Fig. 4a/4d),
- :class:`Return` — method exits.

Every instruction carries an optional feature ``annotation`` (a
propositional formula).  Instructions are identity-hashed, globally unique
program points; ``method`` and ``index`` are assigned when the enclosing
:class:`~repro.ir.program.IRMethod` is finalized.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.constraints.formula import Formula
from repro.minijava.ast import Type

__all__ = [
    "Atom",
    "Const",
    "LocalRef",
    "RValue",
    "BinOp",
    "UnOp",
    "FieldLoad",
    "NewObject",
    "SecretValue",
    "NondetValue",
    "Instruction",
    "Assign",
    "Declare",
    "FieldStore",
    "If",
    "Goto",
    "Invoke",
    "Return",
    "Print",
]


# ----------------------------------------------------------------------
# Atoms and right-hand-side values
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Const:
    """A literal operand (int, bool, or ``None`` for ``null``)."""

    value: Optional[Union[int, bool]]

    def __str__(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class LocalRef:
    """A reference to a local variable (or parameter, or ``this``)."""

    name: str

    def __str__(self) -> str:
        return self.name


Atom = Union[Const, LocalRef]


@dataclass(frozen=True)
class BinOp:
    """``left op right`` over atoms."""

    op: str
    left: Atom
    right: Atom

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class UnOp:
    """``op operand`` over an atom."""

    op: str
    operand: Atom

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class FieldLoad:
    """``base.field`` — reading an instance field."""

    base: LocalRef
    field: str
    field_class: str  # class that declares the field (after resolution)

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


@dataclass(frozen=True)
class NewObject:
    """``new C()`` — an allocation site."""

    class_name: str

    def __str__(self) -> str:
        return f"new {self.class_name}()"


@dataclass(frozen=True)
class SecretValue:
    """The ``secret()`` intrinsic — the taint source of the running example."""

    def __str__(self) -> str:
        return "secret()"


@dataclass(frozen=True)
class NondetValue:
    """The ``nondet()`` intrinsic — an arbitrary untainted int (used to
    make branch conditions genuinely undetermined for the analyses and
    supplied by a configurable source in the interpreter)."""

    def __str__(self) -> str:
        return "nondet()"


RValue = Union[
    Const, LocalRef, BinOp, UnOp, FieldLoad, NewObject, SecretValue, NondetValue
]


# ----------------------------------------------------------------------
# Instructions
# ----------------------------------------------------------------------


@dataclass(eq=False)
class Instruction:
    """Base class: one Jimple-like statement.

    Instructions compare and hash by identity — each is a unique program
    point in the exploded super graph.
    """

    annotation: Optional[Formula] = field(default=None, kw_only=True)
    line: int = field(default=0, kw_only=True)
    # Backrefs filled in by IRMethod.finalize():
    method: "object" = field(default=None, kw_only=True, repr=False)
    index: int = field(default=-1, kw_only=True)

    @property
    def location(self) -> str:
        """Human-readable ``Class.method:index`` location string."""
        if self.method is None:
            return f"<detached>:{self.index}"
        return f"{self.method.qualified_name}:{self.index}"

    def _ann(self) -> str:
        return f"  #if ({self.annotation})" if self.annotation is not None else ""


@dataclass(eq=False)
class Declare(Instruction):
    """Marks the declaration point of a source-level local (no effect).

    Kept so diagnostics can point at source declarations; the
    uninitialized-variables analysis seeds its facts at method entry the
    way Jimple hoists locals.
    """

    name: str = ""

    def __str__(self) -> str:
        return f"declare {self.name};{self._ann()}"


@dataclass(eq=False)
class Assign(Instruction):
    """``target = rvalue`` where rvalue is flat (three-address form)."""

    target: str = ""
    rvalue: RValue = None

    def __str__(self) -> str:
        return f"{self.target} = {self.rvalue};{self._ann()}"


@dataclass(eq=False)
class FieldStore(Instruction):
    """``base.field = value``."""

    base: LocalRef = None
    field_name: str = ""
    field_class: str = ""
    value: Atom = None

    def __str__(self) -> str:
        return f"{self.base}.{self.field_name} = {self.value};{self._ann()}"


@dataclass(eq=False)
class If(Instruction):
    """``if (cond) goto target`` — conditional branch, Jimple style."""

    cond: Union[Atom, BinOp, UnOp] = None
    target: int = -1

    def __str__(self) -> str:
        return f"if ({self.cond}) goto {self.target};{self._ann()}"


@dataclass(eq=False)
class Goto(Instruction):
    """``goto target`` — unconditional branch."""

    target: int = -1

    def __str__(self) -> str:
        return f"goto {self.target};{self._ann()}"


@dataclass(eq=False)
class Invoke(Instruction):
    """``result = receiver.method(args)`` — the only inter-procedural
    statement.  ``static_type`` is the receiver's declared class, used by
    the (feature-insensitive) CHA call graph."""

    result: Optional[str] = None
    receiver: LocalRef = None
    method_name: str = ""
    args: Tuple[Atom, ...] = ()
    static_type: str = ""

    def __str__(self) -> str:
        prefix = f"{self.result} = " if self.result is not None else ""
        rendered_args = ", ".join(str(arg) for arg in self.args)
        return (
            f"{prefix}{self.receiver}.{self.method_name}({rendered_args});"
            f"{self._ann()}"
        )


@dataclass(eq=False)
class Return(Instruction):
    """``return value?`` — method exit."""

    value: Optional[Atom] = None

    def __str__(self) -> str:
        if self.value is None:
            return f"return;{self._ann()}"
        return f"return {self.value};{self._ann()}"


@dataclass(eq=False)
class Print(Instruction):
    """``print(value)`` — the observable sink."""

    value: Atom = None

    def __str__(self) -> str:
        return f"print({self.value});{self._ann()}"
