"""The inter-procedural control-flow graph (ICFG).

The interface mirrors what Heros expects from Soot: per-statement
successors, call/exit classification, callee and return-site lookup, and
start points per method.  IFDS/IDE solvers are written against this class
only — they never touch the AST or the frontend.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro.ir.callgraph import CallGraph, build_call_graph
from repro.ir.instructions import Goto, If, Instruction, Invoke, Return
from repro.ir.program import IRError, IRMethod, IRProgram

__all__ = ["ICFG"]


class ICFG:
    """Inter-procedural CFG over the reachable part of an IR program."""

    def __init__(self, program: IRProgram, entry_points: Tuple[IRMethod, ...]) -> None:
        if not entry_points:
            raise IRError("at least one entry point is required")
        self.program = program
        self.entry_points = entry_points
        self.call_graph: CallGraph = build_call_graph(program, entry_points)
        self._successors: Dict[Instruction, Tuple[Instruction, ...]] = {}
        for method in self.call_graph.reachable_methods:
            self._compute_successors(method)

    @classmethod
    def for_entry(cls, program: IRProgram, qualified_name: str = "Main.main") -> "ICFG":
        """Convenience constructor from a ``Class.method`` entry name."""
        return cls(program, (program.method(qualified_name),))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def _compute_successors(self, method: IRMethod) -> None:
        instructions = method.instructions
        for instruction in instructions:
            if isinstance(instruction, Return):
                successors: Tuple[Instruction, ...] = ()
            elif isinstance(instruction, Goto):
                successors = (instructions[instruction.target],)
            elif isinstance(instruction, If):
                fall_through = instructions[instruction.index + 1]
                branch_target = instructions[instruction.target]
                successors = (fall_through, branch_target)
            else:
                successors = (instructions[instruction.index + 1],)
            self._successors[instruction] = successors

    # ------------------------------------------------------------------
    # Queries (the Heros-style interface)
    # ------------------------------------------------------------------

    def successors_of(self, instruction: Instruction) -> Tuple[Instruction, ...]:
        """Intra-procedural control-flow successors.

        For an :class:`If`, the *first* successor is the fall-through and
        the second is the branch target — the lifted flow functions for
        conditional branches depend on this distinction (Figure 4c).
        """
        return self._successors[instruction]

    def is_call(self, instruction: Instruction) -> bool:
        return isinstance(instruction, Invoke)

    def is_exit(self, instruction: Instruction) -> bool:
        return isinstance(instruction, Return)

    def is_branch(self, instruction: Instruction) -> bool:
        return isinstance(instruction, (If, Goto))

    def callees_of(self, call: Instruction) -> Tuple[IRMethod, ...]:
        """Possible dispatch targets of a call site (CHA)."""
        return self.call_graph.callees(call)  # type: ignore[arg-type]

    def callers_of(self, method: IRMethod) -> Tuple[Instruction, ...]:
        return self.call_graph.callers(method)

    def return_sites_of(self, call: Instruction) -> Tuple[Instruction, ...]:
        """The statements control returns to after the call completes."""
        return self._successors[call]

    def method_of(self, instruction: Instruction) -> IRMethod:
        return instruction.method

    def start_point_of(self, method: IRMethod) -> Instruction:
        return method.start_point

    def exit_points_of(self, method: IRMethod) -> Tuple[Instruction, ...]:
        return method.exit_points

    def call_sites_in(self, method: IRMethod) -> Iterator[Instruction]:
        for instruction in method.instructions:
            if isinstance(instruction, Invoke):
                yield instruction

    @property
    def reachable_methods(self) -> Tuple[IRMethod, ...]:
        return self.call_graph.reachable_methods

    def reachable_instructions(self) -> Iterator[Instruction]:
        for method in self.reachable_methods:
            yield from method.instructions

    def instruction_count(self) -> int:
        return sum(len(m.instructions) for m in self.reachable_methods)

    def annotated_feature_names(self) -> "frozenset[str]":
        """Features mentioned on reachable instructions (Table 1's
        "reachable features")."""
        names: set = set()
        for instruction in self.reachable_instructions():
            if instruction.annotation is not None:
                names |= instruction.annotation.variables()
        return frozenset(names)
