"""Content digests for lowered methods, local and transitive.

Incremental re-analysis keys a method's stored IFDS/IDE summaries by a
*transitive* content digest: a hash of the method's own lowered body
combined with the digests of everything it can call.  An edit to one
method therefore changes the digests of that method and of all its
transitive callers — exactly the dirty closure that must be re-tabulated
— while every other method keeps its digest and its stored summaries
stay addressable.

Recursion makes the naive "hash of body + callee hashes" definition
circular, so the transitive digest is computed over the condensation of
the call graph: Tarjan's algorithm groups mutually-recursive methods
into strongly connected components, each component gets one digest from
its members' local digests plus its callee components' digests, and a
method's transitive digest mixes its own local digest into its
component's.  Methods in the same recursion group share fate (editing
one dirties all), which is the correct invalidation granularity — their
summaries are a joint fixed point.

Digests are content-only: they cover the lowered instructions (including
operand types that matter for dispatch), signature, local typing and the
method-level ``#ifdef`` annotation, but not statement line numbers, so
edits that merely shift code up or down the file do not invalidate
untouched methods.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List

from repro.ir.callgraph import CallGraph
from repro.ir.instructions import Instruction, Invoke
from repro.ir.program import IRMethod

__all__ = [
    "DIGEST_VERSION",
    "method_local_digest",
    "transitive_method_digests",
]

# Bump when the digest recipe changes: stored summaries keyed under an
# older recipe must read as misses, never as stale hits.
DIGEST_VERSION = "spllift-method-digest/v1"


def _instruction_lines(instruction: Instruction) -> Iterable[str]:
    yield str(instruction)
    if isinstance(instruction, Invoke):
        # str(Invoke) prints the receiver local but not its declared type,
        # which CHA dispatch depends on.
        yield f"  static_type={instruction.static_type}"


def method_local_digest(method: IRMethod) -> str:
    """Digest of one method's own lowered content, ignoring callees."""
    hasher = hashlib.sha256()
    lines: List[str] = [
        DIGEST_VERSION,
        method.qualified_name,
        f"params={','.join(method.params)}",
        f"returns={method.return_type}",
        f"annotation={method.annotation}",
        "locals=" + ",".join(f"{n}:{t}" for n, t in sorted(method.local_types.items())),
        "source_locals=" + ",".join(method.source_locals),
    ]
    for instruction in method.instructions:
        lines.extend(_instruction_lines(instruction))
    hasher.update("\n".join(lines).encode("utf-8"))
    return hasher.hexdigest()


def _sha256(lines: Iterable[str]) -> str:
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def transitive_method_digests(call_graph: CallGraph) -> Dict[IRMethod, str]:
    """Transitive content digest for every reachable method.

    A method's digest covers its local digest and, via the call-graph
    condensation, the local digests of everything it can transitively
    call.  Two programs assign a method the same digest exactly when the
    method and its whole callee cone are content-identical — the
    condition under which its summaries are reusable verbatim.
    """
    methods = list(call_graph.reachable_methods)
    reachable = set(methods)
    callees: Dict[IRMethod, List[IRMethod]] = {}
    for method in methods:
        targets = set()
        for instruction in method.instructions:
            if isinstance(instruction, Invoke):
                targets.update(
                    t for t in call_graph.callees(instruction) if t in reachable
                )
        callees[method] = sorted(targets, key=lambda m: m.qualified_name)

    local = {method: method_local_digest(method) for method in methods}

    # Iterative Tarjan SCC.  Components complete callees-first, so every
    # callee component's digest exists by the time its callers finish.
    index: Dict[IRMethod, int] = {}
    lowlink: Dict[IRMethod, int] = {}
    on_stack: Dict[IRMethod, bool] = {}
    stack: List[IRMethod] = []
    component_of: Dict[IRMethod, int] = {}
    component_digest: Dict[int, str] = {}
    counter = 0
    components = 0

    for root in methods:
        if root in index:
            continue
        work: List[tuple] = [(root, 0)]
        while work:
            node, child_pos = work.pop()
            children = callees[node]
            if child_pos == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = True
            else:
                # Resuming after children[child_pos - 1] completed.
                lowlink[node] = min(lowlink[node], lowlink[children[child_pos - 1]])
            recurse = False
            for pos in range(child_pos, len(children)):
                child = children[pos]
                if child not in index:
                    work.append((node, pos + 1))
                    work.append((child, 0))
                    recurse = True
                    break
                if on_stack.get(child):
                    lowlink[node] = min(lowlink[node], index[child])
            if recurse:
                continue
            if lowlink[node] == index[node]:
                members: List[IRMethod] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    members.append(member)
                    if member is node:
                        break
                component = components
                components += 1
                for member in members:
                    component_of[member] = component
                callee_components = sorted(
                    {
                        component_digest[component_of[target]]
                        for member in members
                        for target in callees[member]
                        if component_of[target] != component
                    }
                )
                component_digest[component] = _sha256(
                    ["scc"]
                    + sorted(local[member] for member in members)
                    + callee_components
                )

    return {
        method: _sha256(
            ["method", method.qualified_name, local[method],
             component_digest[component_of[method]]]
        )
        for method in methods
    }
