"""Reverse-post-order ranking of ICFG statements.

Worklist prioritization for the tabulation solvers: popping exploded-graph
nodes in reverse post-order of their method's CFG processes a statement
only after (most of) its predecessors, so jump functions arrive at merge
points closer to their final joined form — measurably fewer re-joins and
re-propagations than FIFO on branchy methods.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir.icfg import ICFG
from repro.ir.instructions import Instruction
from repro.ir.program import IRMethod

__all__ = ["RPORanker"]


class RPORanker:
    """Lazily ranks statements in per-method reverse post-order.

    Methods are ranked in first-touch order: the first statement queried
    from a not-yet-ranked method triggers one iterative DFS from the
    method's start point, and every reachable statement gets a global rank
    ``base + rpo_index``.  Statements unreachable from the start point
    (dead code kept in the IR) rank after the reachable ones, so every
    statement has a total order and the priority queue never blocks.
    """

    __slots__ = ("icfg", "_rank", "_seen_methods", "_next")

    def __init__(self, icfg: ICFG) -> None:
        self.icfg = icfg
        self._rank: Dict[Instruction, int] = {}
        self._seen_methods: Set[IRMethod] = set()
        self._next = 0

    def rank_of(self, stmt: Instruction) -> int:
        """The statement's global priority (lower pops first)."""
        rank = self._rank.get(stmt)
        if rank is not None:
            return rank
        method = self.icfg.method_of(stmt)
        if method not in self._seen_methods:
            self._rank_method(method)
            rank = self._rank.get(stmt)
            if rank is not None:
                return rank
        # Synthetic statement outside the method's instruction list: order
        # it after everything ranked so far.
        rank = self._next
        self._next += 1
        self._rank[stmt] = rank
        return rank

    def _rank_method(self, method: IRMethod) -> None:
        self._seen_methods.add(method)
        icfg = self.icfg
        start = icfg.start_point_of(method)
        post: List[Instruction] = []
        seen = {start}
        stack = [(start, iter(icfg.successors_of(start)))]
        while stack:
            node, successors = stack[-1]
            for succ in successors:
                if succ not in seen:
                    seen.add(succ)
                    stack.append((succ, iter(icfg.successors_of(succ))))
                    break
            else:
                stack.pop()
                post.append(node)
        ranks = self._rank
        base = self._next
        for offset, node in enumerate(reversed(post)):
            ranks[node] = base + offset
        self._next = base + len(post)
        for stmt in method.instructions:
            if stmt not in ranks:
                ranks[stmt] = self._next
                self._next += 1
