"""IR well-formedness verifier.

Like real compiler infrastructures, the IR has invariants that every
producer (the lowering, hand-built test programs, future frontends) must
maintain and every consumer may rely on.  :func:`verify_method` /
:func:`verify_program` check them and raise :class:`IRVerificationError`
with a precise message:

- instruction back-references (``method``/``index``) are consistent;
- branch targets are in range and never point at themselves;
- the last instruction is an *unannotated* return (so disabled returns
  always have somewhere to fall through to — required by the lifted CFG);
- every referenced local is declared in ``local_types`` (params, temps,
  ``this`` and source locals alike);
- invoke statements reference resolvable classes/methods with matching
  arity, field operations resolvable fields;
- annotations only mention features (no free non-feature terms is *not*
  checked — feature models may add variables — but annotation formulas
  must be well-formed ``Formula`` instances).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.constraints.formula import Formula
from repro.ir.instructions import (
    Assign,
    Atom,
    BinOp,
    Const,
    Declare,
    FieldLoad,
    FieldStore,
    Goto,
    If,
    Instruction,
    Invoke,
    LocalRef,
    Print,
    Return,
    UnOp,
)
from repro.ir.program import IRMethod, IRProgram

__all__ = ["IRVerificationError", "verify_method", "verify_program"]


class IRVerificationError(ValueError):
    """Raised when the IR violates a structural invariant."""


def verify_program(program: IRProgram) -> None:
    """Verify every method of the program."""
    for method in program.all_methods():
        verify_method(method, program)


def verify_method(method: IRMethod, program: IRProgram = None) -> None:
    """Verify one method; ``program`` enables cross-class checks."""
    instructions = method.instructions
    if not instructions:
        raise IRVerificationError(f"{method.qualified_name}: empty body")
    last = instructions[-1]
    if not isinstance(last, Return):
        raise IRVerificationError(
            f"{method.qualified_name}: last instruction is not a return"
        )
    if last.annotation is not None:
        raise IRVerificationError(
            f"{method.qualified_name}: trailing return must be unannotated"
        )
    for index, instruction in enumerate(instructions):
        where = f"{method.qualified_name}:{index}"
        if instruction.method is not method:
            raise IRVerificationError(f"{where}: wrong method back-reference")
        if instruction.index != index:
            raise IRVerificationError(
                f"{where}: index field is {instruction.index}"
            )
        if instruction.annotation is not None and not isinstance(
            instruction.annotation, Formula
        ):
            raise IRVerificationError(f"{where}: annotation is not a Formula")
        if isinstance(instruction, (If, Goto)):
            target = instruction.target
            if not isinstance(target, int) or not 0 <= target < len(instructions):
                raise IRVerificationError(
                    f"{where}: branch target {target!r} out of range"
                )
            if target == index:
                raise IRVerificationError(f"{where}: self-targeting branch")
        for name in _locals_referenced(instruction):
            if name not in method.local_types:
                raise IRVerificationError(
                    f"{where}: reference to undeclared local {name!r}"
                )
        if program is not None:
            _verify_resolution(instruction, where, program)
    for name in method.source_locals:
        if name not in method.local_types:
            raise IRVerificationError(
                f"{method.qualified_name}: source local {name!r} untyped"
            )


def _verify_resolution(
    instruction: Instruction, where: str, program: IRProgram
) -> None:
    if isinstance(instruction, Invoke):
        if instruction.static_type not in program.classes:
            raise IRVerificationError(
                f"{where}: unknown receiver class {instruction.static_type!r}"
            )
        target = program.resolve_method(
            instruction.static_type, instruction.method_name
        )
        if target is None:
            raise IRVerificationError(
                f"{where}: unresolvable method "
                f"{instruction.static_type}.{instruction.method_name}"
            )
        if len(target.params) != len(instruction.args):
            raise IRVerificationError(
                f"{where}: arity mismatch calling {target.qualified_name} "
                f"({len(instruction.args)} args, {len(target.params)} params)"
            )
    elif isinstance(instruction, FieldStore):
        if program.resolve_field(instruction.field_class, instruction.field_name) is None:
            raise IRVerificationError(
                f"{where}: unresolvable field "
                f"{instruction.field_class}.{instruction.field_name}"
            )
    elif isinstance(instruction, Assign) and isinstance(
        instruction.rvalue, FieldLoad
    ):
        load = instruction.rvalue
        if program.resolve_field(load.field_class, load.field) is None:
            raise IRVerificationError(
                f"{where}: unresolvable field {load.field_class}.{load.field}"
            )


def _atoms(values: Iterable) -> List[LocalRef]:
    return [value for value in values if isinstance(value, LocalRef)]


def _locals_referenced(instruction: Instruction) -> List[str]:
    refs: List[LocalRef] = []
    if isinstance(instruction, Assign):
        refs.extend(_rvalue_refs(instruction.rvalue))
        return [instruction.target] + [ref.name for ref in refs]
    if isinstance(instruction, Declare):
        return [instruction.name]
    if isinstance(instruction, FieldStore):
        refs.extend(_atoms((instruction.base, instruction.value)))
    elif isinstance(instruction, If):
        refs.extend(_rvalue_refs(instruction.cond))
    elif isinstance(instruction, Invoke):
        refs.extend(_atoms((instruction.receiver, *instruction.args)))
        names = [ref.name for ref in refs]
        if instruction.result is not None:
            names.append(instruction.result)
        return names
    elif isinstance(instruction, Return):
        if instruction.value is not None:
            refs.extend(_atoms((instruction.value,)))
    elif isinstance(instruction, Print):
        refs.extend(_atoms((instruction.value,)))
    return [ref.name for ref in refs]


def _rvalue_refs(rvalue) -> List[LocalRef]:
    if isinstance(rvalue, LocalRef):
        return [rvalue]
    if isinstance(rvalue, BinOp):
        return _atoms((rvalue.left, rvalue.right))
    if isinstance(rvalue, UnOp):
        return _atoms((rvalue.operand,))
    if isinstance(rvalue, FieldLoad):
        return [rvalue.base]
    return []
