"""Jimple-like IR: instructions, lowering, call graph, ICFG."""

from repro.ir.callgraph import CallGraph, build_call_graph
from repro.ir.icfg import ICFG
from repro.ir.instructions import (
    Assign,
    Atom,
    BinOp,
    Const,
    Declare,
    FieldLoad,
    FieldStore,
    Goto,
    If,
    Instruction,
    Invoke,
    LocalRef,
    NewObject,
    NondetValue,
    Print,
    Return,
    RValue,
    SecretValue,
    UnOp,
)
from repro.ir.lowering import INTRINSIC_METHODS, LoweringError, lower_program
from repro.ir.program import IRClass, IRError, IRMethod, IRProgram
from repro.ir.verify import IRVerificationError, verify_method, verify_program

__all__ = [
    "Instruction",
    "Assign",
    "Declare",
    "FieldStore",
    "If",
    "Goto",
    "Invoke",
    "Return",
    "Print",
    "Atom",
    "Const",
    "LocalRef",
    "BinOp",
    "UnOp",
    "FieldLoad",
    "NewObject",
    "SecretValue",
    "NondetValue",
    "RValue",
    "IRMethod",
    "IRClass",
    "IRProgram",
    "IRError",
    "lower_program",
    "LoweringError",
    "INTRINSIC_METHODS",
    "CallGraph",
    "build_call_graph",
    "ICFG",
    "verify_program",
    "verify_method",
    "IRVerificationError",
]
