"""Lowering MiniJava ASTs to the Jimple-like IR.

Follows Soot's Jimple conventions: expressions are flattened into
three-address form with compiler temporaries (``$t0``, ``$t1``, ...),
structured control flow becomes explicit conditional/unconditional
branches, and local declarations are hoisted to the method level.

Feature annotations are conjoined along the nesting path and attached to
every instruction generated for an annotated statement.  Annotations on
whole members (methods/fields) are conjoined into each of the member's
instructions; a method whose annotation is disabled therefore behaves like
a method with an entirely disabled body (see DESIGN.md for the discussion
of member-level annotations and dispatch).

Light type checking happens here as a side effect: receivers must have
class types, called methods and accessed fields must resolve in the class
hierarchy.  Violations raise :class:`LoweringError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

from repro.constraints.formula import And, Formula
from repro.ir.instructions import (
    Assign,
    Atom,
    BinOp,
    Const,
    Declare,
    FieldLoad,
    FieldStore,
    Goto,
    If,
    Instruction,
    Invoke,
    LocalRef,
    NewObject,
    NondetValue,
    Print,
    Return,
    RValue,
    SecretValue,
    UnOp,
)
from repro.ir.program import IRClass, IRMethod, IRProgram
from repro.minijava import ast

__all__ = ["lower_program", "LoweringError", "INTRINSIC_METHODS"]

#: Methods understood natively by the analyses rather than resolved via the
#: class hierarchy.  ``secret()`` produces a tainted int (the paper's running
#: example); ``nondet()`` produces an arbitrary untainted int.
INTRINSIC_METHODS = frozenset(("secret", "nondet"))

_COMPARISONS = frozenset(("==", "!=", "<", "<=", ">", ">="))
_BOOLEAN_OPS = frozenset(("&&", "||"))


class LoweringError(ValueError):
    """Raised when the program cannot be lowered (type errors etc.)."""


def lower_program(program: ast.Program) -> IRProgram:
    """Lower a parsed product line to IR, preserving feature annotations."""
    skeletons: Dict[str, IRClass] = {}
    for cls in program.classes:
        if cls.name in skeletons:
            raise LoweringError(f"duplicate class {cls.name!r}")
        fields: Dict[str, ast.Type] = {}
        for fld in cls.fields:
            fields[fld.name] = fld.type
        skeletons[cls.name] = IRClass(cls.name, cls.superclass, fields, {})
    ir_program = IRProgram(skeletons.values())

    declarations: Dict[Tuple[str, str], ast.MethodDecl] = {}
    for cls in program.classes:
        for method in cls.methods:
            key = (cls.name, method.name)
            if key in declarations:
                raise LoweringError(
                    f"duplicate method {cls.name}.{method.name} "
                    "(alternative member implementations are not supported; "
                    "guard statements inside one body instead)"
                )
            declarations[key] = method

    for cls in program.classes:
        for method_decl in cls.methods:
            lowering = _MethodLowering(ir_program, cls, method_decl, declarations)
            ir_method = lowering.lower()
            skeletons[cls.name].methods[method_decl.name] = ir_method
    return ir_program


class _Label:
    """A forward-reference branch target, resolved after emission."""

    __slots__ = ("index",)

    def __init__(self) -> None:
        self.index: Optional[int] = None


class _MethodLowering:
    def __init__(
        self,
        ir_program: IRProgram,
        cls: ast.ClassDecl,
        decl: ast.MethodDecl,
        declarations: Dict[Tuple[str, str], ast.MethodDecl],
    ) -> None:
        self._program = ir_program
        self._class = cls
        self._decl = decl
        self._declarations = declarations
        self._instructions: List[Instruction] = []
        self._pending_branches: List[Union[If, Goto]] = []
        self._local_types: Dict[str, ast.Type] = {"this": ast.Type(cls.name)}
        self._source_locals: List[str] = []
        self._temp_counter = 0
        self._annotations: List[Formula] = (
            [decl.annotation] if decl.annotation is not None else []
        )
        self._line = decl.line

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def lower(self) -> IRMethod:
        for param in self._decl.params:
            if param.name in self._local_types:
                raise LoweringError(
                    f"{self._qualified}: duplicate parameter {param.name!r}"
                )
            self._local_types[param.name] = param.type
        self._hoist_declarations(self._decl.body)
        self._block(self._decl.body)
        self._resolve_branches()
        method = IRMethod(
            class_name=self._class.name,
            name=self._decl.name,
            params=self._decl.param_names,
            return_type=self._decl.return_type,
            instructions=self._instructions,
            local_types=dict(self._local_types),
            source_locals=tuple(self._source_locals),
            annotation=self._decl.annotation,
        )
        return method.finalize()

    @property
    def _qualified(self) -> str:
        return f"{self._class.name}.{self._decl.name}"

    # ------------------------------------------------------------------
    # Declarations (Jimple-style hoisting)
    # ------------------------------------------------------------------

    def _hoist_declarations(self, block: ast.Block) -> None:
        for stmt in block.statements:
            if isinstance(stmt, ast.VarDecl):
                if stmt.name in self._local_types:
                    raise LoweringError(
                        f"{self._qualified}: duplicate local {stmt.name!r}"
                    )
                self._local_types[stmt.name] = stmt.type
                self._source_locals.append(stmt.name)
            elif isinstance(stmt, ast.Block):
                self._hoist_declarations(stmt)
            elif isinstance(stmt, ast.IfStmt):
                self._hoist_declarations(stmt.then_block)
                if stmt.else_block is not None:
                    self._hoist_declarations(stmt.else_block)
            elif isinstance(stmt, ast.WhileStmt):
                self._hoist_declarations(stmt.body)

    # ------------------------------------------------------------------
    # Emission helpers
    # ------------------------------------------------------------------

    def _current_annotation(self) -> Optional[Formula]:
        if not self._annotations:
            return None
        if len(self._annotations) == 1:
            return self._annotations[0]
        return And(tuple(self._annotations))

    def _emit(self, instruction: Instruction) -> Instruction:
        instruction.annotation = self._current_annotation()
        if instruction.line == 0:
            instruction.line = self._line
        self._instructions.append(instruction)
        return instruction

    def _bind(self, label: _Label) -> None:
        label.index = len(self._instructions)

    def _emit_branch(self, instruction: Union[If, Goto], label: _Label) -> None:
        instruction.target = label  # type: ignore[assignment]
        self._emit(instruction)
        self._pending_branches.append(instruction)

    def _resolve_branches(self) -> None:
        end_needed = False
        for branch in self._pending_branches:
            label = branch.target
            assert isinstance(label, _Label) and label.index is not None
            if label.index == len(self._instructions):
                end_needed = True
        if end_needed:
            # Some branch targets the end of the body; materialize it.
            self._instructions.append(Return(None))
        for branch in self._pending_branches:
            branch.target = branch.target.index  # type: ignore[union-attr]

    def _new_temp(self, temp_type: ast.Type) -> str:
        name = f"$t{self._temp_counter}"
        self._temp_counter += 1
        self._local_types[name] = temp_type
        return name

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            self._statement(stmt)

    def _statement(self, stmt: ast.Stmt) -> None:
        pushed = stmt.annotation is not None
        if pushed:
            self._annotations.append(stmt.annotation)
        self._line = stmt.line or self._line
        try:
            self._statement_body(stmt)
        finally:
            if pushed:
                self._annotations.pop()

    def _statement_body(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is None:
                self._emit(Declare(name=stmt.name))
            else:
                self._assign_local(stmt.name, stmt.init)
        elif isinstance(stmt, ast.AssignStmt):
            self._assignment(stmt)
        elif isinstance(stmt, ast.IfStmt):
            self._if(stmt)
        elif isinstance(stmt, ast.WhileStmt):
            self._while(stmt)
        elif isinstance(stmt, ast.ReturnStmt):
            value = None if stmt.value is None else self._atom(stmt.value)
            self._emit(Return(value))
        elif isinstance(stmt, ast.PrintStmt):
            self._emit(Print(self._atom(stmt.value)))
        elif isinstance(stmt, ast.ExprStmt):
            if not isinstance(stmt.expr, ast.Call):
                raise LoweringError(
                    f"{self._qualified}: expression statement must be a call"
                )
            self._call(stmt.expr, result=None)
        else:
            raise LoweringError(f"{self._qualified}: unknown statement {stmt!r}")

    def _assignment(self, stmt: ast.AssignStmt) -> None:
        if isinstance(stmt.target, ast.VarRef):
            name = stmt.target.name
            if name not in self._local_types:
                raise LoweringError(
                    f"{self._qualified}: assignment to undeclared local {name!r}"
                )
            self._assign_local(name, stmt.value)
        elif isinstance(stmt.target, ast.FieldAccess):
            base = self._local_atom(stmt.target.receiver)
            declaring, _ = self._field_info(stmt.target.receiver, stmt.target.field)
            value = self._atom(stmt.value)
            self._emit(
                FieldStore(
                    base=base,
                    field_name=stmt.target.field,
                    field_class=declaring,
                    value=value,
                )
            )
        else:
            raise LoweringError(
                f"{self._qualified}: invalid assignment target {stmt.target!r}"
            )

    def _assign_local(self, name: str, value: ast.Expr) -> None:
        if isinstance(value, ast.Call):
            self._call(value, result=name)
        else:
            self._emit(Assign(target=name, rvalue=self._rvalue(value)))

    def _if(self, stmt: ast.IfStmt) -> None:
        cond = self._branch_condition(stmt.cond)
        then_label = _Label()
        end_label = _Label()
        self._emit_branch(If(cond=cond), then_label)
        if stmt.else_block is not None:
            self._block(stmt.else_block)
        self._emit_branch(Goto(), end_label)
        self._bind(then_label)
        self._block(stmt.then_block)
        self._bind(end_label)

    def _while(self, stmt: ast.WhileStmt) -> None:
        head_label = _Label()
        body_label = _Label()
        end_label = _Label()
        self._bind(head_label)
        cond = self._branch_condition(stmt.cond)
        self._emit_branch(If(cond=cond), body_label)
        self._emit_branch(Goto(), end_label)
        self._bind(body_label)
        self._block(stmt.body)
        self._emit_branch(Goto(), head_label)
        self._bind(end_label)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _branch_condition(self, expr: ast.Expr) -> Union[Atom, BinOp, UnOp]:
        """Flatten a branch condition Jimple-style (comparison of atoms)."""
        if isinstance(expr, ast.Binary) and expr.op in _COMPARISONS:
            return BinOp(expr.op, self._atom(expr.left), self._atom(expr.right))
        if isinstance(expr, ast.Unary) and expr.op == "!":
            return UnOp("!", self._atom(expr.operand))
        return self._atom(expr)

    def _rvalue(self, expr: ast.Expr) -> RValue:
        """Flatten an expression into a single-level right-hand side."""
        if isinstance(expr, (ast.IntLit, ast.BoolLit, ast.NullLit, ast.VarRef, ast.ThisRef)):
            return self._atom(expr)
        if isinstance(expr, ast.Binary):
            return BinOp(expr.op, self._atom(expr.left), self._atom(expr.right))
        if isinstance(expr, ast.Unary):
            return UnOp(expr.op, self._atom(expr.operand))
        if isinstance(expr, ast.FieldAccess):
            base = self._local_atom(expr.receiver)
            declaring, _ = self._field_info(expr.receiver, expr.field)
            return FieldLoad(base=base, field=expr.field, field_class=declaring)
        if isinstance(expr, ast.New):
            if expr.class_name not in self._program.classes:
                raise LoweringError(
                    f"{self._qualified}: 'new' of unknown class {expr.class_name!r}"
                )
            return NewObject(expr.class_name)
        if isinstance(expr, ast.Call):
            temp = self._new_temp(self._type_of(expr))
            self._call(expr, result=temp)
            return LocalRef(temp)
        raise LoweringError(f"{self._qualified}: cannot lower expression {expr!r}")

    def _atom(self, expr: ast.Expr) -> Atom:
        """Flatten an expression all the way to an atom, emitting temps."""
        if isinstance(expr, ast.IntLit):
            return Const(expr.value)
        if isinstance(expr, ast.BoolLit):
            return Const(expr.value)
        if isinstance(expr, ast.NullLit):
            return Const(None)
        if isinstance(expr, ast.VarRef):
            if expr.name not in self._local_types:
                raise LoweringError(
                    f"{self._qualified}: use of undeclared local {expr.name!r}"
                )
            return LocalRef(expr.name)
        if isinstance(expr, ast.ThisRef):
            return LocalRef("this")
        rvalue = self._rvalue(expr)
        if isinstance(rvalue, LocalRef):
            return rvalue  # a call was lowered into a temp already
        temp = self._new_temp(self._type_of(expr))
        self._emit(Assign(target=temp, rvalue=rvalue))
        return LocalRef(temp)

    def _local_atom(self, expr: Optional[ast.Expr]) -> LocalRef:
        """An atom that must be a local (receivers of calls/field ops)."""
        atom = self._atom(expr if expr is not None else ast.ThisRef())
        if isinstance(atom, Const):
            if atom.value is None:
                raise LoweringError(
                    f"{self._qualified}: cannot dereference the null literal"
                )
            temp = self._new_temp(self._type_of(expr))
            self._emit(Assign(target=temp, rvalue=atom))
            return LocalRef(temp)
        return atom

    def _call(self, call: ast.Call, result: Optional[str]) -> None:
        if call.receiver is None and call.method in INTRINSIC_METHODS:
            if call.args:
                raise LoweringError(
                    f"{self._qualified}: intrinsic {call.method}() takes no arguments"
                )
            target = result if result is not None else self._new_temp(ast.INT)
            rvalue: RValue = SecretValue() if call.method == "secret" else NondetValue()
            self._emit(Assign(target=target, rvalue=rvalue))
            return
        receiver_expr = call.receiver if call.receiver is not None else ast.ThisRef()
        receiver_type = self._type_of(receiver_expr)
        if not receiver_type.is_class:
            raise LoweringError(
                f"{self._qualified}: call {call.method!r} on non-class "
                f"receiver of type {receiver_type}"
            )
        if self._resolve_declaration(receiver_type.name, call.method) is None:
            raise LoweringError(
                f"{self._qualified}: no method {call.method!r} in class "
                f"{receiver_type.name!r} or its supertypes"
            )
        receiver = self._local_atom(receiver_expr)
        args = tuple(self._atom(arg) for arg in call.args)
        self._emit(
            Invoke(
                result=result,
                receiver=receiver,
                method_name=call.method,
                args=args,
                static_type=receiver_type.name,
            )
        )

    # ------------------------------------------------------------------
    # Static typing (enough to drive CHA and field resolution)
    # ------------------------------------------------------------------

    def _type_of(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            return ast.INT
        if isinstance(expr, ast.BoolLit):
            return ast.BOOLEAN
        if isinstance(expr, ast.NullLit):
            return ast.Type("null")
        if isinstance(expr, ast.VarRef):
            try:
                return self._local_types[expr.name]
            except KeyError:
                raise LoweringError(
                    f"{self._qualified}: use of undeclared local {expr.name!r}"
                ) from None
        if isinstance(expr, ast.ThisRef):
            return ast.Type(self._class.name)
        if isinstance(expr, ast.New):
            return ast.Type(expr.class_name)
        if isinstance(expr, ast.Binary):
            return ast.BOOLEAN if expr.op in _COMPARISONS | _BOOLEAN_OPS else ast.INT
        if isinstance(expr, ast.Unary):
            return ast.BOOLEAN if expr.op == "!" else ast.INT
        if isinstance(expr, ast.FieldAccess):
            _, field_type = self._field_info(expr.receiver, expr.field)
            return field_type
        if isinstance(expr, ast.Call):
            if expr.receiver is None and expr.method in INTRINSIC_METHODS:
                return ast.INT
            receiver_expr = (
                expr.receiver if expr.receiver is not None else ast.ThisRef()
            )
            receiver_type = self._type_of(receiver_expr)
            if not receiver_type.is_class:
                raise LoweringError(
                    f"{self._qualified}: call on non-class type {receiver_type}"
                )
            declaration = self._resolve_declaration(receiver_type.name, expr.method)
            if declaration is None:
                raise LoweringError(
                    f"{self._qualified}: no method {expr.method!r} in class "
                    f"{receiver_type.name!r} or its supertypes"
                )
            return declaration.return_type
        raise LoweringError(f"{self._qualified}: cannot type expression {expr!r}")

    def _field_info(
        self, receiver: Optional[ast.Expr], field_name: str
    ) -> Tuple[str, ast.Type]:
        receiver_expr = receiver if receiver is not None else ast.ThisRef()
        receiver_type = self._type_of(receiver_expr)
        if not receiver_type.is_class:
            raise LoweringError(
                f"{self._qualified}: field access on non-class type {receiver_type}"
            )
        resolved = self._program.resolve_field(receiver_type.name, field_name)
        if resolved is None:
            raise LoweringError(
                f"{self._qualified}: no field {field_name!r} in class "
                f"{receiver_type.name!r} or its supertypes"
            )
        return resolved

    def _resolve_declaration(
        self, class_name: str, method_name: str
    ) -> Optional[ast.MethodDecl]:
        for ancestor in self._program.supertypes(class_name):
            declaration = self._declarations.get((ancestor, method_name))
            if declaration is not None:
                return declaration
        return None
