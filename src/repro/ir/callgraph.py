"""Class-hierarchy-analysis (CHA) call graph.

As in the paper's implementation the call graph is *feature-insensitive*
(Section 5, "Current Limitations"): a virtual call resolves to the
implementations in the receiver's static type and all of its subtypes,
regardless of feature annotations.  SPLLIFT then follows the edges in a
feature-sensitive fashion through its lifted call flow functions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Set, Tuple

from repro.ir.instructions import Invoke
from repro.ir.program import IRError, IRMethod, IRProgram

__all__ = ["CallGraph", "build_call_graph"]


class CallGraph:
    """Call edges between IR methods, restricted to the reachable part."""

    def __init__(
        self,
        program: IRProgram,
        entry_points: Tuple[IRMethod, ...],
        callees: Dict[Invoke, Tuple[IRMethod, ...]],
        reachable: Tuple[IRMethod, ...],
    ) -> None:
        self.program = program
        self.entry_points = entry_points
        self._callees = callees
        self.reachable_methods = reachable
        self._callers: Dict[IRMethod, List[Invoke]] = {}
        for call, targets in callees.items():
            for target in targets:
                self._callers.setdefault(target, []).append(call)

    def callees(self, call: Invoke) -> Tuple[IRMethod, ...]:
        """Possible targets of a call site (may be empty for dead calls)."""
        return self._callees.get(call, ())

    def callers(self, method: IRMethod) -> Tuple[Invoke, ...]:
        """Call sites that may dispatch to ``method``."""
        return tuple(self._callers.get(method, ()))

    def call_sites(self) -> Iterator[Invoke]:
        """All reachable call sites."""
        return iter(self._callees)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self._callees.values())


def build_call_graph(
    program: IRProgram, entry_points: Tuple[IRMethod, ...]
) -> CallGraph:
    """Build the CHA call graph of the methods reachable from the entries."""
    callees: Dict[Invoke, Tuple[IRMethod, ...]] = {}
    reachable: List[IRMethod] = []
    seen: Set[IRMethod] = set()
    worklist: List[IRMethod] = list(entry_points)
    for entry in entry_points:
        seen.add(entry)
    while worklist:
        method = worklist.pop()
        reachable.append(method)
        for instruction in method.instructions:
            if not isinstance(instruction, Invoke):
                continue
            targets = _resolve_targets(program, instruction)
            callees[instruction] = targets
            for target in targets:
                if target not in seen:
                    seen.add(target)
                    worklist.append(target)
    reachable.sort(key=lambda m: m.qualified_name)
    return CallGraph(program, entry_points, callees, tuple(reachable))


def _resolve_targets(program: IRProgram, call: Invoke) -> Tuple[IRMethod, ...]:
    """CHA: implementations of the method in the static type's subtree."""
    targets: List[IRMethod] = []
    seen: Set[IRMethod] = set()
    for class_name in program.subtypes(call.static_type):
        resolved = program.resolve_method(class_name, call.method_name)
        if resolved is not None and resolved not in seen:
            seen.add(resolved)
            targets.append(resolved)
    if not targets:
        raise IRError(
            f"call {call.location} to {call.static_type}.{call.method_name} "
            "has no targets"
        )
    targets.sort(key=lambda m: m.qualified_name)
    return tuple(targets)
