"""Concrete interpreter for MiniJava product lines.

The dynamic-semantics substrate: executes products (or whole product
lines under a configuration) with shadow taint and initialization
tracking, providing ground truth for differential testing of the static
analyses.
"""

from repro.interp.interpreter import ExecutionTrace, Interpreter, InterpreterError
from repro.interp.values import ObjectRef, Value, bool_value, int_value, null_value

__all__ = [
    "Interpreter",
    "ExecutionTrace",
    "InterpreterError",
    "Value",
    "ObjectRef",
    "int_value",
    "bool_value",
    "null_value",
]
