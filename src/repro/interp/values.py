"""Runtime values for the MiniJava interpreter.

Every runtime value carries two shadow bits used by the differential
tests (and by nothing else):

- ``tainted`` — the value is data-dependent on a ``secret()`` result;
- ``initialized`` — the value originates from an actual assignment rather
  than from reading a never-assigned local.

The static analyses are *may* analyses; the interpreter provides the
ground truth they must over-approximate: every runtime-tainted print must
be flagged by the taint analysis, every runtime-uninitialized read by the
uninitialized-variables analysis (see ``tests/interp/test_differential``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Union

__all__ = ["Value", "ObjectRef", "int_value", "bool_value", "null_value", "uninitialized"]


@dataclass
class ObjectRef:
    """A heap object: its dynamic class and its fields."""

    class_name: str
    fields: Dict[str, "Value"] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.class_name}#{id(self):x}>"


@dataclass(frozen=True)
class Value:
    """One runtime value with shadow taint/initialization bits."""

    data: Union[int, bool, ObjectRef, None]
    tainted: bool = False
    initialized: bool = True

    @property
    def is_null(self) -> bool:
        return self.data is None

    def with_taint(self, tainted: bool) -> "Value":
        return replace(self, tainted=tainted)

    def __repr__(self) -> str:
        marks = ""
        if self.tainted:
            marks += "🔥"
        if not self.initialized:
            marks += "?"
        return f"{self.data!r}{marks}"


def int_value(data: int, tainted: bool = False) -> Value:
    return Value(int(data), tainted=tainted)


def bool_value(data: bool, tainted: bool = False) -> Value:
    return Value(bool(data), tainted=tainted)


def null_value() -> Value:
    return Value(None)


def uninitialized() -> Value:
    """The value of a declared-but-never-assigned local (reads of it are
    recorded as uninitialized accesses)."""
    return Value(0, tainted=False, initialized=False)
