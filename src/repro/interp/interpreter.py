"""A concrete interpreter for MiniJava product lines (IR level).

Executes the Jimple-like IR either of a preprocessed product (no
annotations) or of a whole product line *under a configuration* — in the
latter case disabled statements behave exactly like the feature-annotated
CFG prescribes (skip; branches and returns fall through; calls do not
happen), so an execution is a concrete witness for one path of the A2 /
SPLLIFT semantics.

The interpreter is the ground truth for differential testing: its traces
record actually-tainted prints and actually-uninitialized reads, which
the static may-analyses must over-approximate.  Dispatch is *dynamic*
(by the receiver's runtime class), a subset of the static CHA dispatch.

Executions are bounded by ``fuel`` (instruction steps) and a call-depth
limit; a run that exhausts either, dereferences null, or divides by zero
stops early with ``trace.completed = False`` — the events collected up to
that point are still valid ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.constraints.base import ConfigurationLike, as_assignment
from repro.interp.values import ObjectRef, Value, bool_value, int_value, null_value, uninitialized
from repro.ir.instructions import (
    Assign,
    Atom,
    BinOp,
    Const,
    Declare,
    FieldLoad,
    FieldStore,
    Goto,
    If,
    Instruction,
    Invoke,
    LocalRef,
    NewObject,
    NondetValue,
    Print,
    Return,
    RValue,
    SecretValue,
    UnOp,
)
from repro.ir.program import IRMethod, IRProgram

__all__ = ["Interpreter", "ExecutionTrace", "InterpreterError"]


class InterpreterError(Exception):
    """Raised for malformed programs (not for bounded-execution stops)."""


@dataclass
class ExecutionTrace:
    """Everything observable about one execution."""

    prints: List[Tuple[Instruction, Value]] = field(default_factory=list)
    uninit_reads: List[Tuple[Instruction, str]] = field(default_factory=list)
    steps: int = 0
    completed: bool = True
    stop_reason: str = ""
    result: Optional[Value] = None
    #: set when the execution stopped on a null dereference:
    #: (instruction, name of the null local)
    null_dereference: Optional[Tuple[Instruction, str]] = None

    @property
    def tainted_prints(self) -> List[Tuple[Instruction, Value]]:
        return [(stmt, value) for stmt, value in self.prints if value.tainted]

    def printed_data(self) -> List[object]:
        return [value.data for _, value in self.prints]


class _Stop(Exception):
    """Internal: unwinds the interpreter on a bounded-execution stop."""

    def __init__(self, reason: str, null_dereference=None) -> None:
        self.reason = reason
        self.null_dereference = null_dereference


def _wrap32(value: int) -> int:
    """Java ``int`` semantics: wrap to signed 32 bits.

    Also keeps interpreter arithmetic O(1) — Python bignums would
    otherwise explode on generated programs that square a variable in a
    loop, making single steps arbitrarily slow."""
    return ((value + 0x80000000) & 0xFFFFFFFF) - 0x80000000


_ARITH = {
    "+": lambda a, b: _wrap32(a + b),
    "-": lambda a, b: _wrap32(a - b),
    "*": lambda a, b: _wrap32(a * b),
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Interpreter:
    """Concrete executor for IR programs / product lines."""

    def __init__(
        self,
        program: IRProgram,
        configuration: Optional[ConfigurationLike] = None,
        fuel: int = 200_000,
        max_depth: int = 200,
        secret_source: Optional[Callable[[], int]] = None,
        nondet_source: Optional[Callable[[], int]] = None,
    ) -> None:
        """
        Parameters
        ----------
        configuration:
            ``None`` to require a plain (annotation-free) program; a
            configuration to execute a product line feature-sensitively.
        secret_source / nondet_source:
            Suppliers for the ``secret()`` / ``nondet()`` intrinsics;
            defaults: the constant 42, and a deterministic 0/1 alternation.
        """
        self.program = program
        self._assignment: Optional[Dict[str, bool]] = None
        if configuration is not None:
            features: set = set()
            for method in program.all_methods():
                for instruction in method.instructions:
                    if instruction.annotation is not None:
                        features |= instruction.annotation.variables()
            self._assignment = as_assignment(configuration, features)
        self.fuel = fuel
        self.max_depth = max_depth
        self._secret = secret_source if secret_source is not None else lambda: 42
        if nondet_source is not None:
            self._nondet = nondet_source
        else:
            state = {"next": 0}

            def alternate() -> int:
                state["next"] ^= 1
                return state["next"] ^ 1

            self._nondet = alternate
        self._enabled_cache: Dict[Instruction, bool] = {}

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, entry: str = "Main.main") -> ExecutionTrace:
        """Execute from ``entry`` on a fresh receiver object."""
        method = self.program.method(entry)
        trace = ExecutionTrace()
        receiver = Value(ObjectRef(method.class_name))
        args = [int_value(0) for _ in method.params]
        try:
            trace.result = self._call(method, receiver, args, trace, depth=0)
        except _Stop as stop:
            trace.completed = False
            trace.stop_reason = stop.reason
            trace.null_dereference = stop.null_dereference
        return trace

    # ------------------------------------------------------------------
    # Statement interpretation
    # ------------------------------------------------------------------

    def _enabled(self, instruction: Instruction) -> bool:
        if instruction.annotation is None:
            return True
        if self._assignment is None:
            raise InterpreterError(
                f"annotated instruction {instruction.location} requires a "
                "configuration"
            )
        cached = self._enabled_cache.get(instruction)
        if cached is None:
            cached = instruction.annotation.evaluate(self._assignment)
            self._enabled_cache[instruction] = cached
        return cached

    def _call(
        self,
        method: IRMethod,
        receiver: Value,
        args: List[Value],
        trace: ExecutionTrace,
        depth: int,
    ) -> Value:
        if depth > self.max_depth:
            raise _Stop(f"call depth limit ({self.max_depth}) exceeded")
        locals_: Dict[str, Value] = {"this": receiver}
        for name, value in zip(method.params, args):
            locals_[name] = value
        for name in method.source_locals:
            locals_[name] = uninitialized()
        index = 0
        instructions = method.instructions
        while True:
            if index >= len(instructions):
                raise InterpreterError(
                    f"fell off the end of {method.qualified_name}"
                )
            instruction = instructions[index]
            trace.steps += 1
            if trace.steps > self.fuel:
                raise _Stop(f"fuel ({self.fuel} steps) exhausted")
            enabled = self._enabled(instruction)
            if not enabled:
                # Disabled statements fall through — including branches
                # and returns (the feature-annotated CFG semantics).
                index += 1
                continue
            if isinstance(instruction, (Declare,)):
                index += 1
            elif isinstance(instruction, Assign):
                locals_[instruction.target] = self._rvalue(
                    instruction.rvalue, instruction, locals_, trace, depth
                )
                index += 1
            elif isinstance(instruction, FieldStore):
                obj = self._deref(instruction.base, instruction, locals_, trace)
                value = self._atom(instruction.value, instruction, locals_, trace)
                # Stored values count as initialized from here on (the
                # static analysis does not track uninitializedness through
                # fields).
                obj.fields[instruction.field_name] = Value(
                    value.data, tainted=value.tainted, initialized=True
                )
                index += 1
            elif isinstance(instruction, If):
                taken = self._condition(instruction, locals_, trace)
                index = instruction.target if taken else index + 1
            elif isinstance(instruction, Goto):
                index = instruction.target
            elif isinstance(instruction, Print):
                value = self._atom(instruction.value, instruction, locals_, trace)
                trace.prints.append((instruction, value))
                index += 1
            elif isinstance(instruction, Invoke):
                result = self._invoke(instruction, locals_, trace, depth)
                if instruction.result is not None:
                    locals_[instruction.result] = result
                index += 1
            elif isinstance(instruction, Return):
                if instruction.value is None:
                    return int_value(0)
                return self._atom(instruction.value, instruction, locals_, trace)
            else:
                raise InterpreterError(f"unknown instruction {instruction!r}")

    # ------------------------------------------------------------------
    # Expression interpretation
    # ------------------------------------------------------------------

    def _atom(
        self,
        atom: Atom,
        at: Instruction,
        locals_: Dict[str, Value],
        trace: ExecutionTrace,
    ) -> Value:
        if isinstance(atom, Const):
            if atom.value is None:
                return null_value()
            if isinstance(atom.value, bool):
                return bool_value(atom.value)
            return int_value(atom.value)
        if isinstance(atom, LocalRef):
            value = locals_.get(atom.name)
            if value is None:
                # A temp read before any write cannot happen in lowered
                # code; treat it like an uninitialized source local.
                value = uninitialized()
                locals_[atom.name] = value
            if not value.initialized:
                trace.uninit_reads.append((at, atom.name))
            return value
        raise InterpreterError(f"unknown atom {atom!r}")

    def _deref(
        self,
        base: LocalRef,
        at: Instruction,
        locals_: Dict[str, Value],
        trace: ExecutionTrace,
    ) -> ObjectRef:
        value = self._atom(base, at, locals_, trace)
        if not isinstance(value.data, ObjectRef):
            raise _Stop(
                f"null dereference at {at.location}",
                null_dereference=(at, base.name),
            )
        return value.data

    def _rvalue(
        self,
        rvalue: RValue,
        at: Instruction,
        locals_: Dict[str, Value],
        trace: ExecutionTrace,
        depth: int,
    ) -> Value:
        if isinstance(rvalue, (Const, LocalRef)):
            value = self._atom(rvalue, at, locals_, trace)
            # A direct copy produces an *initialized* value — mirroring
            # the static analysis, which kills the target's uninit fact on
            # every assignment (the flagged event is the read just above).
            return Value(value.data, tainted=value.tainted, initialized=True)
        if isinstance(rvalue, SecretValue):
            return int_value(self._secret(), tainted=True)
        if isinstance(rvalue, NondetValue):
            return int_value(self._nondet())
        if isinstance(rvalue, NewObject):
            return Value(ObjectRef(rvalue.class_name))
        if isinstance(rvalue, FieldLoad):
            obj = self._deref(rvalue.base, at, locals_, trace)
            value = obj.fields.get(rvalue.field)
            if value is None:
                # Java default values: null for reference-typed fields,
                # zero for primitives.
                resolved = self.program.resolve_field(
                    obj.class_name, rvalue.field
                )
                if resolved is not None and resolved[1].is_class:
                    return null_value()
                return int_value(0)
            return value
        if isinstance(rvalue, BinOp):
            left = self._atom(rvalue.left, at, locals_, trace)
            right = self._atom(rvalue.right, at, locals_, trace)
            return self._binop(rvalue.op, left, right, at)
        if isinstance(rvalue, UnOp):
            operand = self._atom(rvalue.operand, at, locals_, trace)
            if rvalue.op == "!":
                return bool_value(not operand.data, tainted=operand.tainted)
            if rvalue.op == "-":
                return int_value(_wrap32(-operand.data), tainted=operand.tainted)
            raise InterpreterError(f"unknown unary operator {rvalue.op!r}")
        raise InterpreterError(f"unknown rvalue {rvalue!r}")

    def _binop(self, op: str, left: Value, right: Value, at: Instruction) -> Value:
        tainted = left.tainted or right.tainted
        if op in _ARITH:
            result = _ARITH[op](left.data, right.data)
        elif op == "==":
            result = left.data == right.data
        elif op == "!=":
            result = left.data != right.data
        elif op in ("/", "%"):
            if right.data == 0:
                raise _Stop(f"division by zero at {at.location}")
            result = _wrap32(
                left.data // right.data if op == "/" else left.data % right.data
            )
        elif op == "&&":
            result = bool(left.data) and bool(right.data)
        elif op == "||":
            result = bool(left.data) or bool(right.data)
        else:
            raise InterpreterError(f"unknown operator {op!r}")
        if isinstance(result, bool):
            return bool_value(result, tainted=tainted)
        return int_value(result, tainted=tainted)

    def _condition(
        self,
        instruction: If,
        locals_: Dict[str, Value],
        trace: ExecutionTrace,
    ) -> bool:
        cond = instruction.cond
        if isinstance(cond, (Const, LocalRef)):
            return bool(self._atom(cond, instruction, locals_, trace).data)
        if isinstance(cond, (BinOp, UnOp)):
            return bool(
                self._rvalue(cond, instruction, locals_, trace, depth=0).data
            )
        raise InterpreterError(f"unknown condition {cond!r}")

    # ------------------------------------------------------------------
    # Calls (dynamic dispatch)
    # ------------------------------------------------------------------

    def _invoke(
        self,
        instruction: Invoke,
        locals_: Dict[str, Value],
        trace: ExecutionTrace,
        depth: int,
    ) -> Value:
        obj = self._deref(instruction.receiver, instruction, locals_, trace)
        target = self.program.resolve_method(obj.class_name, instruction.method_name)
        if target is None:
            raise InterpreterError(
                f"{instruction.location}: no method {instruction.method_name!r} "
                f"on runtime class {obj.class_name!r}"
            )
        args = [
            self._atom(arg, instruction, locals_, trace)
            for arg in instruction.args
        ]
        receiver = Value(obj)
        return self._call(target, receiver, args, trace, depth + 1)
