"""Micro-benchmarks of the concrete interpreter.

Situates the dynamic substrate: one full product execution and a sweep
over all valid configurations of a small subject.
"""

import pytest

from repro.interp import Interpreter
from repro.spl import gpl_mini


@pytest.fixture(scope="module")
def product_line():
    pl = gpl_mini()
    pl.icfg  # force pipeline
    return pl


def test_single_execution(benchmark, product_line):
    config = frozenset({"GPLMini", "GraphType", "BFS", "Weighted"})

    def run():
        return Interpreter(
            product_line.ir, configuration=config, fuel=50_000
        ).run()

    trace = benchmark(run)
    assert trace.completed


def test_all_valid_configurations_sweep(benchmark, product_line):
    configurations = list(product_line.valid_configurations())

    def sweep():
        completed = 0
        for config in configurations:
            trace = Interpreter(
                product_line.ir, configuration=config, fuel=50_000
            ).run()
            completed += trace.completed
        return completed

    completed = benchmark(sweep)
    assert completed == len(configurations)


def test_interpreter_vs_spllift_cost(benchmark, product_line):
    """Executing every product vs one SPLLIFT pass — on a subject with few
    products execution is cheap, but it only *samples* behaviour while the
    analysis covers all paths of all products."""
    from repro.analyses import TaintAnalysis
    from repro.core import SPLLift

    def analyze():
        analysis = TaintAnalysis(product_line.icfg)
        return SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()

    results = benchmark.pedantic(analyze, rounds=3, iterations=1)
    assert results.stats["jump_functions"] > 0
