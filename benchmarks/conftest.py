"""Shared fixtures for the benchmark suite.

Subjects are generated once per session; every benchmark then measures
analysis work only (generation and parsing are *not* part of the timed
region unless a benchmark explicitly says so).
"""

import pytest

from repro.spl.benchmarks import (
    berkeleydb_like,
    gpl_like,
    lampiro_like,
    mm08_like,
)


@pytest.fixture(scope="session")
def subjects():
    """All four paper-shaped subjects, fully built (AST+IR+ICFG cached)."""
    built = {}
    for name, builder in (
        ("BerkeleyDB-like", berkeleydb_like),
        ("GPL-like", gpl_like),
        ("Lampiro-like", lampiro_like),
        ("MM08-like", mm08_like),
    ):
        product_line = builder()
        product_line.icfg  # force the pipeline
        built[name] = product_line
    return built


@pytest.fixture(scope="session")
def small_subjects(subjects):
    """The subjects cheap enough for exhaustive A2 enumeration."""
    return {
        name: subjects[name]
        for name in ("GPL-like", "Lampiro-like", "MM08-like")
    }
