"""Micro-benchmarks of the substrates: BDD engine, solvers, frontend.

Not a paper table — these situate the building blocks so regressions in
any layer are visible independently of the end-to-end numbers.
"""

import pytest

from repro.analyses import TaintAnalysis
from repro.bdd import BDDManager
from repro.ide.binary import solve_ifds_via_ide
from repro.ifds import IFDSSolver
from repro.ir import ICFG, lower_program
from repro.minijava import derive_product, parse_program


class TestBDDMicro:
    def test_conjunction_chain(self, benchmark):
        def run():
            manager = BDDManager()
            node = manager.true
            for i in range(60):
                node = manager.and_(node, manager.var(f"x{i}"))
            return node

        node = benchmark(run)
        assert node not in (0, 1)

    def test_xor_ladder_satcount(self, benchmark):
        """Parity functions are the BDD-friendly worst case for DNF."""

        def run():
            manager = BDDManager()
            node = manager.false
            for i in range(24):
                node = manager.xor(node, manager.var(f"x{i}"))
            return manager.satcount(node)

        count = benchmark(run)
        assert count == 2**23

    def test_feature_model_compilation(self, benchmark, subjects):
        from repro.constraints import BddConstraintSystem
        from repro.featuremodel.batory import to_constraint

        product_line = subjects["BerkeleyDB-like"]

        def run():
            return to_constraint(
                product_line.feature_model, BddConstraintSystem()
            )

        constraint = benchmark(run)
        assert not constraint.is_false


class TestSolverMicro:
    @pytest.fixture(scope="class")
    def product_icfg(self, subjects):
        product_line = subjects["GPL-like"]
        product = derive_product(
            product_line.ast, frozenset(product_line.features_reachable)
        )
        return ICFG.for_entry(lower_program(product))

    def test_ifds_direct(self, benchmark, product_icfg):
        benchmark(lambda: IFDSSolver(TaintAnalysis(product_icfg)).solve())

    def test_ifds_via_ide_binary(self, benchmark, product_icfg):
        """The binary-domain IDE embedding's overhead over direct IFDS."""
        benchmark(lambda: solve_ifds_via_ide(TaintAnalysis(product_icfg)))


class TestFrontendMicro:
    def test_parse(self, benchmark, subjects):
        source = subjects["BerkeleyDB-like"].source
        benchmark(parse_program, source)

    def test_lower(self, benchmark, subjects):
        ast = subjects["BerkeleyDB-like"].ast
        benchmark(lower_program, ast)

    def test_preprocess(self, benchmark, subjects):
        product_line = subjects["BerkeleyDB-like"]
        config = frozenset(product_line.features_reachable)
        benchmark(derive_product, product_line.ast, config)
