"""Ablation: how the feature model enters the analysis (Section 4.2).

Three variants, all implemented:

- "edge":   conjoin m onto every edge label — early termination already
            in the (dominant) jump-function construction phase;
- "seed":   the paper's rejected first attempt — exchange only the start
            value, terminating early only in the cheap value phase;
- "ignore": no model at all (the Table 3 "ignored" row).

The paper's claim: "edge" ≈ "ignore" in cost (the early termination pays
for the constraint work), while "seed" wastes the opportunity.
"""

import pytest

from repro.analyses import ReachingDefinitionsAnalysis, UninitializedVariablesAnalysis
from repro.core import SPLLift

MODES = ("edge", "seed", "ignore")


@pytest.mark.parametrize("fm_mode", MODES)
@pytest.mark.parametrize("subject_name", ("GPL-like", "MM08-like"))
def test_fm_mode_uninit(benchmark, subjects, fm_mode, subject_name):
    product_line = subjects[subject_name]

    def run():
        analysis = UninitializedVariablesAnalysis(product_line.icfg)
        feature_model = (
            product_line.feature_model if fm_mode != "ignore" else None
        )
        return SPLLift(
            analysis, feature_model=feature_model, fm_mode=fm_mode
        ).solve()

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results.stats["jump_functions"] > 0


@pytest.mark.parametrize("fm_mode", MODES)
def test_fm_mode_reaching_definitions(benchmark, subjects, fm_mode):
    """The heaviest analysis, where construction-phase termination matters
    most."""
    product_line = subjects["GPL-like"]

    def run():
        analysis = ReachingDefinitionsAnalysis(product_line.icfg)
        feature_model = (
            product_line.feature_model if fm_mode != "ignore" else None
        )
        return SPLLift(
            analysis, feature_model=feature_model, fm_mode=fm_mode
        ).solve()

    benchmark.pedantic(run, rounds=2, iterations=1)


def test_edge_mode_never_builds_more_jump_functions(subjects, benchmark):
    """Invariant behind the design: conjoining m can only kill paths."""

    def run():
        counts = {}
        for name, product_line in subjects.items():
            analysis = UninitializedVariablesAnalysis(product_line.icfg)
            edge = SPLLift(
                analysis, feature_model=product_line.feature_model, fm_mode="edge"
            ).solve()
            seed = SPLLift(
                analysis, feature_model=product_line.feature_model, fm_mode="seed"
            ).solve()
            counts[name] = (
                edge.stats["jump_functions"],
                seed.stats["jump_functions"],
            )
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (edge_count, seed_count) in counts.items():
        assert edge_count <= seed_count, name
