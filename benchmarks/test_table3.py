"""Benchmark: Table 3 — the cost of regarding the feature model.

Per subject and analysis, times SPLLIFT with the feature model conjoined
onto the edges ("regarded") versus explicitly ignored.  The paper's
finding to reproduce: the difference is small, because early termination
of model-contradicting paths counterbalances the extra constraint work.
"""

import pytest

from repro.analyses import (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.core import SPLLift

SUBJECT_NAMES = ("BerkeleyDB-like", "GPL-like", "Lampiro-like", "MM08-like")
ANALYSES = (
    ("possible_types", PossibleTypesAnalysis),
    ("reaching_definitions", ReachingDefinitionsAnalysis),
    ("uninitialized_variables", UninitializedVariablesAnalysis),
)


@pytest.mark.parametrize("subject_name", SUBJECT_NAMES)
@pytest.mark.parametrize("analysis_name,analysis_class", ANALYSES)
@pytest.mark.parametrize("fm_mode", ("edge", "ignore"))
def test_feature_model_mode(
    benchmark, subjects, subject_name, analysis_name, analysis_class, fm_mode
):
    product_line = subjects[subject_name]

    def run():
        analysis = analysis_class(product_line.icfg)
        feature_model = (
            product_line.feature_model if fm_mode == "edge" else None
        )
        return SPLLift(analysis, feature_model=feature_model, fm_mode=fm_mode).solve()

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results.stats["jump_functions"] > 0
