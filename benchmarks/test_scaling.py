"""Benchmark: the headline scaling curve.

SPLLIFT's single pass must stay essentially flat while the number of
reachable features (and thus A2's configuration count) doubles per step.
"""

import pytest

from repro.analyses import UninitializedVariablesAnalysis
from repro.core import SPLLift
from repro.experiments.scaling import _subject


@pytest.mark.parametrize("feature_count", (2, 6, 10, 14))
def test_spllift_scaling(benchmark, feature_count):
    product_line = _subject(feature_count, seed=7)

    def run():
        analysis = UninitializedVariablesAnalysis(product_line.icfg)
        return SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results.stats["jump_functions"] > 0


def test_scaling_speedup_curve(benchmark):
    """End-to-end: confirm the speedup grows monotonically with features."""
    from repro.experiments.scaling import run_scaling

    points = benchmark.pedantic(
        run_scaling,
        args=(UninitializedVariablesAnalysis,),
        kwargs={"feature_counts": (4, 8, 12)},
        rounds=1,
        iterations=1,
    )
    speedups = [p.speedup for p in points]
    assert speedups == sorted(speedups)
