"""Benchmark: Table 2 — SPLLIFT vs the A2 baseline.

Reproduces the paper's headline comparison.  For each subject and client
analysis this file times:

- the single SPLLIFT pass over the whole product line, and
- one representative A2 configuration run (A2's *total* cost is
  per-configuration time × #valid configurations; the totals and the
  cutoff/estimation protocol live in ``python -m repro.experiments table2``
  and EXPERIMENTS.md — a benchmark suite should not run for hours).

The shape to verify: SPLLIFT's one pass costs only a small multiple of a
single A2 run, while A2 needs 4 … 6·10^8 runs depending on the subject.
"""

import pytest

from repro.analyses import (
    PossibleTypesAnalysis,
    ReachingDefinitionsAnalysis,
    UninitializedVariablesAnalysis,
)
from repro.baselines.a2 import A2Problem
from repro.core import SPLLift
from repro.ifds import IFDSSolver

SUBJECT_NAMES = ("BerkeleyDB-like", "GPL-like", "Lampiro-like", "MM08-like")
ANALYSES = (
    ("possible_types", PossibleTypesAnalysis),
    ("reaching_definitions", ReachingDefinitionsAnalysis),
    ("uninitialized_variables", UninitializedVariablesAnalysis),
)


@pytest.mark.parametrize("subject_name", SUBJECT_NAMES)
@pytest.mark.parametrize("analysis_name,analysis_class", ANALYSES)
def test_spllift_single_pass(
    benchmark, subjects, subject_name, analysis_name, analysis_class
):
    """One SPLLIFT pass analyzing *all* products of the subject."""
    product_line = subjects[subject_name]

    def run():
        analysis = analysis_class(product_line.icfg)
        return SPLLift(
            analysis, feature_model=product_line.feature_model
        ).solve()

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results.stats["jump_functions"] > 0


@pytest.mark.parametrize("subject_name", SUBJECT_NAMES)
@pytest.mark.parametrize("analysis_name,analysis_class", ANALYSES)
def test_a2_single_configuration(
    benchmark, subjects, subject_name, analysis_name, analysis_class
):
    """One A2 run (full configuration — the paper's estimation anchor).

    Multiply by the subject's #valid configurations for A2's total cost.
    """
    product_line = subjects[subject_name]
    analysis = analysis_class(product_line.icfg)
    config = frozenset(product_line.features_reachable)

    def run():
        return IFDSSolver(A2Problem(analysis, config)).solve()

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert results.fact_count() >= 0


@pytest.mark.parametrize("subject_name", ("Lampiro-like", "MM08-like"))
def test_a2_full_campaign_small_subjects(benchmark, subjects, subject_name):
    """The complete A2 campaign where it is actually feasible (4 and ~33
    valid configurations) — the honest end-to-end comparison point."""
    product_line = subjects[subject_name]
    analysis = UninitializedVariablesAnalysis(product_line.icfg)
    configurations = list(product_line.valid_configurations())

    def run():
        total = 0
        for configuration in configurations:
            results = IFDSSolver(A2Problem(analysis, configuration)).solve()
            total += results.fact_count()
        return total

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_call_graph_construction(benchmark, subjects):
    """The shared "Soot/CG" prerequisite on the biggest subject."""
    from repro.experiments.harness import measure_call_graph

    product_line = subjects["BerkeleyDB-like"]
    benchmark.pedantic(
        lambda: measure_call_graph(product_line), rounds=3, iterations=1
    )
