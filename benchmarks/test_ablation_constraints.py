"""Ablation: BDD-backed vs DNF-backed constraints.

Section 5 of the paper: "After some initial experiments with a hand-
written data structure representing constraints in Disjunctive Normal
Form, we switched to an implementation based on Binary Decision Diagrams";
Section 7: "In our eyes, BDDs are crucial to the performance of SPLLIFT;
we found that others do not scale nearly as well".

This ablation runs the *same* lifted analysis with both constraint
systems on the same subjects and lets pytest-benchmark show the gap.
(DNF runs on the smaller subjects only; that is the point.)
"""

import pytest

from repro.analyses import TaintAnalysis, UninitializedVariablesAnalysis
from repro.constraints import BddConstraintSystem, DnfConstraintSystem
from repro.core import SPLLift
from repro.featuremodel.batory import to_constraint


def solve_with(product_line, analysis_class, system_factory):
    system = system_factory()
    feature_model = to_constraint(product_line.feature_model, system)
    analysis = analysis_class(product_line.icfg)
    return SPLLift(
        analysis, feature_model=feature_model, system=system
    ).solve()


SYSTEMS = (
    ("bdd", BddConstraintSystem),
    ("dnf", DnfConstraintSystem),
)


@pytest.mark.parametrize("system_name,system_factory", SYSTEMS)
@pytest.mark.parametrize("subject_name", ("GPL-like", "MM08-like"))
def test_constraint_representation(
    benchmark, subjects, system_name, system_factory, subject_name
):
    product_line = subjects[subject_name]
    results = benchmark.pedantic(
        solve_with,
        args=(product_line, UninitializedVariablesAnalysis, system_factory),
        rounds=1,
        iterations=1,
    )
    assert results.stats["jump_functions"] > 0


@pytest.mark.parametrize("system_name,system_factory", SYSTEMS)
def test_representations_agree_semantically(
    benchmark, subjects, system_name, system_factory
):
    """Both representations must produce equivalent constraints; timed on
    the small subject so the agreement check itself stays cheap."""
    product_line = subjects["MM08-like"]

    def run():
        return solve_with(product_line, TaintAnalysis, system_factory)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # semantic spot-check against per-configuration evaluation
    features = product_line.features_reachable
    sample = [frozenset(), frozenset(features)]
    for stmt in product_line.icfg.reachable_instructions():
        for fact, constraint in results.results_at(stmt).items():
            for config in sample:
                constraint.satisfied_by(config)  # must not crash
            break
